#pragma once
// JobQueue: the bounded, priority-aware admission queue in front of the
// worker pool.
//
// Shape follows the classic ThreadSafeQueue (mutex + two condvars, one for
// space and one for items) with two service-specific twists:
//
//   * Priority with aging. Jobs live in one FIFO deque per priority class.
//     A pop serves the class head with the smallest *effective* priority
//     `max(0, p - age / aging_interval)` (age measured in jobs dispatched
//     since the job was submitted), ties broken by global arrival order.
//     Every job therefore ages to effective priority 0 after at most
//     `p * aging_interval` dispatches, after which nothing submitted later
//     can be served before it — the starvation bound below.
//
//   * Tenant-pure batching. pop_batch dequeues the scheduler's head choice
//     and then greedily takes up to `max_batch - 1` more jobs *of the same
//     tenant* from the same priority class, in FIFO order. A batch never
//     mixes tenants (tenants' fields must never share a worker dispatch),
//     and never jumps priority classes.
//
// Starvation bound: a job of priority p waits at most
//   p * aging_interval + capacity
// dispatches from submission (once aged to 0 it beats every newer job, and
// at most `capacity` older jobs can still be queued ahead of it). Batching
// can dispatch up to max_batch jobs per scheduling decision, so the
// service-level bound is `max_batch * (p * aging + capacity)` — see
// fairness_bound(). The soak bench asserts every job's measured wait
// against this bound.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "service/job.hpp"

namespace tl::service {

/// A dequeued job plus its measured queue delay (jobs dispatched between
/// its submission and its dispatch — the fairness metric).
struct Dispatch {
  Job job;
  std::uint64_t wait_pops = 0;
};

struct QueueStats {
  std::uint64_t pushed = 0;
  std::uint64_t popped = 0;
  std::uint64_t blocked_pushes = 0;  // pushes that had to wait for space
  std::uint64_t max_wait_pops = 0;   // worst dispatch delay observed
  std::uint64_t batches = 0;         // pop/pop_batch scheduling decisions
};

class JobQueue {
 public:
  /// Throws std::invalid_argument for zero capacity or aging interval.
  explicit JobQueue(std::size_t capacity, std::uint64_t aging_interval = 16);

  /// Blocks while the queue is full. Returns false (job dropped) iff the
  /// queue was closed before space appeared.
  bool push(Job job);

  /// Non-blocking push: false when full or closed.
  bool try_push(Job job);

  /// Blocks until a job is available; nullopt once closed *and* drained —
  /// workers use that as their exit signal.
  std::optional<Dispatch> pop();

  /// Pops the scheduler's head choice plus up to `max_batch - 1` further
  /// same-tenant jobs from the same priority class (FIFO order). Empty
  /// result once closed and drained.
  std::vector<Dispatch> pop_batch(std::size_t max_batch);

  /// Wakes every waiter; subsequent pushes are rejected, pops drain what is
  /// left. Idempotent.
  void close();
  bool closed() const;

  std::size_t size() const;
  std::size_t capacity() const noexcept { return capacity_; }
  std::uint64_t aging_interval() const noexcept { return aging_; }
  QueueStats stats() const;

  /// Upper bound on any job's wait_pops when every scheduling decision
  /// dispatches at most `max_batch` jobs (see file comment).
  std::uint64_t fairness_bound(std::size_t max_batch) const noexcept;

 private:
  struct Entry {
    Job job;
    std::uint64_t seq = 0;          // global arrival order
    std::uint64_t popped_at_push = 0;  // popped_ when submitted (age base)
  };

  // Effective priority of a class head at the current dispatch count; -1
  // for an empty class. Caller holds mutex_.
  int effective_priority(int cls) const;
  // The class the next pop should serve; -1 when everything is empty.
  int pick_class() const;
  Dispatch take_front(int cls);

  const std::size_t capacity_;
  const std::uint64_t aging_;

  mutable std::mutex mutex_;
  std::condition_variable space_cv_;
  std::condition_variable item_cv_;
  std::deque<Entry> classes_[kPriorityLevels];
  std::size_t size_ = 0;
  bool closed_ = false;
  std::uint64_t next_seq_ = 0;
  QueueStats stats_;
};

}  // namespace tl::service
