#pragma once
// The one solve entry point: run a Scenario exactly the way the standalone
// drivers do.
//
// Extracted from quickstart's inline driver wiring so every front end — the
// quickstart CLI, the solve service's workers, the soak bench's standalone
// verification twins — runs the identical path: settings.nranks == 1 is the
// classic single-chunk core::Driver run; nranks > 1 block-decomposes over a
// MiniComm world via DistributedDriver. Port seeding follows the canonical
// scheme (run_seed = 1 + rank), so a Scenario fully determines the result:
// two run_scenario calls return bit-identical field checksums no matter
// which thread, worker, or process runs them.

#include <functional>
#include <vector>

#include "dist/driver.hpp"
#include "service/job.hpp"
#include "sim/trace.hpp"

namespace tl::service {

/// Observability hooks. `sink_for_rank` (when set) is called once per rank
/// before the run and must return a sink that outlives it (nullptr = leave
/// that rank unobserved). Rank 0 doubles as the single-chunk sink.
struct ScenarioHooks {
  std::function<sim::TraceSink*(int rank)> sink_for_rank;
  /// Host threads each rank's port runs with (HostPool width).
  unsigned host_threads = 1;
  /// Precomputed decomposition for this scenario's (nx, ny, nranks) — a
  /// Session's cache hands it in so repeated shapes skip the grid
  /// factorisation. nullptr recomputes; ignored for single-chunk runs.
  const comm::BlockDecomposition* decomposition = nullptr;

  // -- Elastic execution (distributed scenarios only; single-chunk runs have
  // no communication to fault or re-decompose, so these are ignored there) --
  /// active() schedules are injected into the MiniComm world; exchanges run
  /// the reliable ack/retry protocol, so numerics are unchanged.
  comm::FaultSpec faults;
  /// > 0: capture a Snapshot every N steps into on_checkpoint.
  int checkpoint_every = 0;
  std::function<void(const dist::Snapshot&)> on_checkpoint;
  /// Resume from this snapshot instead of step 1 (dist::RunControl::resume).
  const dist::Snapshot* resume = nullptr;
};

/// What a scenario run yields: the step reports, the per-rank breakdown
/// (empty for single-chunk runs), and bit-comparable interior checksums of
/// the final u and energy fields.
struct ScenarioOutcome {
  core::RunReport run;
  std::vector<dist::RankReport> ranks;
  verify::FieldChecksum u_checksum;
  verify::FieldChecksum energy_checksum;
};

/// Runs `scenario` to completion. Throws std::invalid_argument for an
/// unsupported model x device pair or invalid settings.
ScenarioOutcome run_scenario(const Scenario& scenario,
                             const ScenarioHooks& hooks = {});

}  // namespace tl::service
