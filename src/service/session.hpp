#pragma once
// Session: one worker's reusable execution context.
//
// A Session owns what repeated solves share — the decomposition cache (a
// Scenario's BlockDecomposition is a pure function of (nx, ny, nranks), so
// mixed workloads that repeat shapes skip the grid factorisation) and a
// MetricsRegistry slice metering every job per tenant. Registries are
// single-writer by construction (DESIGN.md §11), which is exactly why each
// worker owns its own Session: the slice is written only from that worker's
// thread, and the pool merges slices pairwise in worker order at drain time.
//
// run() never throws: a job that is rejected (unsupported model x device,
// invalid settings) or dies mid-solve comes back with ok == false and the
// reason in `error`, and the worker moves on — one tenant's bad deck must
// not take the service down.

#include <cstdint>
#include <map>
#include <string>

#include "comm/decomposition.hpp"
#include "service/entry.hpp"
#include "service/job.hpp"
#include "telemetry/metrics_registry.hpp"

namespace tl::service {

struct SessionConfig {
  unsigned host_threads = 1;  // HostPool width of every port this session runs
};

class Session {
 public:
  explicit Session(SessionConfig config = {}) : config_(config) {}

  /// Executes the job's scenario (standalone-equivalent path — see
  /// service/entry.hpp). Fills the solve fields of the result; scheduling
  /// provenance (worker, batch, wait_pops) is the pool's to stamp.
  JobResult run(const Job& job);

  /// Folds one finished job into the per-tenant registry slice. Call after
  /// provenance is stamped so the wait histogram sees the real delay.
  void meter(const JobResult& result);

  const telemetry::MetricsRegistry& registry() const noexcept {
    return registry_;
  }
  telemetry::MetricsRegistry& registry() noexcept { return registry_; }

  std::uint64_t jobs_run() const noexcept { return jobs_run_; }
  std::size_t cached_decompositions() const noexcept {
    return decompositions_.size();
  }

 private:
  /// Cache lookup, inserting on miss. Only consulted for nranks > 1.
  const comm::BlockDecomposition& decomposition_for(const Scenario& scenario);

  SessionConfig config_;
  std::map<std::string, comm::BlockDecomposition> decompositions_;
  telemetry::MetricsRegistry registry_;
  std::uint64_t jobs_run_ = 0;
};

}  // namespace tl::service
