#pragma once
// The committed service artifact (`"bench": "service"`).
//
// One JSON document per soak/smoke run, regression-checked by `tl_report
// --check` against the committed BENCH_service.json. Emission is
// deterministic for everything the checker treats as structural (job mix,
// per-tenant counts, iterations, launches, simulated seconds — all folded
// in job-id order); wall-clock fields (wall_seconds, jobs_per_s) and
// scheduling outcomes (batches, max_wait_pops) are machine- and
// interleaving-dependent, so the checker applies slower-only tolerance to
// the former and never fails on the latter.

#include <string>

#include "service/pool.hpp"

namespace tl::service {

/// Bench-level facts the pool cannot know: who emitted the artifact and the
/// standalone bit-identity verification tally.
struct ArtifactInfo {
  std::string source = "bench_service";
  std::uint64_t scenarios = 0;      // distinct scenario keys in the job mix
  std::uint64_t verified = 0;       // jobs compared against standalone twins
  std::uint64_t bit_identical = 0;  // comparisons that matched bitwise
};

std::string service_artifact_json(const ServiceConfig& config,
                                  const ServiceReport& report,
                                  const ArtifactInfo& info);

/// Writes the artifact; logs and returns false on I/O failure.
bool write_service_artifact(const std::string& path,
                            const ServiceConfig& config,
                            const ServiceReport& report,
                            const ArtifactInfo& info);

}  // namespace tl::service
