#pragma once
// Job: one tenant's solve request, and the result the service hands back.
//
// A Job is pure data — settings + scenario (model, device) + tenant id — so
// it can sit in a queue, be batched, and be replayed standalone. A JobResult
// carries everything a tenant needs to trust the answer without the fields
// themselves: the solve statistics, the simulated cost, and bit-comparable
// interior checksums of the final u/energy fields. Two runs of the same Job
// (through the service or through a standalone DistributedDriver) produce
// byte-identical checksums — the soak bench's core assertion.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "comm/fault.hpp"
#include "core/settings.hpp"
#include "dist/checkpoint.hpp"
#include "sim/device.hpp"
#include "sim/model_id.hpp"
#include "verify/checksum.hpp"

namespace tl::service {

/// What to solve: the full deck plus the programming model x device pair.
/// settings.nranks selects the decomposition width, exactly as a standalone
/// DistributedDriver run would.
struct Scenario {
  core::Settings settings;
  sim::Model model = sim::Model::kOmp3Cpp;
  sim::DeviceId device = sim::DeviceId::kCpuSandyBridge;

  int cells() const noexcept { return settings.nx * settings.ny; }

  /// Stable identity key (mesh, solver, model, device, ranks, steps) — used
  /// to dedupe standalone verification twins in the soak bench. Two jobs
  /// with equal keys produce bit-identical results.
  std::string key() const;
};

/// Scheduling class. Lower value = served sooner; the queue's aging bound
/// guarantees even kLow jobs are dispatched within a stated number of pops.
enum class Priority : int { kHigh = 0, kNormal = 1, kLow = 2 };
inline constexpr int kPriorityLevels = 3;

constexpr std::string_view priority_name(Priority p) {
  switch (p) {
    case Priority::kHigh: return "high";
    case Priority::kNormal: return "normal";
    case Priority::kLow: return "low";
  }
  return "?";
}
std::optional<Priority> parse_priority(std::string_view name);

struct Job {
  std::uint64_t id = 0;  // assigned by the service at submit
  std::string tenant;
  Priority priority = Priority::kNormal;
  Scenario scenario;

  // -- Elastic execution (distributed scenarios only) ------------------------
  /// Comm fault schedule injected into the job's MiniComm world (soak tests;
  /// inactive by default). The reliable protocol keeps numerics unchanged.
  comm::FaultSpec faults;
  /// A resumable job runs under per-step checkpoint capture; when it dies on
  /// a retryable comm fault (CommFaultError), the worker re-enqueues it from
  /// its last snapshot with the next fault epoch instead of failing it.
  bool resumable = false;
  int max_resume_attempts = 3;

  /// Resume state, service-internal: set by the worker on re-enqueue, never
  /// by tenants. Null means start from step 1.
  std::shared_ptr<const dist::Snapshot> resume_from;
  int resume_attempts = 0;  // doubles as the fault-schedule epoch

  // -- Planner (consulted only when ServiceConfig::planner is enabled) ------
  /// Leave scenario.model free for the planner to fill at submit time from
  /// the fitted cost catalog. Default pinned: with the planner off, or the
  /// field pinned, the tenant's choice runs unchanged. The solver is never
  /// free — the planner changes which configuration runs, never the
  /// numerics of the answer.
  bool plan_model_free = false;
  /// Same, for scenario.device.
  bool plan_device_free = false;
};

/// One finished job. `ok == false` means the job was rejected or threw
/// (unsupported model x device, invalid settings); `error` says why, and the
/// solve fields are zero.
struct JobResult {
  std::uint64_t id = 0;
  std::string tenant;
  Priority priority = Priority::kNormal;
  /// The scenario that actually ran, planner-filled fields included — the
  /// identity a standalone verification twin must replay. Equal to the
  /// submitted scenario whenever every field was pinned.
  Scenario scenario;

  bool ok = false;
  std::string error;
  /// Failed on a retryable comm fault — a resumable job is re-enqueued from
  /// its last checkpoint rather than recorded with this result.
  bool retryable = false;
  int resume_attempts = 0;  // checkpoint resumes this result rode on
  /// Last snapshot captured before a retryable failure (resumable jobs
  /// only); the pool consumes it on re-enqueue and strips it from recorded
  /// results.
  std::shared_ptr<const dist::Snapshot> checkpoint;

  // Solve outcome (identical to the standalone run's).
  bool converged = false;
  int iterations = 0;
  int inner_iterations = 0;
  double final_rr = 0.0;
  double sim_seconds = 0.0;
  std::uint64_t kernel_launches = 0;
  std::uint64_t comm_bytes = 0;
  verify::FieldChecksum u_checksum;
  verify::FieldChecksum energy_checksum;

  // Scheduling provenance.
  int worker = -1;          // worker index that ran the job
  std::uint64_t batch = 0;  // batch the job was dispatched in (1-based)
  std::uint64_t wait_pops = 0;  // jobs dispatched between submit and dispatch
  double wall_ns = 0.0;         // measured execution time in the worker
};

}  // namespace tl::service
