#include "service/pool.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>

namespace tl::service {

void ServiceConfig::validate() const {
  if (small_workers < 1) {
    throw std::invalid_argument("ServiceConfig: need at least 1 small worker");
  }
  if (large_workers < 0) {
    throw std::invalid_argument("ServiceConfig: negative large workers");
  }
  if (queue_capacity == 0) {
    throw std::invalid_argument("ServiceConfig: zero queue capacity");
  }
  if (aging_interval == 0) {
    throw std::invalid_argument("ServiceConfig: zero aging interval");
  }
  if (batch_max == 0) {
    throw std::invalid_argument("ServiceConfig: zero batch limit");
  }
  if (large_cells_threshold < 1) {
    throw std::invalid_argument("ServiceConfig: bad large-mesh threshold");
  }
  if (host_threads == 0) {
    throw std::invalid_argument("ServiceConfig: zero host threads");
  }
  if (planner.enabled) {
    if (planner.catalog == nullptr) {
      throw std::invalid_argument(
          "ServiceConfig: planner enabled without a model catalog");
    }
    if (!(planner.large_seconds_threshold > 0.0)) {
      throw std::invalid_argument(
          "ServiceConfig: planner threshold must be positive seconds");
    }
  }
}

bool ServiceReport::all_ok() const noexcept {
  for (const JobResult& r : results) {
    if (!r.ok) return false;
  }
  return true;
}

std::uint64_t ServiceReport::max_wait_pops() const noexcept {
  std::uint64_t worst = 0;
  for (const JobResult& r : results) {
    worst = std::max(worst, r.wait_pops);
  }
  return worst;
}

std::vector<TenantSummary> summarize_tenants(
    const std::vector<JobResult>& results) {
  // Sort an index by job id so the floating-point sums accumulate in
  // submission order — byte-identical regardless of worker interleaving.
  std::vector<const JobResult*> ordered;
  ordered.reserve(results.size());
  for (const JobResult& r : results) ordered.push_back(&r);
  std::sort(ordered.begin(), ordered.end(),
            [](const JobResult* a, const JobResult* b) { return a->id < b->id; });

  std::map<std::string, TenantSummary> by_tenant;
  for (const JobResult* r : ordered) {
    TenantSummary& t = by_tenant[r->tenant];
    t.tenant = r->tenant;
    ++t.jobs;
    t.max_wait_pops = std::max(t.max_wait_pops, r->wait_pops);
    t.wall_seconds += r->wall_ns * 1e-9;
    if (!r->ok) {
      ++t.failures;
      continue;
    }
    if (r->converged) ++t.converged;
    t.iterations += static_cast<std::uint64_t>(r->iterations);
    t.inner_iterations += static_cast<std::uint64_t>(r->inner_iterations);
    t.kernel_launches += r->kernel_launches;
    t.comm_bytes += r->comm_bytes;
    t.sim_seconds += r->sim_seconds;
  }

  std::vector<TenantSummary> tenants;
  tenants.reserve(by_tenant.size());
  for (auto& [name, summary] : by_tenant) {
    (void)name;
    tenants.push_back(std::move(summary));
  }
  return tenants;
}

SolveService::SolveService(ServiceConfig config)
    : config_((config.validate(), config)),
      small_lane_(config.queue_capacity, config.aging_interval),
      large_lane_(config.queue_capacity, config.aging_interval),
      start_(std::chrono::steady_clock::now()) {
  const int total = config_.small_workers + config_.large_workers;
  sessions_.reserve(static_cast<std::size_t>(total));
  for (int i = 0; i < total; ++i) {
    sessions_.emplace_back(SessionConfig{config_.host_threads});
  }
  workers_.reserve(static_cast<std::size_t>(total));
  for (int i = 0; i < config_.small_workers; ++i) {
    workers_.emplace_back([this, i] {
      worker_main(i, small_lane_, config_.batch_max);
    });
  }
  for (int i = 0; i < config_.large_workers; ++i) {
    const int wi = config_.small_workers + i;
    workers_.emplace_back([this, wi] { worker_main(wi, large_lane_, 1); });
  }
}

SolveService::~SolveService() {
  small_lane_.close();
  large_lane_.close();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

std::uint64_t SolveService::submit(Job job) {
  bool route_large;
  {
    std::lock_guard lock(submit_mutex_);
    if (finished_) {
      throw std::logic_error("SolveService::submit: service already finished");
    }
    job.id = next_id_++;
    route_large = config_.planner.enabled
                      ? plan_and_route(job)
                      : job.scenario.cells() >= config_.large_cells_threshold;
  }
  const std::uint64_t id = job.id;
  JobQueue& lane = route_large && config_.large_workers > 0 ? large_lane_
                                                            : small_lane_;
  if (!lane.push(std::move(job))) {
    throw std::logic_error("SolveService::submit: queue closed");
  }
  return id;
}

bool SolveService::plan_and_route(Job& job) {
  const tune::ModelCatalog& catalog = *config_.planner.catalog;
  Scenario& s = job.scenario;
  planner_metrics_.add_counter("tl_planner_jobs", 1.0);

  // Per-job config selection: the tenant pins any subset, the planner fills
  // the rest with the catalog argmin. Never touches solver or numerics.
  if (job.plan_model_free || job.plan_device_free) {
    tune::PlanQuery query;
    query.nx = s.settings.nx;
    query.ny = s.settings.ny;
    query.solver = std::string(core::solver_name(s.settings.solver));
    if (!job.plan_model_free) query.model = std::string(sim::model_id(s.model));
    if (!job.plan_device_free) {
      query.device = std::string(sim::device_short_name(s.device));
    }
    query.rank_choices = {s.settings.nranks};
    query.overlap_comm = s.settings.overlap_comm;
    query.use_fused = s.settings.use_fused;
    query.use_pipelined = s.settings.use_pipelined;
    const tune::PlanResult plan = tune::choose_config(catalog, query);
    bool applied = false;
    if (plan.ok) {
      const auto model = sim::parse_model(plan.best.model);
      const auto device = sim::parse_device(plan.best.device);
      if (model && device) {
        if (job.plan_model_free) s.model = *model;
        if (job.plan_device_free) s.device = *device;
        applied = true;
      }
    }
    planner_metrics_.add_counter(
        applied ? "tl_planner_planned" : "tl_planner_plan_fallback", 1.0);
  }

  // Lane routing by predicted cost; no basis => the static cell-count rule.
  tune::PredictQuery query;
  query.model = std::string(sim::model_id(s.model));
  query.device = std::string(sim::device_short_name(s.device));
  query.solver = std::string(core::solver_name(s.settings.solver));
  query.nx = s.settings.nx;
  query.ny = s.settings.ny;
  query.ranks = s.settings.nranks;
  query.use_fused = s.settings.use_fused;
  query.overlap_comm = s.settings.overlap_comm;
  query.use_pipelined = s.settings.use_pipelined;
  const tune::Prediction pred = tune::predict(catalog, query);
  if (!pred.ok) {
    planner_metrics_.add_counter("tl_planner_route_fallback", 1.0);
    return s.cells() >= config_.large_cells_threshold;
  }
  const bool large = pred.seconds >= config_.planner.large_seconds_threshold;
  planner_metrics_.add_counter(
      large ? "tl_planner_routed_large" : "tl_planner_routed_small", 1.0);
  planner_metrics_.add_counter("tl_planner_predicted_seconds", pred.seconds);
  return large;
}

std::uint64_t SolveService::submitted() const noexcept {
  return small_lane_.stats().pushed + large_lane_.stats().pushed;
}

std::uint64_t SolveService::fairness_bound() const noexcept {
  return std::max(small_lane_.fairness_bound(config_.batch_max),
                  large_lane_.fairness_bound(1));
}

void SolveService::worker_main(int worker_index, JobQueue& lane,
                               std::size_t batch_max) {
  Session& session = sessions_[static_cast<std::size_t>(worker_index)];
  while (true) {
    std::vector<Dispatch> batch = lane.pop_batch(batch_max);
    if (batch.empty()) return;  // lane closed and drained
    std::uint64_t batch_id;
    {
      std::lock_guard lock(submit_mutex_);
      batch_id = next_batch_++;
    }
    for (Dispatch& d : batch) {
      JobResult result = session.run(d.job);
      result.worker = worker_index;
      result.batch = batch_id;
      result.wait_pops = d.wait_pops;

      // Elastic retry: a resumable job that died on a comm fault goes back
      // on its lane from its last checkpoint (next fault epoch) instead of
      // being recorded as failed. If the lane is closed (draining) or full
      // (a blocking push from the lane's own worker could deadlock), the
      // retries run inline on this worker so the job still completes —
      // either way attempts stay bounded by max_resume_attempts.
      if (!result.ok && result.retryable && d.job.resumable &&
          d.job.resume_attempts < d.job.max_resume_attempts) {
        Job retry = d.job;
        bool requeued = false;
        while (true) {
          ++retry.resume_attempts;
          retry.resume_from = std::move(result.checkpoint);
          if (lane.try_push(retry)) {
            requeued = true;
            break;
          }
          result = session.run(retry);
          result.worker = worker_index;
          result.batch = batch_id;
          result.wait_pops = d.wait_pops;
          if (result.ok || !result.retryable ||
              retry.resume_attempts >= retry.max_resume_attempts) {
            break;
          }
        }
        if (requeued) continue;  // the retry will record the final result
      }

      result.checkpoint.reset();
      session.meter(result);
      std::lock_guard lock(results_mutex_);
      results_.push_back(std::move(result));
    }
  }
}

ServiceReport SolveService::finish() {
  {
    std::lock_guard lock(submit_mutex_);
    if (finished_) {
      throw std::logic_error("SolveService::finish: already finished");
    }
    finished_ = true;
  }
  small_lane_.close();
  large_lane_.close();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }

  ServiceReport report;
  {
    std::lock_guard lock(results_mutex_);
    report.results = std::move(results_);
  }
  std::sort(report.results.begin(), report.results.end(),
            [](const JobResult& a, const JobResult& b) { return a.id < b.id; });
  report.tenants = summarize_tenants(report.results);
  report.small_queue = small_lane_.stats();
  report.large_queue = large_lane_.stats();
  report.fairness_bound = fairness_bound();
  report.wall_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start_)
                            .count();

  std::vector<telemetry::MetricsRegistry> slices;
  slices.reserve(sessions_.size() + 1);
  for (Session& s : sessions_) slices.push_back(std::move(s.registry()));
  // The planner slice rides along only when the planner is on, so a
  // planner-off report (the committed BENCH_service.json baseline) is
  // byte-identical to pre-planner builds.
  if (config_.planner.enabled) {
    slices.push_back(std::move(planner_metrics_));
  }
  if (!slices.empty()) {
    report.metrics = telemetry::MetricsRegistry::combine_all(slices);
  }
  return report;
}

}  // namespace tl::service
