#include "service/queue.hpp"

#include <algorithm>
#include <stdexcept>

namespace tl::service {

JobQueue::JobQueue(std::size_t capacity, std::uint64_t aging_interval)
    : capacity_(capacity), aging_(aging_interval) {
  if (capacity == 0) {
    throw std::invalid_argument("JobQueue: capacity must be positive");
  }
  if (aging_interval == 0) {
    throw std::invalid_argument("JobQueue: aging interval must be positive");
  }
}

bool JobQueue::push(Job job) {
  std::unique_lock lock(mutex_);
  if (size_ >= capacity_ && !closed_) ++stats_.blocked_pushes;
  space_cv_.wait(lock, [&] { return size_ < capacity_ || closed_; });
  if (closed_) return false;
  const int cls = std::clamp(static_cast<int>(job.priority), 0,
                             kPriorityLevels - 1);
  classes_[cls].push_back(
      Entry{std::move(job), next_seq_++, stats_.popped});
  ++size_;
  ++stats_.pushed;
  item_cv_.notify_one();
  return true;
}

bool JobQueue::try_push(Job job) {
  std::lock_guard lock(mutex_);
  if (closed_ || size_ >= capacity_) return false;
  const int cls = std::clamp(static_cast<int>(job.priority), 0,
                             kPriorityLevels - 1);
  classes_[cls].push_back(
      Entry{std::move(job), next_seq_++, stats_.popped});
  ++size_;
  ++stats_.pushed;
  item_cv_.notify_one();
  return true;
}

int JobQueue::effective_priority(int cls) const {
  if (classes_[cls].empty()) return -1;
  const Entry& head = classes_[cls].front();
  const std::uint64_t age = stats_.popped - head.popped_at_push;
  const std::uint64_t boost = age / aging_;
  const std::uint64_t p = static_cast<std::uint64_t>(cls);
  return static_cast<int>(p > boost ? p - boost : 0);
}

int JobQueue::pick_class() const {
  int best = -1;
  int best_key = 0;
  std::uint64_t best_seq = 0;
  for (int cls = 0; cls < kPriorityLevels; ++cls) {
    const int key = effective_priority(cls);
    if (key < 0) continue;
    const std::uint64_t seq = classes_[cls].front().seq;
    if (best < 0 || key < best_key || (key == best_key && seq < best_seq)) {
      best = cls;
      best_key = key;
      best_seq = seq;
    }
  }
  return best;
}

Dispatch JobQueue::take_front(int cls) {
  Entry entry = std::move(classes_[cls].front());
  classes_[cls].pop_front();
  --size_;
  const std::uint64_t wait = stats_.popped - entry.popped_at_push;
  ++stats_.popped;
  stats_.max_wait_pops = std::max(stats_.max_wait_pops, wait);
  return Dispatch{std::move(entry.job), wait};
}

std::optional<Dispatch> JobQueue::pop() {
  std::unique_lock lock(mutex_);
  item_cv_.wait(lock, [&] { return size_ > 0 || closed_; });
  if (size_ == 0) return std::nullopt;  // closed and drained
  const int cls = pick_class();
  Dispatch d = take_front(cls);
  ++stats_.batches;
  space_cv_.notify_one();
  return d;
}

std::vector<Dispatch> JobQueue::pop_batch(std::size_t max_batch) {
  std::vector<Dispatch> batch;
  if (max_batch == 0) return batch;
  std::unique_lock lock(mutex_);
  item_cv_.wait(lock, [&] { return size_ > 0 || closed_; });
  if (size_ == 0) return batch;  // closed and drained

  const int cls = pick_class();
  batch.push_back(take_front(cls));
  // Copy, not reference: push_back below may reallocate `batch`.
  const std::string tenant = batch.front().job.tenant;
  // Greedy same-tenant extension: scan the class FIFO front-to-back so the
  // batch preserves arrival order; never crosses tenants or classes.
  std::deque<Entry>& q = classes_[cls];
  for (std::size_t i = 0; i < q.size() && batch.size() < max_batch;) {
    if (q[i].job.tenant == tenant) {
      Entry entry = std::move(q[i]);
      q.erase(q.begin() + static_cast<std::ptrdiff_t>(i));
      --size_;
      const std::uint64_t wait = stats_.popped - entry.popped_at_push;
      ++stats_.popped;
      stats_.max_wait_pops = std::max(stats_.max_wait_pops, wait);
      batch.push_back(Dispatch{std::move(entry.job), wait});
    } else {
      ++i;
    }
  }
  ++stats_.batches;
  space_cv_.notify_all();
  return batch;
}

void JobQueue::close() {
  std::lock_guard lock(mutex_);
  closed_ = true;
  item_cv_.notify_all();
  space_cv_.notify_all();
}

bool JobQueue::closed() const {
  std::lock_guard lock(mutex_);
  return closed_;
}

std::size_t JobQueue::size() const {
  std::lock_guard lock(mutex_);
  return size_;
}

QueueStats JobQueue::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

std::uint64_t JobQueue::fairness_bound(std::size_t max_batch) const noexcept {
  const std::uint64_t per_decision = std::max<std::size_t>(max_batch, 1);
  return per_decision *
         (static_cast<std::uint64_t>(kPriorityLevels - 1) * aging_ +
          capacity_);
}

}  // namespace tl::service
