// distributed_halo: TeaLeaf's inter-node layer — the paper notes every
// evaluated programming model stops at node-level parallelism and leaves
// distribution to MPI. This example runs the CG solve block-decomposed over
// MiniComm ranks (the in-process MPI substitute): per-tile kernels, halo
// exchange between neighbours, allreduce for every dot product.
//
//   ./distributed_halo [--nx 64] [--ranks 4]

#include <cstdio>
#include <memory>

#include "comm/halo.hpp"
#include "comm/minimpi.hpp"
#include "core/reference_kernels.hpp"
#include "core/state_init.hpp"
#include "util/cli.hpp"

using namespace tl;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int nx = static_cast<int>(cli.get_long_or("nx", 64));
  const int ranks = static_cast<int>(cli.get_long_or("ranks", 4));

  core::Settings proto = core::Settings::default_problem();
  proto.nx = proto.ny = nx;

  const comm::BlockDecomposition decomp(nx, nx, ranks);
  std::printf("global mesh %dx%d over %d ranks (%dx%d process grid)\n", nx, nx,
              ranks, decomp.grid_x(), decomp.grid_y());

  comm::run_ranks(ranks, [&](comm::Communicator& cm) {
    const comm::Tile& tile = decomp.tile(cm.rank());
    core::Mesh mesh(tile.nx(), tile.ny(), proto.halo_depth);
    const double gdx = (proto.x_max - proto.x_min) / nx;
    mesh.x_min = proto.x_min + tile.x_begin * gdx;
    mesh.x_max = proto.x_min + tile.x_end * gdx;
    mesh.y_min = proto.y_min + tile.y_begin * gdx;
    mesh.y_max = proto.y_min + tile.y_end * gdx;

    core::Chunk chunk(mesh);
    core::apply_initial_states(chunk, proto);
    core::ReferenceKernels k(mesh);
    k.upload_state(chunk);

    comm::HaloExchanger ex(decomp, cm.rank(), proto.halo_depth);
    auto exchange = [&](core::FieldId f, int tag) {
      ex.exchange(cm, k.field(f), 1, tag);
    };

    ex.exchange(cm, k.field(core::FieldId::kDensity), 2, 0);
    ex.exchange(cm, k.field(core::FieldId::kEnergy0), 2, 1);
    k.init_u();
    const double rx = proto.dt_init / (gdx * gdx);
    k.init_coefficients(proto.coefficient, rx, rx);
    exchange(core::FieldId::kU, 2);

    using Op = comm::Communicator::ReduceOp;
    double rro = cm.allreduce(k.cg_init(), Op::kSum);
    exchange(core::FieldId::kP, 3);
    int iterations = 0;
    for (int it = 0; it < proto.max_iters; ++it) {
      const double pw = cm.allreduce(k.cg_calc_w(), Op::kSum);
      const double alpha = rro / pw;
      const double rrn = cm.allreduce(k.cg_calc_ur(alpha), Op::kSum);
      ++iterations;
      if (rrn < proto.eps) break;
      k.cg_calc_p(rrn / rro);
      exchange(core::FieldId::kP, 4);
      rro = rrn;
    }

    k.finalise();
    const core::FieldSummary local = k.field_summary();
    const double temp = cm.allreduce(local.temperature, Op::kSum);
    const double mass = cm.allreduce(local.mass, Op::kSum);
    cm.barrier();
    if (cm.rank() == 0) {
      std::printf("converged in %d iterations\n", iterations);
      std::printf("global mass=%.4f temperature=%.9f\n", mass, temp);
    }
  });
  return 0;
}
