// mesh_sweep: a miniature, fully numeric version of the paper's Figure 11 —
// real solves (no iteration extrapolation) over a ladder of small meshes,
// showing the per-launch-overhead and cache effects at true small scale.
//
//   ./mesh_sweep [--device cpu|gpu|knc] [--max-nx 192]

#include <cstdio>
#include <vector>

#include "core/driver.hpp"
#include "ports/registry.hpp"
#include "util/cli.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

using namespace tl;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto device = sim::parse_device(cli.get_or("device", "cpu"));
  if (!device) {
    std::fprintf(stderr, "unknown --device\n");
    return 1;
  }
  const int max_nx = static_cast<int>(cli.get_long_or("max-nx", 192));

  std::vector<int> meshes;
  for (int nx = 48; nx <= max_nx; nx += 48) meshes.push_back(nx);

  std::printf("real CG solves on %s, simulated milliseconds per solve\n\n",
              std::string(sim::device_spec(*device).name).c_str());

  std::vector<std::string> header{"Model \\ mesh"};
  for (const int nx : meshes) header.push_back(util::strf("%dx%d", nx, nx));
  util::Table table(header);

  for (const sim::Model model : ports::figure_models(*device)) {
    std::vector<std::string> row{std::string(sim::model_name(model))};
    for (const int nx : meshes) {
      core::Settings s = core::Settings::default_problem();
      s.nx = s.ny = nx;
      core::Driver driver(s, ports::make_port(model, *device,
                                              core::Mesh(nx, nx, s.halo_depth)));
      const auto report = driver.run();
      row.push_back(util::strf("%.2f", report.sim_total_seconds * 1e3));
    }
    table.row(std::move(row));
  }
  table.print();
  std::printf(
      "\nthe offload ports' rows start high and flatten as launch overheads\n"
      "amortise — the small-mesh end of the paper's Fig 11.\n");
  return 0;
}
