// deck_run: drive the solver from a tea.in-style input deck, like the
// original TeaLeaf binary.
//
//   ./deck_run path/to/tea.in [--model fortran] [--device cpu]
//
// See examples/tea.in for the deck format (x_cells, tl_use_cg, state lines,
// ...). Unrecognised keys are ignored; missing keys keep TeaLeaf defaults.

#include <cstdio>

#include "core/driver.hpp"
#include "ports/registry.hpp"
#include "util/cli.hpp"
#include "util/ini.hpp"
#include "util/string_util.hpp"

using namespace tl;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  if (cli.positional().empty()) {
    std::fprintf(stderr, "usage: %s <deck.in> [--model m] [--device d]\n",
                 cli.program().c_str());
    return 1;
  }

  core::Settings settings;
  try {
    settings = core::Settings::from_config(
        util::IniConfig::parse_file(cli.positional().front()));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "deck error: %s\n", e.what());
    return 1;
  }

  const auto model = sim::parse_model(cli.get_or("model", "fortran"));
  const auto device = sim::parse_device(cli.get_or("device", "cpu"));
  if (!model || !device || !ports::is_supported(*model, *device)) {
    std::fprintf(stderr, "bad or unsupported --model/--device combination\n");
    return 1;
  }

  std::printf("deck: %s | %dx%d cells | %s | eps=%g | %d step(s)\n",
              cli.positional().front().c_str(), settings.nx, settings.ny,
              std::string(core::solver_name(settings.solver)).c_str(),
              settings.eps, settings.end_step);

  core::Driver driver(settings,
                      ports::make_port(*model, *device,
                                       core::Mesh(settings.nx, settings.ny,
                                                  settings.halo_depth)));
  for (int s = 0; s < settings.end_step; ++s) {
    const core::StepReport step = driver.run_step();
    std::printf(
        "step %2d: dt=%.4g  iters=%4d  |r|^2=%.3e  temperature=%.9f\n",
        step.step, step.dt, step.solve.iterations, step.solve.final_rr,
        step.summary.temperature);
    if (!step.solve.converged) {
      std::fprintf(stderr, "step %d failed to converge\n", step.step);
      return 1;
    }
  }
  std::printf("simulated total: %s\n",
              util::human_seconds(
                  driver.kernels().clock().elapsed_seconds()).c_str());
  return 0;
}
