// compare_models: the paper's experiment in miniature — run every supported
// (model, device) pair on the same problem with full real numerics, verify
// they agree on the physics, and rank them by simulated runtime per device.
//
//   ./compare_models [--nx 64] [--solver cg|cheby|ppcg]

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/driver.hpp"
#include "ports/registry.hpp"
#include "util/cli.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

using namespace tl;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int nx = static_cast<int>(cli.get_long_or("nx", 64));

  core::Settings settings = core::Settings::default_problem();
  settings.nx = settings.ny = nx;
  const std::string solver_id = cli.get_or("solver", "cg");
  if (solver_id == "cheby") settings.solver = core::SolverKind::kCheby;
  else if (solver_id == "ppcg") settings.solver = core::SolverKind::kPpcg;

  std::printf("comparing all supported ports, %dx%d, %s solver\n\n", nx, nx,
              std::string(core::solver_name(settings.solver)).c_str());

  struct Entry {
    sim::Model model;
    sim::DeviceId device;
    core::RunReport report;
  };

  std::vector<Entry> entries;
  for (const sim::DeviceId device : sim::kAllDevices) {
    for (const sim::Model model : sim::kAllModels) {
      if (!ports::is_supported(model, device)) continue;
      core::Driver driver(
          settings, ports::make_port(model, device,
                                     core::Mesh(nx, nx, settings.halo_depth)));
      entries.push_back({model, device, driver.run()});
    }
  }

  // All ports must agree on the answer — the paper's objectivity condition.
  const double reference_temp = entries.front().report.steps[0].summary.temperature;
  for (const auto& e : entries) {
    const double t = e.report.steps[0].summary.temperature;
    if (std::abs(t - reference_temp) > 1e-8 * std::abs(reference_temp)) {
      std::fprintf(stderr, "MISMATCH: %s reports temperature %.12f != %.12f\n",
                   std::string(sim::model_name(e.model)).c_str(), t,
                   reference_temp);
      return 1;
    }
  }
  std::printf("all %zu ports agree: temperature = %.9f (%d iterations each)\n\n",
              entries.size(), reference_temp,
              entries.front().report.steps[0].solve.iterations);

  for (const sim::DeviceId device : sim::kAllDevices) {
    std::vector<const Entry*> on_device;
    for (const auto& e : entries) {
      if (e.device == device) on_device.push_back(&e);
    }
    std::sort(on_device.begin(), on_device.end(), [](const auto* a, const auto* b) {
      return a->report.sim_total_seconds < b->report.sim_total_seconds;
    });
    std::printf("-- %s --\n", std::string(sim::device_spec(device).name).c_str());
    util::Table table({"Rank", "Model", "sim time", "achieved BW"});
    int rank = 0;
    for (const auto* e : on_device) {
      table.row({util::strf("%d", ++rank),
                 std::string(sim::model_name(e->model)),
                 util::human_seconds(e->report.sim_total_seconds),
                 util::strf("%.1f GB/s", e->report.achieved_bandwidth_gbs)});
    }
    table.print();
    std::printf("\n");
  }
  std::printf(
      "note: at this small size per-launch overheads dominate (the paper's\n"
      "Fig 11 small-mesh regime); run the bench/ binaries for the 4096^2\n"
      "figures where bandwidth efficiency decides the ranking.\n");
  return 0;
}
