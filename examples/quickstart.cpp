// Quickstart: solve one implicit heat-conduction step with the public API.
//
//   ./quickstart [--nx 128] [--solver cg|cheby|ppcg|jacobi] [--model kokkos]
//                [--device cpu|gpu|knc] [--steps 1] [--ranks 1]
//                [--profile] [--trace=FILE] [--report=FILE] [--verify]
//
// Builds the default TeaLeaf benchmark problem (dense cold background, hot
// light region), runs it through the chosen programming-model port on the
// chosen simulated device, and prints the solve statistics, the physics
// summary, and the simulated cost. --profile adds the per-kernel breakdown of
// the live port's solve and --trace writes it as Chrome-trace JSON — the same
// event stream the paper-scale benches record from the analytic replay.
// --verify re-runs this model x device x solver cell through the conformance
// checker (src/verify) against the serial reference kernels and exits
// nonzero if the port diverges beyond the documented tolerances.
// --ranks R (R > 1) block-decomposes the mesh over R MiniComm ranks and runs
// the same solve distributed (src/dist): per-rank comm statistics are
// summarised, --profile folds every rank's events (including the "comm"
// phase) into one table, and --trace writes one trace group per rank.
// --report=FILE writes the versioned tl-report-1 JSON run report (settings
// echo, per-kernel roofline profile, per-rank comm breakdown, registry
// counters/histograms) plus its sibling .om OpenMetrics export — the
// artifact `tl_report` analyses and regression-checks.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/driver.hpp"
#include "dist/driver.hpp"
#include "ports/registry.hpp"
#include "service/entry.hpp"
#include "sim/trace.hpp"
#include "telemetry/collectors.hpp"
#include "telemetry/report.hpp"
#include "util/cli.hpp"
#include "util/metrics.hpp"
#include "util/string_util.hpp"
#include "verify/conformance.hpp"
#include "verify/report.hpp"

using namespace tl;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int nx = static_cast<int>(cli.get_long_or("nx", 128));
  const int steps = static_cast<int>(cli.get_long_or("steps", 1));
  const int ranks = static_cast<int>(cli.get_long_or("ranks", 1));

  core::Settings settings = core::Settings::default_problem();
  settings.nx = settings.ny = nx;
  settings.end_step = steps;
  settings.nranks = ranks;

  const std::string solver_id = cli.get_or("solver", "cg");
  if (solver_id == "cg") settings.solver = core::SolverKind::kCg;
  else if (solver_id == "cheby") settings.solver = core::SolverKind::kCheby;
  else if (solver_id == "ppcg") settings.solver = core::SolverKind::kPpcg;
  else if (solver_id == "jacobi") settings.solver = core::SolverKind::kJacobi;
  else {
    std::fprintf(stderr, "unknown --solver '%s'\n", solver_id.c_str());
    return 1;
  }

  const auto model = sim::parse_model(cli.get_or("model", "kokkos"));
  const auto device = sim::parse_device(cli.get_or("device", "cpu"));
  if (!model || !device) {
    std::fprintf(stderr, "unknown --model or --device\n");
    return 1;
  }
  if (!ports::is_supported(*model, *device)) {
    std::fprintf(stderr, "%s does not support device '%s' (paper Table 1)\n",
                 std::string(sim::model_name(*model)).c_str(),
                 std::string(sim::device_short_name(*device)).c_str());
    return 1;
  }

  std::printf("TeaLeaf %dx%d | %s solver | %s port | %s\n", nx, nx,
              std::string(core::solver_name(settings.solver)).c_str(),
              std::string(sim::model_name(*model)).c_str(),
              std::string(sim::device_spec(*device).name).c_str());

  const bool profile = cli.has("profile");
  const std::string trace_path = cli.get_or("trace", "");
  const std::string report_path = cli.get_or("report", "");
  const bool observe = profile || !trace_path.empty() || !report_path.empty();

  // One solve entry point for every front end (src/service/entry.hpp): the
  // same call the solve service's workers make. Observability hooks hang the
  // sinks off the shared metering spine — one RecordingSink per rank, rank 0
  // doubling as the single-chunk sink.
  service::Scenario scenario;
  scenario.settings = settings;
  scenario.model = *model;
  scenario.device = *device;

  std::vector<sim::RecordingSink> rank_sinks(
      observe ? static_cast<std::size_t>(ranks) : 0);
  service::ScenarioHooks hooks;
  if (observe) {
    hooks.sink_for_rank = [&rank_sinks](int rank) -> sim::TraceSink* {
      return &rank_sinks[static_cast<std::size_t>(rank)];
    };
  }
  service::ScenarioOutcome outcome = service::run_scenario(scenario, hooks);
  const core::RunReport report = std::move(outcome.run);
  const std::vector<dist::RankReport> rank_reports = std::move(outcome.ranks);

  for (const auto& step : report.steps) {
    std::printf(
        "step %d: %4d iters (%d inner), converged=%s, |r|^2=%.3e\n"
        "        volume=%.4f mass=%.4f internal_energy=%.6f temperature=%.6f\n",
        step.step, step.solve.iterations, step.solve.inner_iterations,
        step.solve.converged ? "yes" : "NO", step.solve.final_rr,
        step.summary.volume, step.summary.mass,
        step.summary.internal_energy, step.summary.temperature);
  }
  std::printf(
      "simulated: %s on the %s (%llu kernel launches, %.1f GB/s achieved)\n",
      util::human_seconds(report.sim_total_seconds).c_str(),
      std::string(sim::device_spec(*device).name).c_str(),
      static_cast<unsigned long long>(report.kernel_launches),
      report.achieved_bandwidth_gbs);

  if (!rank_reports.empty()) {
    const bool overlapped =
        std::any_of(rank_reports.begin(), rank_reports.end(),
                    [](const dist::RankReport& r) {
                      return r.comm.overlapped_exchanges > 0;
                    });
    std::printf("\ndecomposed over %d ranks (%s halo protocol, %s):\n", ranks,
                overlapped ? "overlapped" : "x-then-y",
                std::string(sim::node_interconnect().name).c_str());
    for (const dist::RankReport& r : rank_reports) {
      std::printf(
          "  rank %d: tile %dx%d at (%d,%d) | %llu halo exchanges, "
          "%llu allreduces, %.2f MB exchanged, comm %s",
          r.rank, r.tile.x_end - r.tile.x_begin, r.tile.y_end - r.tile.y_begin,
          r.tile.x_begin, r.tile.y_begin,
          static_cast<unsigned long long>(r.comm.halo_exchanges),
          static_cast<unsigned long long>(r.comm.allreduces),
          static_cast<double>(r.comm.bytes) / 1e6,
          util::human_seconds(r.comm.comm_ns * 1e-9).c_str());
      if (r.comm.overlapped_exchanges > 0) {
        std::printf(" (+%s hidden)",
                    util::human_seconds(r.comm.hidden_ns * 1e-9).c_str());
      }
      std::printf("\n");
    }
  }

  if (profile) {
    util::Aggregator agg;
    for (const sim::RecordingSink& sink : rank_sinks) {
      for (const sim::TraceEvent& ev : sink.events()) {
        agg.add(util::LaunchSample{.name = ev.name,
                                   .duration_ns = ev.duration_ns,
                                   .bytes = ev.bytes,
                                   .launch_factor = ev.launch_factor});
      }
    }
    std::printf("\nper-kernel profile (%llu events%s):\n%s",
                static_cast<unsigned long long>(agg.total_events()),
                ranks > 1 ? ", all ranks" : "",
                util::format_profile_table(agg.profiles()).c_str());
  }
  if (!trace_path.empty()) {
    const std::string label = std::string(sim::model_id(*model)) + "/" +
                              std::string(core::solver_name(settings.solver));
    std::vector<sim::TraceGroup> groups;
    std::size_t total_events = 0;
    for (std::size_t r = 0; r < rank_sinks.size(); ++r) {
      std::string group_label = label;
      if (ranks > 1) group_label += util::strf("/rank%zu", r);
      groups.push_back(sim::TraceGroup{group_label, rank_sinks[r].events(),
                                       rank_sinks[r].dropped()});
      total_events += rank_sinks[r].events().size();
    }
    if (sim::write_chrome_trace_file(trace_path, groups)) {
      std::printf("trace: %zu events written to %s (load in chrome://tracing)\n",
                  total_events, trace_path.c_str());
    }
  }

  if (!report_path.empty()) {
    telemetry::ReportContext ctx;
    ctx.source = "quickstart";
    ctx.model = std::string(sim::model_id(*model));
    ctx.device = std::string(sim::device_short_name(*device));
    ctx.solver = std::string(core::solver_name(settings.solver));
    ctx.nx = ctx.ny = nx;
    ctx.steps = steps;
    ctx.ranks = ranks;
    ctx.use_fused = settings.use_fused;
    ctx.overlap_comm = settings.overlap_comm;
    telemetry::ReportBuilder builder(std::move(ctx));

    // Replay the recorded per-rank event streams into the registry (rank
    // order: deterministic) and the kernel-profile aggregator.
    util::Aggregator agg;
    sim::AggregatingSink agg_sink(agg);
    telemetry::RegistrySink reg_sink(builder.registry());
    for (const sim::RecordingSink& sink : rank_sinks) {
      for (const sim::TraceEvent& ev : sink.events()) {
        agg_sink.on_event(ev);
        reg_sink.on_event(ev);
      }
    }
    builder.add_run(report, report.achieved_bandwidth_gbs);
    for (const dist::RankReport& r : rank_reports) builder.add_rank(r);
    builder.add_profiles(agg);
    if (builder.write(report_path)) {
      std::printf(
          "report: tl-report-1 written to %s (+ %s)\n", report_path.c_str(),
          telemetry::ReportBuilder::openmetrics_path(report_path).c_str());
    } else {
      std::fprintf(stderr, "report: FAILED to write %s\n", report_path.c_str());
      return 1;
    }
  }

  if (cli.has("verify")) {
    verify::VerifyOptions vopt;
    vopt.nx = nx;
    vopt.steps = steps;
    vopt.ranks = ranks;
    vopt.solvers = {settings.solver};
    vopt.only_model = *model;
    vopt.only_device = *device;
    std::printf("\nverify: checking this cell against the reference kernels\n");
    const verify::ConformanceReport conformance = verify::run_conformance(vopt);
    std::fputs(verify::format_matrix(conformance).c_str(), stdout);
    if (!conformance.all_pass()) {
      std::fprintf(stderr, "verify: FAILED — port diverges from reference\n");
      return 1;
    }
    std::printf("verify: pass\n");
  }
  return 0;
}
