// Figure 13 (beyond-paper extension): strong and weak scaling of the
// distributed TeaLeaf solve over MiniComm ranks, with the simulated node
// interconnect (sim/network.hpp) supplying the communication cost.
//
//   ./bench_fig13_scaling [--model omp3] [--device cpu]
//                         [--smoke] [--trace=FILE] [--report=FILE]
//
// Full mode follows the standard bench pipeline: real small-mesh solves
// calibrate the iteration power laws, a real multi-rank probe solve counts
// the per-iteration halo exchanges and allreduces on the actual distributed
// code path (src/dist), and the paper's 4096^2 mesh is then projected per
// rank count — per-rank compute metered through PhantomKernels on the
// critical (largest) tile, comm from the probe counts priced by the network
// model. Strong scaling holds the 4096^2 mesh fixed over 1/2/4/8 ranks;
// weak scaling holds ~4096^2 cells per rank (iterations grow with the
// global mesh, so weak efficiency folds the algorithmic cost of the larger
// system, not just communication).
//
// --smoke runs real DistributedDriver solves end to end at CI-sized meshes
// instead (the identical src/dist code path the conformance checker
// exercises), --trace=FILE writes a Chrome trace with one timeline row
// per rank, comm events included, and --report=FILE writes the tl-report-1
// run report of the largest overlapped CG smoke run (per-rank comm
// breakdown included). Both modes print the per-rank comm-bytes table.
//
// Every (solver, scaling, ranks) point runs twice — blocking halo exchange
// and the overlapped pipeline (tl_overlap_comm) — and both rows land in the
// CSV (`mode` column) plus the machine-readable BENCH_overlap.json. Gates,
// enforced by nonzero exit:
//   * blocking strong scaling stays monotone (total non-increasing in ranks);
//   * overlap is never slower than blocking at any point, in either mode;
//   * on the simulated (full-mode) leg, the overlapped pipeline hides at
//     least 50% of the blocking comm time at 8 ranks, strong scaling.

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "comm/decomposition.hpp"
#include "core/driver.hpp"
#include "core/phantom_kernels.hpp"
#include "core/reference_kernels.hpp"
#include "dist/driver.hpp"
#include "ports/registry.hpp"
#include "sim/network.hpp"
#include "telemetry/collectors.hpp"
#include "telemetry/report.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/metrics.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

using namespace tl;
using core::SolverKind;

namespace {

constexpr std::array<int, 4> kRankLadder = {1, 2, 4, 8};
constexpr int kProbeMesh = 64;        // comm-count probe (full mode)
constexpr int kSmokeStrongMesh = 256; // strong-scaling mesh under --smoke
constexpr int kSmokeWeakBase = 160;   // per-rank mesh edge under --smoke

/// One (solver, ranks) point of a scaling curve. With the overlapped
/// pipeline, comm_s is the exposed share only and hidden_s the share that
/// sat behind interior compute; blocking points have hidden_s == 0.
struct ScalePoint {
  int ranks = 1;
  std::string grid = "1x1";
  int global_nx = 0;
  int tile_nx = 0, tile_ny = 0;   // critical (largest) tile
  int iterations = 0;
  double compute_s = 0.0;
  double comm_s = 0.0;
  double hidden_s = 0.0;
  // Allreduce share of the wire time (hidden or not) and the slice of it the
  // pipelined CG hid behind the q = Aw matvec; classic points have
  // allred_hidden_s == 0 and the whole allred_s exposed.
  double allred_s = 0.0;
  double allred_hidden_s = 0.0;
  std::size_t comm_bytes_per_rank = 0;  // wire bytes (sent + received)

  double total() const { return compute_s + comm_s; }
  double allred_exposed_s() const { return allred_s - allred_hidden_s; }
};

/// One blocking-vs-overlap comparison, fed to the gates and the JSON.
struct OverlapCell {
  const char* scaling = "strong";
  SolverKind solver{};
  int ranks = 1;
  double blocking_s = 0.0;
  double blocking_comm_s = 0.0;
  double overlap_s = 0.0;
  double hidden_s = 0.0;

  double hidden_fraction() const {
    return blocking_comm_s > 0.0 ? hidden_s / blocking_comm_s : 0.0;
  }
};

/// One classic-vs-pipelined CG comparison at one strong-scaling rung, fed
/// to the pipeline gates and BENCH_pipeline.json.
struct PipelineCell {
  int ranks = 1;
  double classic_total_s = 0.0;
  double classic_allred_exposed_s = 0.0;
  double pipelined_blocking_s = 0.0;
  double pipelined_overlap_s = 0.0;
  double pipelined_allred_exposed_s = 0.0;
  double pipelined_allred_hidden_s = 0.0;
};

int neighbour_count(const comm::Tile& t) {
  int n = 0;
  for (const comm::Face f : comm::kAllFaces) {
    if (t.has_neighbour(f)) ++n;
  }
  return n;
}

/// The rank on the critical path: most cells, ties broken by comm surface.
const comm::Tile& critical_tile(const comm::BlockDecomposition& d) {
  const comm::Tile* best = &d.tiles().front();
  for (const comm::Tile& t : d.tiles()) {
    const long cells = static_cast<long>(t.nx()) * t.ny();
    const long best_cells = static_cast<long>(best->nx()) * best->ny();
    if (cells > best_cells ||
        (cells == best_cells && neighbour_count(t) > neighbour_count(*best))) {
      best = &t;
    }
  }
  return *best;
}

/// One-direction wire bytes of a depth-1 exchange of one field, matching
/// DistributedKernels' accounting: x strips span the tile height, y strips
/// the full padded width.
std::size_t halo_onedir_bytes(const comm::Tile& t, int halo_depth) {
  std::size_t doubles = 0;
  for (const comm::Face f : {comm::Face::kLeft, comm::Face::kRight}) {
    if (t.has_neighbour(f)) doubles += static_cast<std::size_t>(t.ny());
  }
  for (const comm::Face f : {comm::Face::kBottom, comm::Face::kTop}) {
    if (t.has_neighbour(f)) {
      doubles += static_cast<std::size_t>(t.nx()) + 2u * halo_depth;
    }
  }
  return doubles * sizeof(double);
}

// ---------------------------------------------------------------------------
// Full mode: probe + projection
// ---------------------------------------------------------------------------

/// Per-iteration comm event rates measured on a real distributed solve. The
/// rates are rank-count independent (every rank runs the same control flow
/// and exchange_field fires whether or not a neighbour is present), so one
/// probe per solver serves the whole rank ladder. Per-step constants
/// (initial density/energy0/u exchanges, the summary allreduce) are folded
/// into the rate — a sub-percent overestimate at paper-scale iteration
/// counts.
struct ProbeCounts {
  double halo_per_iter = 0.0;
  double allred_per_iter = 0.0;
  /// Share of halo exchanges that ride the overlapped post/complete path
  /// (the depth-1 single-field exchanges feeding the solver kernels),
  /// measured on the real dist code path with tl_overlap_comm on.
  double overlapped_per_iter = 0.0;
  /// Fused two-double allreduces initiated nonblocking (pipelined CG only;
  /// zero on every classic probe).
  double iallred_per_iter = 0.0;
};

ProbeCounts probe_comm_counts(SolverKind solver, bool pipelined = false) {
  core::Settings s = core::Settings::default_problem();
  s.nx = s.ny = kProbeMesh;
  s.solver = solver;
  s.use_pipelined = pipelined;
  s.nranks = 4;
  dist::DistributedDriver driver(s, [](const core::Mesh& mesh, int) {
    return std::make_unique<core::ReferenceKernels>(mesh);
  });
  const dist::DistReport rep = driver.run();
  const dist::CommStats& stats = rep.ranks.front().comm;
  const int iters = std::max(1, rep.run.steps.back().solve.iterations);
  return ProbeCounts{
      static_cast<double>(stats.halo_exchanges) / iters,
      static_cast<double>(stats.allreduces) / iters,
      static_cast<double>(stats.overlapped_exchanges) / iters,
      static_cast<double>(stats.iallreduces) / iters,
  };
}

/// Per-rank simulated compute seconds: the critical tile metered through
/// PhantomKernels with the iteration count of the *global* system (the
/// distributed solve's control flow is global — see src/dist).
double tile_compute_seconds(const bench::Harness& harness, sim::Model model,
                            sim::DeviceId device, SolverKind solver,
                            int global_nx, int tile_nx, int tile_ny,
                            bool pipelined = false) {
  core::Settings s = core::Settings::default_problem();
  s.nx = tile_nx;
  s.ny = tile_ny;
  s.solver = solver;
  s.use_pipelined = pipelined;
  if (solver == SolverKind::kPpcg) {
    s.ppcg_inner_steps = core::recommended_ppcg_inner_steps(global_nx);
  }
  const int outer = harness.predicted_outer(solver, global_nx);
  // Weak scaling predicts > 10k iterations at the largest meshes; keep the
  // driver's iteration cap above the scripted convergence point so the
  // phantom solve is never silently truncated.
  s.max_iters = std::max(s.max_iters, outer + s.check_interval + 1);
  core::PhantomScript script;
  script.eps = s.eps;
  if (solver == SolverKind::kCheby) {
    script.converge_after_ur = s.cg_prep_iters;
    script.converge_after_cheby = std::max(1, outer - s.cg_prep_iters - 1);
    script.converge_on_ur = false;
  } else {
    script.converge_after_ur = outer;
    script.converge_on_ur = (solver == SolverKind::kCg);
  }
  core::Driver driver(
      s,
      std::make_unique<core::PhantomKernels>(
          model, device, core::Mesh(tile_nx, tile_ny, s.halo_depth), script, 1),
      core::DriverOptions{.materialize_host_state = false});
  return driver.run().sim_total_seconds;
}

/// Share of one outer iteration's compute available as the hiding window of
/// one overlapped exchange: the consuming stencil kernel's interior sweep.
/// Conservative floor — the consumer is one of at most a handful of kernels
/// per iteration in every solver (CG splits the iteration over two fused
/// kernels; Chebyshev/PPCG/Jacobi iterate in one).
constexpr double kConsumerComputeShare = 0.25;

ScalePoint modelled_point(const bench::Harness& harness, sim::Model model,
                          sim::DeviceId device, SolverKind solver,
                          int global_nx, int ranks, const ProbeCounts& probe,
                          const sim::NetworkSpec& net, bool overlap,
                          bool pipelined = false) {
  const comm::BlockDecomposition decomp(global_nx, global_nx, ranks);
  const comm::Tile& crit = critical_tile(decomp);
  const int halo_depth = core::Settings{}.halo_depth;

  ScalePoint p;
  p.ranks = ranks;
  p.grid = util::strf("%dx%d", decomp.grid_x(), decomp.grid_y());
  p.global_nx = global_nx;
  p.tile_nx = crit.nx();
  p.tile_ny = crit.ny();
  p.iterations = harness.predicted_outer(solver, global_nx);
  p.compute_s = tile_compute_seconds(harness, model, device, solver, global_nx,
                                     crit.nx(), crit.ny(), pipelined);
  if (ranks > 1) {
    const double halo_count = probe.halo_per_iter * p.iterations;
    const double allred_count = probe.allred_per_iter * p.iterations;
    const double iallred_count = probe.iallred_per_iter * p.iterations;
    const std::size_t onedir = halo_onedir_bytes(crit, halo_depth);
    const double halo_ns =
        sim::halo_exchange_ns(net, onedir, neighbour_count(crit));
    const double allred_ns = sim::allreduce_ns(net, sizeof(double), ranks);
    // The pipelined CG's fused dots travel as one two-double collective.
    const double iallred_ns =
        sim::allreduce_ns(net, 2 * sizeof(double), ranks);
    p.allred_s = ((allred_count - iallred_count) * allred_ns +
                  iallred_count * iallred_ns) *
                 1e-9;
    p.comm_s = halo_count * halo_ns * 1e-9 + p.allred_s;
    p.comm_bytes_per_rank =
        static_cast<std::size_t>(halo_count * 2.0 * static_cast<double>(onedir));
    if (overlap) {
      // Mirror of DistributedKernels' accounting: each overlapped exchange
      // hides min(wire time, the consuming kernel's interior compute charge)
      // and exposes the remainder. Only the probe-measured share of the halo
      // exchanges is eligible; classic allreduces stay fully exposed, while
      // the pipelined fused allreduce hides behind the q = Aw matvec posted
      // between dots_begin and dots_complete.
      const double interior_frac =
          (static_cast<double>(crit.nx() - 2) * (crit.ny() - 2)) /
          (static_cast<double>(crit.nx()) * crit.ny());
      const double compute_per_iter_ns = p.compute_s * 1e9 / p.iterations;
      const double window_ns =
          interior_frac * compute_per_iter_ns * kConsumerComputeShare;
      const double eligible = probe.overlapped_per_iter * p.iterations;
      const double halo_hidden = eligible * std::min(halo_ns, window_ns) * 1e-9;
      p.allred_hidden_s =
          iallred_count * std::min(iallred_ns, window_ns) * 1e-9;
      p.hidden_s = halo_hidden + p.allred_hidden_s;
      p.comm_s -= p.hidden_s;
    }
  }
  return p;
}

// ---------------------------------------------------------------------------
// Smoke mode: real distributed solves
// ---------------------------------------------------------------------------

ScalePoint measured_point(sim::Model model, sim::DeviceId device,
                          SolverKind solver, int global_nx, int ranks,
                          bool overlap, std::vector<sim::RecordingSink>* sinks,
                          std::vector<dist::RankReport>* rank_reports,
                          core::RunReport* run_out = nullptr,
                          bool pipelined = false) {
  core::Settings s = core::Settings::default_problem();
  s.nx = s.ny = global_nx;
  s.solver = solver;
  s.nranks = ranks;
  s.overlap_comm = overlap;
  s.use_pipelined = pipelined;
  if (solver == SolverKind::kPpcg) {
    s.ppcg_inner_steps = core::recommended_ppcg_inner_steps(global_nx);
  }
  dist::DistributedDriver driver(s, [&](const core::Mesh& mesh, int rank) {
    return ports::make_port(model, device, mesh,
                            1 + static_cast<std::uint64_t>(rank));
  });
  if (sinks != nullptr) {
    *sinks = std::vector<sim::RecordingSink>(static_cast<std::size_t>(ranks));
    std::vector<sim::TraceSink*> ptrs;
    for (sim::RecordingSink& sink : *sinks) ptrs.push_back(&sink);
    driver.set_rank_sinks(std::move(ptrs));
  }
  const dist::DistReport rep = driver.run();

  const dist::RankReport* slowest = &rep.ranks.front();
  for (const dist::RankReport& r : rep.ranks) {
    if (r.sim_seconds > slowest->sim_seconds) slowest = &r;
  }
  ScalePoint p;
  p.ranks = ranks;
  p.grid = util::strf("%dx%d", driver.decomposition().grid_x(),
                      driver.decomposition().grid_y());
  p.global_nx = global_nx;
  p.tile_nx = slowest->tile.nx();
  p.tile_ny = slowest->tile.ny();
  p.iterations = rep.run.steps.back().solve.iterations;
  p.comm_s = slowest->comm.comm_ns * 1e-9;  // exposed share under overlap
  p.hidden_s =
      (slowest->comm.hidden_ns + slowest->comm.allreduce_hidden_ns) * 1e-9;
  p.allred_s = slowest->comm.allreduce_ns * 1e-9;
  p.allred_hidden_s = slowest->comm.allreduce_hidden_ns * 1e-9;
  p.compute_s = rep.run.sim_total_seconds - p.comm_s;
  p.comm_bytes_per_rank = slowest->comm.bytes;
  if (rank_reports != nullptr) *rank_reports = rep.ranks;
  if (run_out != nullptr) *run_out = rep.run;
  return p;
}

// ---------------------------------------------------------------------------
// Output
// ---------------------------------------------------------------------------

void print_section(const char* scaling, const char* mode, SolverKind solver,
                   const std::vector<ScalePoint>& points,
                   util::CsvWriter& csv, sim::Model model,
                   sim::DeviceId device, const char* label = nullptr) {
  const std::string solver_label =
      label != nullptr ? label : std::string(core::solver_name(solver));
  std::printf("-- %s scaling (%s): %s --\n", scaling, mode,
              solver_label.c_str());
  util::Table table({"Ranks", "Grid", "Mesh", "Tile", "Iters", "Compute s",
                     "Comm s", "Hidden s", "Total s", "Speedup", "Eff"});
  const double t1 = points.front().total();
  for (const ScalePoint& p : points) {
    const double speedup = t1 / p.total();
    table.row({util::strf("%d", p.ranks), p.grid,
               util::strf("%d^2", p.global_nx),
               util::strf("%dx%d", p.tile_nx, p.tile_ny),
               util::strf("%d", p.iterations), util::strf("%.3f", p.compute_s),
               util::strf("%.3f", p.comm_s), util::strf("%.3f", p.hidden_s),
               util::strf("%.3f", p.total()), util::strf("%.2f", speedup),
               util::strf("%.2f", speedup / p.ranks)});
    csv.row({scaling, mode, std::string(sim::model_id(model)),
             std::string(sim::device_short_name(device)), solver_label,
             util::strf("%d", p.ranks), p.grid, util::strf("%d", p.global_nx),
             util::strf("%d", p.tile_nx), util::strf("%d", p.tile_ny),
             util::strf("%d", p.iterations), util::strf("%.6f", p.compute_s),
             util::strf("%.6f", p.comm_s), util::strf("%.6f", p.hidden_s),
             util::strf("%.6f", p.allred_s),
             util::strf("%.6f", p.allred_hidden_s),
             util::strf("%.6f", p.total()),
             util::strf("%.4f", speedup), util::strf("%.4f", speedup / p.ranks),
             util::strf("%zu", p.comm_bytes_per_rank)});
  }
  table.print();
  std::printf("\n");
}

void collect_cells(std::vector<OverlapCell>& out, const char* scaling,
                   SolverKind solver, const std::vector<ScalePoint>& blocking,
                   const std::vector<ScalePoint>& overlap) {
  for (std::size_t i = 0; i < blocking.size(); ++i) {
    out.push_back(OverlapCell{scaling, solver, blocking[i].ranks,
                              blocking[i].total(), blocking[i].comm_s,
                              overlap[i].total(), overlap[i].hidden_s});
  }
}

void collect_pipeline_cells(std::vector<PipelineCell>& out,
                            const std::vector<ScalePoint>& classic_blocking,
                            const std::vector<ScalePoint>& pipe_blocking,
                            const std::vector<ScalePoint>& pipe_overlap) {
  for (std::size_t i = 0; i < classic_blocking.size(); ++i) {
    out.push_back(PipelineCell{
        classic_blocking[i].ranks, classic_blocking[i].total(),
        classic_blocking[i].allred_exposed_s(), pipe_blocking[i].total(),
        pipe_overlap[i].total(), pipe_overlap[i].allred_exposed_s(),
        pipe_overlap[i].allred_hidden_s});
  }
}

void write_pipeline_json(const std::vector<PipelineCell>& cells, bool smoke,
                         const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::printf("FAILED to write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"pipeline\",\n  \"mode\": \"%s\",\n",
               smoke ? "smoke" : "full");
  std::fprintf(f,
               "  \"gates\": {\"pipelined_overlap_never_slower\": true, "
               "\"strong8_exposed_allreduce_shrinks\": true},\n");
  std::fprintf(f, "  \"cells\": [\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const PipelineCell& c = cells[i];
    std::fprintf(
        f,
        "    {\"ranks\": %d, \"classic_total_s\": %.6f, "
        "\"classic_allred_exposed_s\": %.9f, "
        "\"pipelined_blocking_s\": %.6f, \"pipelined_overlap_s\": %.6f, "
        "\"pipelined_allred_exposed_s\": %.9f, "
        "\"pipelined_allred_hidden_s\": %.9f}%s\n",
        c.ranks, c.classic_total_s, c.classic_allred_exposed_s,
        c.pipelined_blocking_s, c.pipelined_overlap_s,
        c.pipelined_allred_exposed_s, c.pipelined_allred_hidden_s,
        i + 1 == cells.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("JSON written to %s\n", path.c_str());
}

void write_overlap_json(const std::vector<OverlapCell>& cells, bool smoke,
                        const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::printf("FAILED to write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"fig13_overlap\",\n  \"mode\": \"%s\",\n",
               smoke ? "smoke" : "full");
  std::fprintf(f, "  \"gates\": {\"overlap_never_slower\": true, "
                  "\"min_hidden_fraction_strong_8\": %s},\n",
               smoke ? "null" : "0.5");
  std::fprintf(f, "  \"cells\": [\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const OverlapCell& c = cells[i];
    std::fprintf(
        f,
        "    {\"scaling\": \"%s\", \"solver\": \"%s\", \"ranks\": %d, "
        "\"blocking_s\": %.6f, \"blocking_comm_s\": %.6f, "
        "\"overlap_s\": %.6f, \"hidden_s\": %.6f, "
        "\"hidden_fraction\": %.4f}%s\n",
        c.scaling, std::string(core::solver_name(c.solver)).c_str(), c.ranks,
        c.blocking_s, c.blocking_comm_s, c.overlap_s, c.hidden_s,
        c.hidden_fraction(), i + 1 == cells.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("JSON written to %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bench::BenchOptions opts = bench::parse_bench_options(argc, argv);
  const bool smoke = opts.smoke;
  const std::string& trace_path = opts.trace_path;

  const auto model = sim::parse_model(cli.get_or("model", "omp3"));
  const auto device = sim::parse_device(cli.get_or("device", "cpu"));
  if (!model || !device || !ports::is_supported(*model, *device)) {
    std::fprintf(stderr, "unknown or unsupported --model/--device pair\n");
    return 2;
  }

  const sim::NetworkSpec& net = sim::node_interconnect();
  const int strong_mesh =
      smoke ? kSmokeStrongMesh : bench::Harness::kConvergenceMesh;
  const int weak_base = smoke ? kSmokeWeakBase : bench::Harness::kConvergenceMesh;

  std::printf("== Figure 13: distributed scaling over MiniComm ranks ==\n"
              "(%s on %s; strong: %dx%d fixed; weak: ~%dx%d cells per rank; "
              "%s, %.1f GB/s link, %.1f us latency%s)\n\n",
              std::string(sim::model_name(*model)).c_str(),
              std::string(sim::device_spec(*device).name).c_str(), strong_mesh,
              strong_mesh, weak_base, weak_base,
              std::string(net.name).c_str(), net.link_bw_gbs,
              net.latency_ns * 1e-3, smoke ? " — SMOKE MODE" : "");

  util::CsvWriter csv(
      "fig13_scaling.csv",
      {"scaling", "mode", "model", "device", "solver", "ranks", "grid",
       "global_nx", "tile_nx", "tile_ny", "iterations", "compute_s", "comm_s",
       "hidden_s", "allred_s", "allred_hidden_s", "total_s", "speedup",
       "efficiency", "comm_bytes_per_rank"});

  bool monotone = true;
  std::vector<OverlapCell> overlap_cells;
  std::vector<PipelineCell> pipeline_cells;
  // Classic blocking strong-scaling CG (the pipeline gates' baseline) and
  // the pipelined CG strong ladder, blocking and overlapped.
  std::vector<ScalePoint> cg_strong_blocking, pipe_strong, pipe_strong_ov;
  std::vector<dist::RankReport> comm_table;  // per-rank bytes (largest R, CG)
  std::vector<sim::RecordingSink> trace_sinks;
  core::RunReport report_run;  // largest overlapped CG run (smoke mode)
  const bool want_stream = !trace_path.empty() || !opts.report_path.empty();

  if (smoke) {
    // Real distributed solves: the same src/dist code path tl_verify --ranks
    // checks, here timed and tallied, once blocking and once overlapped.
    // Trace sinks ride the largest overlapped CG run (overlap events shown).
    for (const SolverKind solver : core::kAllSolvers) {
      std::vector<ScalePoint> strong, strong_ov;
      for (const int ranks : kRankLadder) {
        const bool traced =
            solver == SolverKind::kCg && ranks == kRankLadder.back();
        strong.push_back(measured_point(*model, *device, solver, strong_mesh,
                                        ranks, /*overlap=*/false, nullptr,
                                        nullptr));
        strong_ov.push_back(measured_point(
            *model, *device, solver, strong_mesh, ranks, /*overlap=*/true,
            traced && want_stream ? &trace_sinks : nullptr,
            traced ? &comm_table : nullptr, traced ? &report_run : nullptr));
      }
      print_section("strong", "blocking", solver, strong, csv, *model,
                    *device);
      print_section("strong", "overlap", solver, strong_ov, csv, *model,
                    *device);
      collect_cells(overlap_cells, "strong", solver, strong, strong_ov);
      if (solver == SolverKind::kCg) cg_strong_blocking = strong;
      for (std::size_t i = 1; i < strong.size(); ++i) {
        if (strong[i].total() > strong[i - 1].total()) monotone = false;
      }
      std::vector<ScalePoint> weak, weak_ov;
      for (const int ranks : kRankLadder) {
        const int nx = static_cast<int>(
            std::lround(weak_base * std::sqrt(static_cast<double>(ranks))));
        weak.push_back(measured_point(*model, *device, solver, nx, ranks,
                                      /*overlap=*/false, nullptr, nullptr));
        weak_ov.push_back(measured_point(*model, *device, solver, nx, ranks,
                                         /*overlap=*/true, nullptr, nullptr));
      }
      print_section("weak", "blocking", solver, weak, csv, *model, *device);
      print_section("weak", "overlap", solver, weak_ov, csv, *model, *device);
      collect_cells(overlap_cells, "weak", solver, weak, weak_ov);
    }
    // Pipelined CG (tl_pipelined_cg): the same strong ladder on the real
    // dist code path, once blocking (the fused allreduce reduced in place)
    // and once overlapped (initiated nonblocking, completed after the halo
    // exchange and the q = Aw matvec).
    for (const int ranks : kRankLadder) {
      pipe_strong.push_back(measured_point(
          *model, *device, SolverKind::kCg, strong_mesh, ranks,
          /*overlap=*/false, nullptr, nullptr, nullptr, /*pipelined=*/true));
      pipe_strong_ov.push_back(measured_point(
          *model, *device, SolverKind::kCg, strong_mesh, ranks,
          /*overlap=*/true, nullptr, nullptr, nullptr, /*pipelined=*/true));
    }
    print_section("strong", "blocking", SolverKind::kCg, pipe_strong, csv,
                  *model, *device, "cg_pipelined");
    print_section("strong", "overlap", SolverKind::kCg, pipe_strong_ov, csv,
                  *model, *device, "cg_pipelined");
  } else {
    bench::Harness harness;
    harness.print_calibration();
    for (const SolverKind solver : core::kAllSolvers) {
      const ProbeCounts probe = probe_comm_counts(solver);
      std::printf("probe [%s]: %.2f halo exchanges (%.2f overlapped) + %.2f "
                  "allreduces per outer iteration (measured at %d^2 x 4 "
                  "ranks)\n",
                  std::string(core::solver_name(solver)).c_str(),
                  probe.halo_per_iter, probe.overlapped_per_iter,
                  probe.allred_per_iter, kProbeMesh);
      std::vector<ScalePoint> strong, strong_ov;
      for (const int ranks : kRankLadder) {
        strong.push_back(modelled_point(harness, *model, *device, solver,
                                        strong_mesh, ranks, probe, net,
                                        /*overlap=*/false));
        strong_ov.push_back(modelled_point(harness, *model, *device, solver,
                                           strong_mesh, ranks, probe, net,
                                           /*overlap=*/true));
      }
      std::printf("\n");
      print_section("strong", "blocking", solver, strong, csv, *model,
                    *device);
      print_section("strong", "overlap", solver, strong_ov, csv, *model,
                    *device);
      collect_cells(overlap_cells, "strong", solver, strong, strong_ov);
      if (solver == SolverKind::kCg) cg_strong_blocking = strong;
      for (std::size_t i = 1; i < strong.size(); ++i) {
        if (strong[i].total() > strong[i - 1].total()) monotone = false;
      }
      std::vector<ScalePoint> weak, weak_ov;
      for (const int ranks : kRankLadder) {
        const int nx = static_cast<int>(
            std::lround(weak_base * std::sqrt(static_cast<double>(ranks))));
        weak.push_back(modelled_point(harness, *model, *device, solver, nx,
                                      ranks, probe, net, /*overlap=*/false));
        weak_ov.push_back(modelled_point(harness, *model, *device, solver, nx,
                                         ranks, probe, net, /*overlap=*/true));
      }
      print_section("weak", "blocking", solver, weak, csv, *model, *device);
      print_section("weak", "overlap", solver, weak_ov, csv, *model, *device);
      collect_cells(overlap_cells, "weak", solver, weak, weak_ov);
    }
    // Pipelined CG, projected: the probe reruns on the pipelined dist code
    // path (one fused two-double allreduce per iteration, kMaskW halos on
    // the blocking path), and the fused allreduce's wire time hides behind
    // the q = Aw matvec window in the overlapped rows.
    const ProbeCounts pipe_probe =
        probe_comm_counts(SolverKind::kCg, /*pipelined=*/true);
    std::printf("probe [cg_pipelined]: %.2f halo exchanges (%.2f overlapped) "
                "+ %.2f allreduces (%.2f fused nonblocking) per outer "
                "iteration (measured at %d^2 x 4 ranks)\n\n",
                pipe_probe.halo_per_iter, pipe_probe.overlapped_per_iter,
                pipe_probe.allred_per_iter, pipe_probe.iallred_per_iter,
                kProbeMesh);
    for (const int ranks : kRankLadder) {
      pipe_strong.push_back(modelled_point(
          harness, *model, *device, SolverKind::kCg, strong_mesh, ranks,
          pipe_probe, net, /*overlap=*/false, /*pipelined=*/true));
      pipe_strong_ov.push_back(modelled_point(
          harness, *model, *device, SolverKind::kCg, strong_mesh, ranks,
          pipe_probe, net, /*overlap=*/true, /*pipelined=*/true));
    }
    print_section("strong", "blocking", SolverKind::kCg, pipe_strong, csv,
                  *model, *device, "cg_pipelined");
    print_section("strong", "overlap", SolverKind::kCg, pipe_strong_ov, csv,
                  *model, *device, "cg_pipelined");
    // Per-rank comm bytes at the largest strong-scaling point (CG): the
    // analytic mirror of the smoke mode's measured table.
    const ProbeCounts probe = probe_comm_counts(SolverKind::kCg);
    const int iters =
        harness.predicted_outer(SolverKind::kCg, strong_mesh);
    const comm::BlockDecomposition decomp(strong_mesh, strong_mesh,
                                          kRankLadder.back());
    std::printf("-- per-rank comm, strong CG at %d ranks --\n",
                kRankLadder.back());
    util::Table table({"Rank", "Tile", "Neighbours", "Halo MB", "Allreduces"});
    for (const comm::Tile& t : decomp.tiles()) {
      const double mb = probe.halo_per_iter * iters * 2.0 *
                        static_cast<double>(halo_onedir_bytes(
                            t, core::Settings{}.halo_depth)) /
                        1e6;
      table.row({util::strf("%d", t.rank),
                 util::strf("%dx%d", t.nx(), t.ny()),
                 util::strf("%d", neighbour_count(t)), util::strf("%.2f", mb),
                 util::strf("%.0f", probe.allred_per_iter * iters)});
    }
    table.print();
    std::printf("\n");
  }

  if (!comm_table.empty()) {
    std::printf("-- per-rank comm, strong CG at %d ranks (measured) --\n",
                kRankLadder.back());
    util::Table table({"Rank", "Tile", "Halo exchanges", "Allreduces", "Bytes",
                       "Comm s", "Hidden s"});
    for (const dist::RankReport& r : comm_table) {
      table.row({util::strf("%d", r.rank),
                 util::strf("%dx%d", r.tile.nx(), r.tile.ny()),
                 util::strf("%llu", static_cast<unsigned long long>(
                                        r.comm.halo_exchanges)),
                 util::strf("%llu",
                            static_cast<unsigned long long>(r.comm.allreduces)),
                 util::strf("%zu", r.comm.bytes),
                 util::strf("%.6f", r.comm.comm_ns * 1e-9),
                 util::strf("%.6f", r.comm.hidden_ns * 1e-9)});
    }
    table.print();
    std::printf("\n");
  }

  if (!trace_path.empty()) {
    if (trace_sinks.empty()) {
      std::printf("trace: --trace is only recorded in --smoke mode (full "
                  "mode prices comm analytically; no event stream exists)\n");
    } else {
      std::vector<sim::TraceGroup> groups;
      std::size_t total = 0;
      for (std::size_t r = 0; r < trace_sinks.size(); ++r) {
        groups.push_back(sim::TraceGroup{util::strf("CG/rank%zu", r),
                                         trace_sinks[r].events(),
                                         trace_sinks[r].dropped()});
        total += trace_sinks[r].events().size();
      }
      if (sim::write_chrome_trace_file(trace_path, groups)) {
        std::printf("trace: %zu events (one row per rank, comm phase "
                    "included) written to %s\n",
                    total, trace_path.c_str());
      }
    }
  }

  if (!opts.report_path.empty()) {
    if (trace_sinks.empty()) {
      std::printf("report: --report is only recorded in --smoke mode (full "
                  "mode prices comm analytically; no event stream exists)\n");
    } else {
      // The largest overlapped CG smoke run, replayed from the per-rank
      // recordings into the aggregator + registry the report is built from.
      telemetry::ReportContext ctx;
      ctx.source = "bench_fig13_scaling";
      ctx.model = std::string(sim::model_id(*model));
      ctx.device = std::string(sim::device_short_name(*device));
      ctx.solver = std::string(core::solver_name(SolverKind::kCg));
      ctx.nx = ctx.ny = strong_mesh;
      ctx.steps = static_cast<int>(report_run.steps.size());
      ctx.ranks = kRankLadder.back();
      ctx.use_fused = core::Settings::default_problem().use_fused;
      ctx.overlap_comm = true;
      telemetry::ReportBuilder builder(std::move(ctx));
      util::Aggregator agg;
      sim::AggregatingSink agg_sink(agg);
      telemetry::RegistrySink reg_sink(builder.registry());
      for (const sim::RecordingSink& sink : trace_sinks) {
        for (const sim::TraceEvent& ev : sink.events()) {
          agg_sink.on_event(ev);
          reg_sink.on_event(ev);
        }
      }
      const double achieved =
          agg.total_ns() > 0.0
              ? static_cast<double>(agg.total_bytes()) / agg.total_ns()
              : 0.0;
      builder.add_run(report_run, achieved);
      for (const dist::RankReport& r : comm_table) builder.add_rank(r);
      builder.add_profiles(agg);
      if (builder.write(opts.report_path)) {
        std::printf("report: tl-report-1 written to %s (+ %s)\n",
                    opts.report_path.c_str(),
                    telemetry::ReportBuilder::openmetrics_path(opts.report_path)
                        .c_str());
      } else {
        std::printf("report: FAILED to write %s\n", opts.report_path.c_str());
      }
    }
  }

  write_overlap_json(overlap_cells, smoke, "BENCH_overlap.json");
  collect_pipeline_cells(pipeline_cells, cg_strong_blocking, pipe_strong,
                         pipe_strong_ov);
  write_pipeline_json(pipeline_cells, smoke, "BENCH_pipeline.json");

  // Pipeline gates: the nonblocking allreduce must never cost time (overlap
  // twin never slower than the blocking twin at any rung), and at the widest
  // strong rung the exposed allreduce time must genuinely shrink against
  // classic blocking CG — the whole point of the Ghysels-Vanroose variant.
  bool pipe_overlap_ok = true;
  bool pipe_allred_ok = true;
  for (const PipelineCell& c : pipeline_cells) {
    if (c.pipelined_overlap_s > c.pipelined_blocking_s) {
      pipe_overlap_ok = false;
      std::printf("GATE: pipelined overlap slower than its blocking twin at "
                  "%d ranks (%.6f s vs %.6f s)\n",
                  c.ranks, c.pipelined_overlap_s, c.pipelined_blocking_s);
    }
  }
  if (!pipeline_cells.empty()) {
    const PipelineCell& widest = pipeline_cells.back();
    if (widest.ranks > 1 &&
        widest.pipelined_allred_exposed_s >= widest.classic_allred_exposed_s) {
      pipe_allred_ok = false;
      std::printf("GATE: exposed allreduce time did not shrink at strong/%d "
                  "ranks (pipelined %.9f s vs classic %.9f s)\n",
                  widest.ranks, widest.pipelined_allred_exposed_s,
                  widest.classic_allred_exposed_s);
    }
  }

  bool overlap_ok = true;
  bool hidden_ok = true;
  for (const OverlapCell& c : overlap_cells) {
    if (c.overlap_s > c.blocking_s) {
      overlap_ok = false;
      std::printf("GATE: overlap slower than blocking at %s/%s/%d ranks "
                  "(%.6f s vs %.6f s)\n",
                  c.scaling, std::string(core::solver_name(c.solver)).c_str(),
                  c.ranks, c.overlap_s, c.blocking_s);
    }
    if (!smoke && std::string(c.scaling) == "strong" &&
        c.ranks == kRankLadder.back() && c.hidden_fraction() < 0.5) {
      hidden_ok = false;
      std::printf("GATE: only %.1f%% of blocking comm hidden at strong/%s/%d "
                  "ranks (need >= 50%%)\n",
                  100.0 * c.hidden_fraction(),
                  std::string(core::solver_name(c.solver)).c_str(), c.ranks);
    }
  }

  std::printf("CSV written to fig13_scaling.csv\n");
  std::printf("strong scaling monotone 1->%d ranks: %s\n", kRankLadder.back(),
              monotone ? "yes" : "NO — REGRESSION");
  std::printf("overlap never slower than blocking: %s\n",
              overlap_ok ? "yes" : "NO — REGRESSION");
  std::printf("pipelined overlap never slower than blocking twin: %s\n",
              pipe_overlap_ok ? "yes" : "NO — REGRESSION");
  std::printf("exposed allreduce shrinks at strong %d ranks: %s\n",
              kRankLadder.back(), pipe_allred_ok ? "yes" : "NO — REGRESSION");
  if (!smoke) {
    std::printf(">=50%% of comm hidden at strong %d ranks: %s\n",
                kRankLadder.back(), hidden_ok ? "yes" : "NO — REGRESSION");
  }
  return (monotone && overlap_ok && hidden_ok && pipe_overlap_ok &&
          pipe_allred_ok)
             ? 0
             : 1;
}
