#include "bench/harness.hpp"

#include <cmath>
#include <cstdio>
#include <memory>

#include "core/driver.hpp"
#include "core/phantom_kernels.hpp"
#include "ports/registry.hpp"
#include "telemetry/collectors.hpp"
#include "telemetry/report.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/metrics.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace bench {

using namespace tl;
using core::SolverKind;

Harness::Harness(std::vector<int> ladder)
    : proto_(core::Settings::default_problem()) {
  if (ladder.empty()) ladder = core::default_calibration_ladder();
  for (const SolverKind solver : core::kAllSolvers) {
    models_.emplace(solver,
                    core::calibrate_iteration_model(solver, proto_, ladder));
  }
  // The paper's benchmark runs multiple implicit steps at the convergence
  // mesh; four steps lands the absolute runtimes in the paper's range
  // (hundreds to thousands of seconds) while preserving every ratio.
  proto_.end_step = 4;
}

const core::IterationModel& Harness::iteration_model(SolverKind solver) const {
  return models_.at(solver);
}

int Harness::predicted_outer(SolverKind solver, int nx) const {
  int outer = models_.at(solver).predict_outer(nx);
  // Chebyshev needs at least the bootstrap plus one main-loop check window.
  if (solver == SolverKind::kCheby) {
    outer = std::max(outer, proto_.cg_prep_iters + 1 + proto_.check_interval);
  }
  return outer;
}

SolveResult Harness::modelled_solve(sim::Model model, sim::DeviceId device,
                                    SolverKind solver, int nx,
                                    std::uint64_t run_seed,
                                    sim::TraceSink* sink,
                                    bool use_fused) const {
  core::Settings s = proto_;
  s.nx = s.ny = nx;
  s.solver = solver;
  s.use_fused = use_fused;
  if (solver == SolverKind::kPpcg) {
    s.ppcg_inner_steps = core::recommended_ppcg_inner_steps(nx);
  }

  const int outer = solver == SolverKind::kJacobi ? kJacobiModelledIters
                                                  : predicted_outer(solver, nx);
  core::PhantomScript script;
  script.eps = s.eps;
  if (solver == SolverKind::kCheby) {
    script.converge_after_ur = s.cg_prep_iters;
    script.converge_after_cheby =
        std::max(1, outer - s.cg_prep_iters - 1);
    script.converge_on_ur = false;
  } else if (solver == SolverKind::kJacobi) {
    script.converge_after_ur = 0;
    script.converge_after_jacobi = outer;
    script.converge_on_ur = false;
  } else {
    script.converge_after_ur = outer;
    script.converge_on_ur = (solver == SolverKind::kCg);
  }

  auto kernels = std::make_unique<core::PhantomKernels>(
      model, device, core::Mesh(nx, nx, s.halo_depth), script, run_seed);
  if (sink != nullptr) kernels->attach_trace_sink(sink);
  core::Driver driver(s, std::move(kernels),
                      core::DriverOptions{.materialize_host_state = false});
  const core::RunReport report = driver.run();

  SolveResult result;
  result.model = model;
  result.device = device;
  result.solver = solver;
  result.nx = nx;
  result.outer_iterations = report.steps[0].solve.iterations;
  result.seconds = report.sim_total_seconds;
  result.bandwidth_gbs = report.achieved_bandwidth_gbs;
  result.launches = report.kernel_launches;
  const core::SolveStats& stats = report.steps[0].solve;
  result.fused_iterations = stats.fused_iterations;
  result.classic_iterations = stats.classic_iterations;
  result.converged = stats.converged;
  result.final_rr = stats.final_rr;
  return result;
}

std::vector<int> Harness::fig11_meshes() {
  std::vector<int> meshes;
  for (int k = 1; k <= 10; ++k) {
    meshes.push_back(
        static_cast<int>(std::lround(std::sqrt(k * 1.5e5))));
  }
  return meshes;  // 387 .. 1225
}

void Harness::print_calibration() const {
  std::printf(
      "calibration: real solves on the reference kernels fit "
      "iters = c * nx^p per solver\n");
  for (const SolverKind solver : core::kAllSolvers) {
    const auto& m = models_.at(solver);
    std::printf("  %-9s c=%8.3f p=%5.3f r2=%6.4f  4096^2 -> %d outer iters\n",
                std::string(core::solver_name(solver)).c_str(),
                m.outer_fit.coefficient, m.outer_fit.exponent, m.outer_fit.r2,
                predicted_outer(solver, kConvergenceMesh));
  }
  std::printf(
      "timing: simulated (device performance models; see DESIGN.md §5 and "
      "src/sim/codegen.cpp for the calibrated constants)\n\n");
}

std::string fmt_seconds(double s) { return util::strf("%.1f", s); }

std::vector<int> smoke_ladder() { return {24, 32, 48}; }

BenchOptions parse_bench_options(int argc, const char* const* argv) {
  const util::Cli cli(argc, argv);
  BenchOptions opts;
  opts.profile = cli.has("profile");
  opts.trace_path = cli.get_or("trace", "");
  opts.trace_model = cli.get_or("trace-model", "");
  opts.smoke = cli.has("smoke");
  opts.report_path = cli.get_or("report", "");
  return opts;
}

void write_figure_report(const Harness& harness, sim::Model model,
                         sim::DeviceId device, int mesh,
                         const std::string& source, const std::string& path) {
  telemetry::ReportContext ctx;
  ctx.source = source;
  ctx.model = std::string(sim::model_id(model));
  ctx.device = std::string(sim::device_short_name(device));
  ctx.solver = "all";
  ctx.nx = ctx.ny = mesh;
  ctx.steps = static_cast<int>(core::kAllSolvers.size());
  telemetry::ReportBuilder builder(std::move(ctx));

  util::Aggregator agg;
  sim::AggregatingSink agg_sink(agg);
  telemetry::RegistrySink reg_sink(builder.registry());
  sim::TeeSink tee({&agg_sink, &reg_sink});

  double total_seconds = 0.0;
  std::uint64_t total_launches = 0;
  for (const SolverKind solver : core::kAllSolvers) {
    const SolveResult r = harness.modelled_solve(model, device, solver, mesh,
                                                 1, &tee);
    builder.add_solve(telemetry::SolveRow{
        .label = std::string(core::solver_name(solver)),
        .solver = std::string(core::solver_name(solver)),
        .converged = r.converged,
        .iterations = r.outer_iterations,
        .inner_iterations = 0,
        .fused_iterations = r.fused_iterations,
        .classic_iterations = r.classic_iterations,
        .final_rr = r.final_rr,
        .sim_seconds = r.seconds,
    });
    total_seconds += r.seconds;
    total_launches += r.launches;
  }
  builder.set_totals(total_seconds,
                     agg.total_ns() > 0.0
                         ? static_cast<double>(agg.total_bytes()) /
                               agg.total_ns()
                         : 0.0,
                     total_launches);
  builder.add_profiles(agg);
  if (builder.write(path)) {
    std::printf("\nreport: tl-report-1 written to %s (+ %s)\n", path.c_str(),
                telemetry::ReportBuilder::openmetrics_path(path).c_str());
  } else {
    std::printf("\nreport: FAILED to write %s\n", path.c_str());
  }
}

namespace {

/// Per-kernel breakdown of one model's three solves at the convergence mesh
/// (the paper-style table: PPCG time concentrated in ppcg_inner, etc.).
void print_model_profile(const Harness& harness, sim::Model model,
                         sim::DeviceId device, int mesh) {
  util::Aggregator agg;
  sim::AggregatingSink sink(agg);
  for (const SolverKind solver : core::kAllSolvers) {
    harness.modelled_solve(model, device, solver, mesh, 1, &sink);
  }
  std::printf("\n-- per-kernel profile: %s (CG + Chebyshev + PPCG, %llu "
              "events, %.1f s total) --\n",
              std::string(sim::model_name(model)).c_str(),
              static_cast<unsigned long long>(agg.total_events()),
              agg.total_ns() * 1e-9);
  std::fputs(util::format_profile_table(agg.profiles()).c_str(), stdout);
}

/// Writes a Chrome trace of one model's three solves, one process row per
/// solver, so chrome://tracing shows the per-kernel timelines side by side.
void write_figure_trace(const Harness& harness, sim::Model model,
                        sim::DeviceId device, int mesh,
                        const std::string& path) {
  // Bound memory on pathological meshes; dropped counts are reported.
  constexpr std::size_t kMaxEventsPerSolve = 500'000;
  std::vector<sim::RecordingSink> sinks;
  std::vector<sim::TraceGroup> groups;
  sinks.reserve(core::kAllSolvers.size());
  for (const SolverKind solver : core::kAllSolvers) {
    sinks.emplace_back(kMaxEventsPerSolve);
    harness.modelled_solve(model, device, solver, mesh, 1, &sinks.back());
  }
  std::size_t total = 0, dropped = 0;
  std::size_t i = 0;
  for (const SolverKind solver : core::kAllSolvers) {
    groups.push_back(sim::TraceGroup{
        std::string(sim::model_id(model)) + "/" +
            std::string(core::solver_name(solver)),
        sinks[i].events(), sinks[i].dropped()});
    total += sinks[i].events().size();
    dropped += sinks[i].dropped();
    ++i;
  }
  if (!sim::write_chrome_trace_file(path, groups)) {
    std::printf("\ntrace: FAILED to write %s\n", path.c_str());
    return;
  }
  std::printf("\ntrace: %zu events (%s) written to %s — load in "
              "chrome://tracing or ui.perfetto.dev\n",
              total, std::string(sim::model_name(model)).c_str(), path.c_str());
  if (dropped != 0) {
    std::printf("trace: %zu events over the %zu-per-solve cap were dropped\n",
                dropped, kMaxEventsPerSolve);
  }
}

}  // namespace

void run_device_figure(const Harness& harness, sim::DeviceId device,
                       const std::string& title, const std::string& csv_path,
                       const BenchOptions& opts) {
  const int mesh = opts.smoke ? kSmokeMesh : Harness::kConvergenceMesh;
  std::printf("== %s ==\n(%dx%d mesh%s, runtimes in simulated seconds, "
              "lower is better)\n\n", title.c_str(), mesh, mesh,
              opts.smoke ? " — SMOKE MODE" : "");
  harness.print_calibration();

  util::CsvWriter csv(csv_path, {"model", "solver", "seconds",
                                 "bandwidth_gbs", "outer_iterations"});
  util::Table table({"Model", "CG", "Chebyshev", "PPCG"});
  for (const sim::Model m : ports::figure_models(device)) {
    std::vector<std::string> row{std::string(sim::model_name(m))};
    for (const SolverKind solver : core::kAllSolvers) {
      const SolveResult r = harness.modelled_solve(m, device, solver, mesh);
      row.push_back(fmt_seconds(r.seconds));
      csv.row({std::string(sim::model_id(m)),
               std::string(core::solver_name(solver)),
               util::strf("%.3f", r.seconds),
               util::strf("%.2f", r.bandwidth_gbs),
               util::strf("%d", r.outer_iterations)});
    }
    table.row(std::move(row));
  }
  table.print();
  std::printf("\nCSV written to %s\n", csv_path.c_str());

  const std::vector<sim::Model> figure = ports::figure_models(device);
  if (opts.profile) {
    for (const sim::Model m : figure) {
      print_model_profile(harness, m, device, mesh);
    }
  }
  // --trace and --report follow the same model selection: the figure's
  // first model unless --trace-model overrides it.
  sim::Model selected = figure.empty() ? sim::Model::kOmp3Cpp : figure.front();
  if (!figure.empty() && !opts.trace_model.empty()) {
    const auto parsed = sim::parse_model(opts.trace_model);
    if (parsed && ports::is_supported(*parsed, device)) {
      selected = *parsed;
    } else {
      std::printf("\ntrace: unknown/unsupported --trace-model '%s', "
                  "using %s instead\n",
                  opts.trace_model.c_str(),
                  std::string(sim::model_id(selected)).c_str());
    }
  }
  if (!opts.trace_path.empty() && !figure.empty()) {
    write_figure_trace(harness, selected, device, mesh, opts.trace_path);
  }
  if (!opts.report_path.empty() && !figure.empty()) {
    write_figure_report(harness, selected, device, mesh, csv_path,
                        opts.report_path);
  }
}

}  // namespace bench
