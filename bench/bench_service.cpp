// Service soak bench: push O(10k) mixed-tenant solve jobs through the
// SolveService and gate on its three promises.
//
//   throughput   the pool keeps the (simulated-device) solves flowing; the
//                measured jobs/s must clear --min-throughput when set.
//   fairness     no job's measured queue delay exceeds the queue's stated
//                aging/capacity bound (ServiceReport::fairness_bound).
//   correctness  every job's final u/energy checksums are bitwise identical
//                to a standalone run_scenario twin of the same scenario —
//                the service adds scheduling, never numerics.
//
// The job mix is drawn from a fixed-seed util::Rng, and jobs are submitted
// from one thread, so job ids, the per-tenant rollups, and therefore the
// structural sections of the emitted BENCH_service.json artifact are fully
// deterministic — that file is committed and regression-checked by
// `tl_report --check` (see tests/CMakeLists.txt). Wall-clock fields are the
// only machine-dependent numbers in it.
//
//   --smoke            1 000 jobs (CI per-cell gate); default is the 10 000
//                      job nightly soak
//   --jobs N           override the job count
//   --min-throughput X fail below X jobs/s (0 disables; default 0 so
//                      sanitizer builds pass — the nightly sets a floor)
//   --report=FILE      artifact path (default BENCH_service.json)
//   --workers/--large-workers/--capacity/--batch/--aging  pool knobs
//   --planner          adds the predicted-cost scheduling leg: self-
//                      calibrates a small-mesh catalog from standalone runs,
//                      replays the same deck with the planner routing lanes
//                      (results must stay bit-identical and total simulated
//                      seconds must not grow), then replays it again with
//                      model+device freed so the planner picks the config
//                      per job (verified against twins of what actually ran)

#include <cstdio>
#include <iterator>
#include <map>
#include <string>
#include <vector>

#include "service/entry.hpp"
#include "service/job.hpp"
#include "service/pool.hpp"
#include "service/report.hpp"
#include "ports/registry.hpp"
#include "tune/ingest.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace {

using namespace tl;

constexpr std::uint64_t kMixSeed = 0x7ea1ea55ULL;  // fixed: artifact is golden

struct ModelDevice {
  sim::Model model;
  sim::DeviceId device;
};

/// The paper's device-tuned baseline, a portable CPU model, and the GPU
/// baseline — enough to mix host- and device-shaped ports in one queue.
constexpr ModelDevice kPairs[] = {
    {sim::Model::kOmp3Cpp, sim::DeviceId::kCpuSandyBridge},
    {sim::Model::kKokkos, sim::DeviceId::kCpuSandyBridge},
    {sim::Model::kCuda, sim::DeviceId::kGpuK20X},
};

constexpr const char* kTenants[] = {"acme", "burl", "cato",
                                    "dene", "etna", "frey"};

service::Job draw_job(util::Rng& rng) {
  service::Job job;
  // Tenant weights: two heavy hitters, four long-tail.
  const std::uint64_t t = rng.next_below(10);
  job.tenant = kTenants[t < 3 ? 0 : (t < 6 ? 1 : 2 + (t - 6) % 4)];
  // Priorities: 20% high, 50% normal, 30% low.
  const std::uint64_t p = rng.next_below(10);
  job.priority = p < 2 ? service::Priority::kHigh
                       : (p < 7 ? service::Priority::kNormal
                                : service::Priority::kLow);

  service::Scenario& s = job.scenario;
  s.settings = core::Settings::default_problem();
  const ModelDevice& pair = kPairs[rng.next_below(std::size(kPairs))];
  s.model = pair.model;
  s.device = pair.device;
  // Mostly tiny meshes; the occasional 96^2 exercises the large lane.
  static constexpr int kMeshes[] = {16, 16, 16, 24, 24, 32, 32, 48, 48, 96};
  s.settings.nx = s.settings.ny = kMeshes[rng.next_below(std::size(kMeshes))];
  static constexpr int kRanks[] = {1, 1, 1, 2, 2, 4};
  s.settings.nranks = kRanks[rng.next_below(std::size(kRanks))];
  static constexpr core::SolverKind kSolvers[] = {
      core::SolverKind::kCg, core::SolverKind::kCg, core::SolverKind::kCheby,
      core::SolverKind::kPpcg, core::SolverKind::kJacobi};
  s.settings.solver = kSolvers[rng.next_below(std::size(kSolvers))];
  s.settings.eps = 1e-6;
  s.settings.max_iters = 200;
  s.settings.end_step = 1;
  return job;
}

bool checksums_equal(const verify::FieldChecksum& a,
                     const verify::FieldChecksum& b) {
  return a.sum == b.sum && a.l2 == b.l2 && a.min == b.min && a.max == b.max;
}

/// Draws the full deck up front (the scenario set — and thus the standalone
/// twin set — is fixed before the first job runs), then pushes it through a
/// fresh service. `free_fields` marks every job's model and device as
/// planner-fillable; with the planner disabled the marks are inert.
service::ServiceReport run_deck(const service::ServiceConfig& config,
                                long jobs, bool free_fields) {
  util::Rng rng(kMixSeed);
  std::vector<service::Job> mix;
  mix.reserve(static_cast<std::size_t>(jobs));
  for (long i = 0; i < jobs; ++i) {
    mix.push_back(draw_job(rng));
    mix.back().plan_model_free = free_fields;
    mix.back().plan_device_free = free_fields;
  }
  service::SolveService svc(config);
  for (service::Job& job : mix) svc.submit(std::move(job));
  return svc.finish();
}

double total_sim_seconds(const service::ServiceReport& report) {
  // Job-id order (results are sorted), so the sum is schedule-independent.
  double total = 0.0;
  for (const service::JobResult& r : report.results) total += r.sim_seconds;
  return total;
}

/// The planner's cost model, measured rather than assumed: one standalone
/// run per (pair, solver, mesh) over the deck's own mesh ladder, fitted
/// into total_s and iters series. Everything the planner predicts with in
/// this bench was observed on this machine minutes earlier.
std::shared_ptr<const tune::ModelCatalog> calibrate_catalog() {
  static constexpr int kLadder[] = {16, 24, 32, 48, 96};
  static constexpr core::SolverKind kCalSolvers[] = {
      core::SolverKind::kCg, core::SolverKind::kCheby, core::SolverKind::kPpcg,
      core::SolverKind::kJacobi};
  tune::SampleSet samples;
  for (const ModelDevice& pair : kPairs) {
    for (const core::SolverKind solver : kCalSolvers) {
      for (const int nx : kLadder) {
        service::Scenario s;
        s.settings = core::Settings::default_problem();
        s.settings.nx = s.settings.ny = nx;
        s.settings.solver = solver;
        s.settings.eps = 1e-6;
        s.settings.max_iters = 200;
        s.settings.end_step = 1;
        s.model = pair.model;
        s.device = pair.device;
        const service::ScenarioOutcome out = service::run_scenario(s);
        tune::SeriesKey key;
        key.metric = "total_s";
        key.model = std::string(sim::model_id(pair.model));
        key.device = std::string(sim::device_short_name(pair.device));
        key.solver = std::string(core::solver_name(solver));
        key.x = "cells";
        const double cells = static_cast<double>(nx) * nx;
        samples.add(key, cells, out.run.sim_total_seconds);
        int iters = 0;
        for (const core::StepReport& step : out.run.steps) {
          iters += step.solve.iterations;
        }
        key.metric = "iters";
        samples.add(key, cells, static_cast<double>(iters));
      }
    }
  }
  return std::make_shared<const tune::ModelCatalog>(
      tune::fit_samples(samples));
}

/// Large-lane threshold mirroring the static rule's intent in cost terms:
/// the cheapest predicted solve at the static boundary mesh (96^2). Any job
/// predicted at least that expensive — including a smaller mesh on a slow
/// solver — owns a large-lane worker.
double planner_threshold(const tune::ModelCatalog& catalog) {
  double cheapest = 0.0;
  bool have = false;
  for (const ModelDevice& pair : kPairs) {
    for (const core::SolverKind solver : core::kAllSolvers) {
      tune::PredictQuery q;
      q.model = std::string(sim::model_id(pair.model));
      q.device = std::string(sim::device_short_name(pair.device));
      q.solver = std::string(core::solver_name(solver));
      q.nx = q.ny = 96;
      const tune::Prediction p = tune::predict(catalog, q);
      if (p.ok && (!have || p.seconds < cheapest)) {
        cheapest = p.seconds;
        have = true;
      }
    }
  }
  return have ? cheapest : 1e-3;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool smoke = cli.has("smoke");
  const bool with_planner = cli.has("planner");
  const long jobs_requested =
      cli.get_long_or("jobs", smoke ? 1'000 : 10'000);
  const double min_throughput = cli.get_double_or("min-throughput", 0.0);
  const std::string report_path = cli.get_or("report", "BENCH_service.json");

  service::ServiceConfig config;
  config.small_workers =
      static_cast<int>(cli.get_long_or("workers", 3));
  config.large_workers =
      static_cast<int>(cli.get_long_or("large-workers", 1));
  config.queue_capacity =
      static_cast<std::size_t>(cli.get_long_or("capacity", 256));
  config.batch_max = static_cast<std::size_t>(cli.get_long_or("batch", 8));
  config.aging_interval =
      static_cast<std::uint64_t>(cli.get_long_or("aging", 16));
  config.validate();

  for (const ModelDevice& pair : kPairs) {
    if (!ports::is_supported(pair.model, pair.device)) {
      std::fprintf(stderr, "service soak: pair %s x %s unsupported\n",
                   std::string(sim::model_id(pair.model)).c_str(),
                   std::string(sim::device_short_name(pair.device)).c_str());
      return 1;
    }
  }

  std::printf("service soak: %ld job(s), %d+%d workers, batch %zu, "
              "capacity %zu, aging %llu\n",
              jobs_requested, config.small_workers, config.large_workers,
              config.batch_max, config.queue_capacity,
              static_cast<unsigned long long>(config.aging_interval));

  const service::ServiceReport report =
      run_deck(config, jobs_requested, /*free_fields=*/false);

  int gate_failures = 0;
  const auto fail = [&](const char* what) {
    std::fprintf(stderr, "service soak: GATE FAILED: %s\n", what);
    ++gate_failures;
  };

  if (report.results.size() != static_cast<std::size_t>(jobs_requested)) {
    fail("not every submitted job was drained");
  }
  if (!report.all_ok()) fail("a job failed (ok == false)");
  if (report.max_wait_pops() > report.fairness_bound) {
    std::fprintf(stderr, "  max_wait_pops %llu > bound %llu\n",
                 static_cast<unsigned long long>(report.max_wait_pops()),
                 static_cast<unsigned long long>(report.fairness_bound));
    fail("a job waited past the fairness bound");
  }

  // Bit-identity: one standalone twin per distinct scenario, every job
  // compared against its twin's checksums.
  std::map<std::string, service::ScenarioOutcome> twins;
  {
    util::Rng replay(kMixSeed);
    for (long i = 0; i < jobs_requested; ++i) {
      const service::Job job = draw_job(replay);
      const std::string key = job.scenario.key();
      if (twins.find(key) == twins.end()) {
        twins.emplace(key, service::run_scenario(job.scenario));
      }
    }
  }
  std::uint64_t verified = 0, identical = 0;
  {
    util::Rng replay(kMixSeed);
    for (const service::JobResult& r : report.results) {
      const service::Job job = draw_job(replay);  // results are id-sorted
      const auto it = twins.find(job.scenario.key());
      if (it == twins.end() || !r.ok) continue;
      ++verified;
      if (checksums_equal(r.u_checksum, it->second.u_checksum) &&
          checksums_equal(r.energy_checksum, it->second.energy_checksum)) {
        ++identical;
      } else {
        std::fprintf(stderr, "  checksum mismatch: job %llu (%s)\n",
                     static_cast<unsigned long long>(r.id),
                     job.scenario.key().c_str());
      }
    }
  }
  if (verified != static_cast<std::uint64_t>(jobs_requested)) {
    fail("not every job was verified against a standalone twin");
  }
  if (identical != verified) fail("service results not bit-identical");

  const double jobs_per_s =
      report.wall_seconds > 0.0
          ? static_cast<double>(report.results.size()) / report.wall_seconds
          : 0.0;
  if (min_throughput > 0.0 && jobs_per_s < min_throughput) {
    std::fprintf(stderr, "  %.1f jobs/s < floor %.1f\n", jobs_per_s,
                 min_throughput);
    fail("throughput below floor");
  }

  util::Table table({"tenant", "jobs", "failures", "iterations", "sim s",
                     "max wait"});
  for (const service::TenantSummary& t : report.tenants) {
    table.row({t.tenant, util::strf("%llu", (unsigned long long)t.jobs),
               util::strf("%llu", (unsigned long long)t.failures),
               util::strf("%llu", (unsigned long long)t.iterations),
               util::strf("%.4f", t.sim_seconds),
               util::strf("%llu", (unsigned long long)t.max_wait_pops)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "service soak: %zu job(s) in %.2f s (%.1f jobs/s), %zu scenario(s), "
      "%llu/%llu bit-identical, max wait %llu (bound %llu)\n",
      report.results.size(), report.wall_seconds, jobs_per_s, twins.size(),
      static_cast<unsigned long long>(identical),
      static_cast<unsigned long long>(verified),
      static_cast<unsigned long long>(report.max_wait_pops()),
      static_cast<unsigned long long>(report.fairness_bound));

  service::ArtifactInfo info;
  info.scenarios = twins.size();
  info.verified = verified;
  info.bit_identical = identical;
  if (!service::write_service_artifact(report_path, config, report, info)) {
    ++gate_failures;
  }
  std::printf("service soak: wrote %s\n", report_path.c_str());

  if (with_planner) {
    const double static_sim = total_sim_seconds(report);
    std::printf("\nservice soak: planner leg (predicted-cost scheduling)\n");
    const std::shared_ptr<const tune::ModelCatalog> catalog =
        calibrate_catalog();
    service::ServiceConfig planned = config;
    planned.planner.enabled = true;
    planned.planner.catalog = catalog;
    planned.planner.large_seconds_threshold = planner_threshold(*catalog);
    planned.validate();
    std::printf("  calibrated %zu series; large lane at predicted >= %.3f s\n",
                catalog->size(), planned.planner.large_seconds_threshold);

    // Leg 1: same deck, every field pinned — the planner may only re-route.
    // Scenarios are unchanged, so every per-job result must be bit-identical
    // to the static pass and the simulated total must not move at all.
    const service::ServiceReport routed =
        run_deck(planned, jobs_requested, /*free_fields=*/false);
    if (routed.results.size() != report.results.size()) {
      fail("planner routing leg dropped jobs");
    }
    if (!routed.all_ok()) fail("planner routing leg: a job failed");
    std::uint64_t unchanged = 0;
    const std::size_t common =
        std::min(routed.results.size(), report.results.size());
    for (std::size_t i = 0; i < common; ++i) {
      const service::JobResult& a = report.results[i];
      const service::JobResult& b = routed.results[i];
      if (a.id == b.id && checksums_equal(a.u_checksum, b.u_checksum) &&
          checksums_equal(a.energy_checksum, b.energy_checksum)) {
        ++unchanged;
      }
    }
    if (unchanged != report.results.size()) {
      fail("planner re-routing changed a job's results");
    }
    const double routed_sim = total_sim_seconds(routed);
    if (routed_sim > static_sim * (1.0 + 1e-12)) {
      std::fprintf(stderr, "  routed %.6f s > static %.6f s\n", routed_sim,
                   static_sim);
      fail("planner routing slower in total simulated seconds");
    }

    // Leg 2: same deck with model+device freed — per-job config selection.
    // Results are verified against standalone twins of what actually ran
    // (JobResult::scenario), and the argmin picks must not cost more in
    // total than the deck's static draws.
    const service::ServiceReport chosen =
        run_deck(planned, jobs_requested, /*free_fields=*/true);
    if (chosen.results.size() != static_cast<std::size_t>(jobs_requested)) {
      fail("planner selection leg dropped jobs");
    }
    if (!chosen.all_ok()) fail("planner selection leg: a job failed");
    std::map<std::string, service::ScenarioOutcome> chosen_twins;
    std::uint64_t chosen_verified = 0, chosen_identical = 0;
    for (const service::JobResult& r : chosen.results) {
      if (!r.ok) continue;
      const std::string key = r.scenario.key();
      auto it = chosen_twins.find(key);
      if (it == chosen_twins.end()) {
        it = chosen_twins.emplace(key, service::run_scenario(r.scenario))
                 .first;
      }
      ++chosen_verified;
      if (checksums_equal(r.u_checksum, it->second.u_checksum) &&
          checksums_equal(r.energy_checksum, it->second.energy_checksum)) {
        ++chosen_identical;
      } else {
        std::fprintf(stderr, "  planner checksum mismatch: job %llu (%s)\n",
                     static_cast<unsigned long long>(r.id), key.c_str());
      }
    }
    if (chosen_verified != static_cast<std::uint64_t>(jobs_requested)) {
      fail("planner selection leg: not every job verified against a twin");
    }
    if (chosen_identical != chosen_verified) {
      fail("planner-chosen configs not bit-identical to standalone twins");
    }
    const double chosen_sim = total_sim_seconds(chosen);
    if (chosen_sim > static_sim * (1.0 + 1e-12)) {
      std::fprintf(stderr, "  chosen %.6f s > static %.6f s\n", chosen_sim,
                   static_sim);
      fail("planner config selection slower than the static mix");
    }

    const auto counter = [](const service::ServiceReport& rep,
                            const char* name) {
      return static_cast<unsigned long long>(rep.metrics.counter_or(name));
    };
    std::printf(
        "  routing leg:   %llu routed large, %llu small, %llu fallback, "
        "%llu/%zu results unchanged\n",
        counter(routed, "tl_planner_routed_large"),
        counter(routed, "tl_planner_routed_small"),
        counter(routed, "tl_planner_route_fallback"),
        static_cast<unsigned long long>(unchanged), report.results.size());
    std::printf(
        "  selection leg: %llu planned, %llu plan fallback, %zu distinct "
        "chosen scenario(s), %llu/%llu bit-identical\n",
        counter(chosen, "tl_planner_planned"),
        counter(chosen, "tl_planner_plan_fallback"), chosen_twins.size(),
        static_cast<unsigned long long>(chosen_identical),
        static_cast<unsigned long long>(chosen_verified));
    std::printf(
        "  simulated seconds: static %.4f, planner-routed %.4f, "
        "planner-chosen %.4f (%.1f%% of static)\n",
        static_sim, routed_sim, chosen_sim,
        static_sim > 0.0 ? 100.0 * chosen_sim / static_sim : 0.0);
  }

  if (gate_failures > 0) {
    std::fprintf(stderr, "service soak: %d gate(s) FAILED\n", gate_failures);
    return 1;
  }
  std::printf("service soak: all gates passed\n");
  return 0;
}
