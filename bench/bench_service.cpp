// Service soak bench: push O(10k) mixed-tenant solve jobs through the
// SolveService and gate on its three promises.
//
//   throughput   the pool keeps the (simulated-device) solves flowing; the
//                measured jobs/s must clear --min-throughput when set.
//   fairness     no job's measured queue delay exceeds the queue's stated
//                aging/capacity bound (ServiceReport::fairness_bound).
//   correctness  every job's final u/energy checksums are bitwise identical
//                to a standalone run_scenario twin of the same scenario —
//                the service adds scheduling, never numerics.
//
// The job mix is drawn from a fixed-seed util::Rng, and jobs are submitted
// from one thread, so job ids, the per-tenant rollups, and therefore the
// structural sections of the emitted BENCH_service.json artifact are fully
// deterministic — that file is committed and regression-checked by
// `tl_report --check` (see tests/CMakeLists.txt). Wall-clock fields are the
// only machine-dependent numbers in it.
//
//   --smoke            1 000 jobs (CI per-cell gate); default is the 10 000
//                      job nightly soak
//   --jobs N           override the job count
//   --min-throughput X fail below X jobs/s (0 disables; default 0 so
//                      sanitizer builds pass — the nightly sets a floor)
//   --report=FILE      artifact path (default BENCH_service.json)
//   --workers/--large-workers/--capacity/--batch/--aging  pool knobs

#include <cstdio>
#include <iterator>
#include <map>
#include <string>
#include <vector>

#include "service/entry.hpp"
#include "service/job.hpp"
#include "service/pool.hpp"
#include "service/report.hpp"
#include "ports/registry.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace {

using namespace tl;

constexpr std::uint64_t kMixSeed = 0x7ea1ea55ULL;  // fixed: artifact is golden

struct ModelDevice {
  sim::Model model;
  sim::DeviceId device;
};

/// The paper's device-tuned baseline, a portable CPU model, and the GPU
/// baseline — enough to mix host- and device-shaped ports in one queue.
constexpr ModelDevice kPairs[] = {
    {sim::Model::kOmp3Cpp, sim::DeviceId::kCpuSandyBridge},
    {sim::Model::kKokkos, sim::DeviceId::kCpuSandyBridge},
    {sim::Model::kCuda, sim::DeviceId::kGpuK20X},
};

constexpr const char* kTenants[] = {"acme", "burl", "cato",
                                    "dene", "etna", "frey"};

service::Job draw_job(util::Rng& rng) {
  service::Job job;
  // Tenant weights: two heavy hitters, four long-tail.
  const std::uint64_t t = rng.next_below(10);
  job.tenant = kTenants[t < 3 ? 0 : (t < 6 ? 1 : 2 + (t - 6) % 4)];
  // Priorities: 20% high, 50% normal, 30% low.
  const std::uint64_t p = rng.next_below(10);
  job.priority = p < 2 ? service::Priority::kHigh
                       : (p < 7 ? service::Priority::kNormal
                                : service::Priority::kLow);

  service::Scenario& s = job.scenario;
  s.settings = core::Settings::default_problem();
  const ModelDevice& pair = kPairs[rng.next_below(std::size(kPairs))];
  s.model = pair.model;
  s.device = pair.device;
  // Mostly tiny meshes; the occasional 96^2 exercises the large lane.
  static constexpr int kMeshes[] = {16, 16, 16, 24, 24, 32, 32, 48, 48, 96};
  s.settings.nx = s.settings.ny = kMeshes[rng.next_below(std::size(kMeshes))];
  static constexpr int kRanks[] = {1, 1, 1, 2, 2, 4};
  s.settings.nranks = kRanks[rng.next_below(std::size(kRanks))];
  static constexpr core::SolverKind kSolvers[] = {
      core::SolverKind::kCg, core::SolverKind::kCg, core::SolverKind::kCheby,
      core::SolverKind::kPpcg, core::SolverKind::kJacobi};
  s.settings.solver = kSolvers[rng.next_below(std::size(kSolvers))];
  s.settings.eps = 1e-6;
  s.settings.max_iters = 200;
  s.settings.end_step = 1;
  return job;
}

bool checksums_equal(const verify::FieldChecksum& a,
                     const verify::FieldChecksum& b) {
  return a.sum == b.sum && a.l2 == b.l2 && a.min == b.min && a.max == b.max;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool smoke = cli.has("smoke");
  const long jobs_requested =
      cli.get_long_or("jobs", smoke ? 1'000 : 10'000);
  const double min_throughput = cli.get_double_or("min-throughput", 0.0);
  const std::string report_path = cli.get_or("report", "BENCH_service.json");

  service::ServiceConfig config;
  config.small_workers =
      static_cast<int>(cli.get_long_or("workers", 3));
  config.large_workers =
      static_cast<int>(cli.get_long_or("large-workers", 1));
  config.queue_capacity =
      static_cast<std::size_t>(cli.get_long_or("capacity", 256));
  config.batch_max = static_cast<std::size_t>(cli.get_long_or("batch", 8));
  config.aging_interval =
      static_cast<std::uint64_t>(cli.get_long_or("aging", 16));
  config.validate();

  for (const ModelDevice& pair : kPairs) {
    if (!ports::is_supported(pair.model, pair.device)) {
      std::fprintf(stderr, "service soak: pair %s x %s unsupported\n",
                   std::string(sim::model_id(pair.model)).c_str(),
                   std::string(sim::device_short_name(pair.device)).c_str());
      return 1;
    }
  }

  // Draw the whole mix up front: the scenario set (and thus the standalone
  // twin set) is fixed before the first job runs.
  util::Rng rng(kMixSeed);
  std::vector<service::Job> mix;
  mix.reserve(static_cast<std::size_t>(jobs_requested));
  for (long i = 0; i < jobs_requested; ++i) mix.push_back(draw_job(rng));

  std::printf("service soak: %ld job(s), %d+%d workers, batch %zu, "
              "capacity %zu, aging %llu\n",
              jobs_requested, config.small_workers, config.large_workers,
              config.batch_max, config.queue_capacity,
              static_cast<unsigned long long>(config.aging_interval));

  service::SolveService svc(config);
  for (service::Job& job : mix) svc.submit(std::move(job));
  const service::ServiceReport report = svc.finish();

  int gate_failures = 0;
  const auto fail = [&](const char* what) {
    std::fprintf(stderr, "service soak: GATE FAILED: %s\n", what);
    ++gate_failures;
  };

  if (report.results.size() != static_cast<std::size_t>(jobs_requested)) {
    fail("not every submitted job was drained");
  }
  if (!report.all_ok()) fail("a job failed (ok == false)");
  if (report.max_wait_pops() > report.fairness_bound) {
    std::fprintf(stderr, "  max_wait_pops %llu > bound %llu\n",
                 static_cast<unsigned long long>(report.max_wait_pops()),
                 static_cast<unsigned long long>(report.fairness_bound));
    fail("a job waited past the fairness bound");
  }

  // Bit-identity: one standalone twin per distinct scenario, every job
  // compared against its twin's checksums.
  std::map<std::string, service::ScenarioOutcome> twins;
  {
    util::Rng replay(kMixSeed);
    for (long i = 0; i < jobs_requested; ++i) {
      const service::Job job = draw_job(replay);
      const std::string key = job.scenario.key();
      if (twins.find(key) == twins.end()) {
        twins.emplace(key, service::run_scenario(job.scenario));
      }
    }
  }
  std::uint64_t verified = 0, identical = 0;
  {
    util::Rng replay(kMixSeed);
    for (const service::JobResult& r : report.results) {
      const service::Job job = draw_job(replay);  // results are id-sorted
      const auto it = twins.find(job.scenario.key());
      if (it == twins.end() || !r.ok) continue;
      ++verified;
      if (checksums_equal(r.u_checksum, it->second.u_checksum) &&
          checksums_equal(r.energy_checksum, it->second.energy_checksum)) {
        ++identical;
      } else {
        std::fprintf(stderr, "  checksum mismatch: job %llu (%s)\n",
                     static_cast<unsigned long long>(r.id),
                     job.scenario.key().c_str());
      }
    }
  }
  if (verified != static_cast<std::uint64_t>(jobs_requested)) {
    fail("not every job was verified against a standalone twin");
  }
  if (identical != verified) fail("service results not bit-identical");

  const double jobs_per_s =
      report.wall_seconds > 0.0
          ? static_cast<double>(report.results.size()) / report.wall_seconds
          : 0.0;
  if (min_throughput > 0.0 && jobs_per_s < min_throughput) {
    std::fprintf(stderr, "  %.1f jobs/s < floor %.1f\n", jobs_per_s,
                 min_throughput);
    fail("throughput below floor");
  }

  util::Table table({"tenant", "jobs", "failures", "iterations", "sim s",
                     "max wait"});
  for (const service::TenantSummary& t : report.tenants) {
    table.row({t.tenant, util::strf("%llu", (unsigned long long)t.jobs),
               util::strf("%llu", (unsigned long long)t.failures),
               util::strf("%llu", (unsigned long long)t.iterations),
               util::strf("%.4f", t.sim_seconds),
               util::strf("%llu", (unsigned long long)t.max_wait_pops)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "service soak: %zu job(s) in %.2f s (%.1f jobs/s), %zu scenario(s), "
      "%llu/%llu bit-identical, max wait %llu (bound %llu)\n",
      report.results.size(), report.wall_seconds, jobs_per_s, twins.size(),
      static_cast<unsigned long long>(identical),
      static_cast<unsigned long long>(verified),
      static_cast<unsigned long long>(report.max_wait_pops()),
      static_cast<unsigned long long>(report.fairness_bound));

  service::ArtifactInfo info;
  info.scenarios = twins.size();
  info.verified = verified;
  info.bit_identical = identical;
  if (!service::write_service_artifact(report_path, config, report, info)) {
    ++gate_failures;
  }
  std::printf("service soak: wrote %s\n", report_path.c_str());

  if (gate_failures > 0) {
    std::fprintf(stderr, "service soak: %d gate(s) FAILED\n", gate_failures);
    return 1;
  }
  std::printf("service soak: all gates passed\n");
  return 0;
}
