// Elastic-execution bench: gate the three promises of the elastic layer and
// emit the committed BENCH_elastic.json regression artifact.
//
//   heterogeneous  on a world of unequal simulated devices (2x Sandy Bridge
//                  CPU + 2x K20X GPU), a bandwidth-weighted row split must
//                  beat the equal split: the slowest rank sets the simulated
//                  runtime, and weighting by STREAM bandwidth shrinks the
//                  slow ranks' tiles.
//   faults         seeded lossy schedules (drop/duplicate/delay) routed
//                  through the ack/retry protocol must survive with results
//                  bit-identical to the clean run, with retries actually
//                  exercised.
//   resume         a run killed at a step boundary and resumed into a
//                  different rank count (snapshot passed through the TLCKPT01
//                  codec) must finish bit-identical to the uninterrupted run.
//
// Everything here runs on the simulated clock, so every number in the
// artifact except none (there is no wall clock in it) is deterministic;
// `tl_report --check` holds the structural sections exact (see
// tests/CMakeLists.txt golden.elastic.regen / telemetry.elastic.check).
// Retry/drop tallies race message delivery and are informational only.
//
//   --smoke         CI fast path: smaller heterogeneous mesh, fewer fault
//                   seeds. The committed artifact is the smoke one.
//   --report=FILE   artifact path (default BENCH_elastic.json)

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "comm/decomposition.hpp"
#include "comm/fault.hpp"
#include "core/reference_kernels.hpp"
#include "core/settings.hpp"
#include "dist/checkpoint.hpp"
#include "dist/driver.hpp"
#include "ports/registry.hpp"
#include "sim/device.hpp"
#include "sim/model_id.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace {

using namespace tl;

int total_iterations(const dist::DistReport& rep) {
  int n = 0;
  for (const core::StepReport& s : rep.run.steps) n += s.solve.iterations;
  return n;
}

bool fields_identical(const dist::DistReport& a, const dist::DistReport& b) {
  return a.u.size() == b.u.size() &&
         std::memcmp(a.u.data(), b.u.data(), a.u.size() * sizeof(double)) ==
             0 &&
         a.energy.size() == b.energy.size() &&
         std::memcmp(a.energy.data(), b.energy.data(),
                     a.energy.size() * sizeof(double)) == 0;
}

dist::PortFactory reference_factory() {
  return [](const core::Mesh& m, int) {
    return std::make_unique<core::ReferenceKernels>(m);
  };
}

// -- Heterogeneous decomposition --------------------------------------------

/// Half the world is the paper's CPU baseline, half its GPU baseline.
struct HeteroWorld {
  static constexpr int kRanks = 4;

  static sim::DeviceId device(int rank) {
    return rank < 2 ? sim::DeviceId::kCpuSandyBridge : sim::DeviceId::kGpuK20X;
  }
  static sim::Model model(int rank) {
    return rank < 2 ? sim::Model::kOmp3Cpp : sim::Model::kCuda;
  }
  static dist::PortFactory factory() {
    return [](const core::Mesh& m, int rank) {
      return ports::make_port(model(rank), device(rank), m);
    };
  }
};

struct HeteroCell {
  core::SolverKind solver;
  double equal_seconds = 0.0;
  double weighted_seconds = 0.0;
  double speedup = 0.0;
  int equal_iterations = 0;
  int weighted_iterations = 0;
};

HeteroCell run_hetero_cell(core::SolverKind solver, int mesh) {
  core::Settings s = core::Settings::default_problem();
  s.nx = s.ny = mesh;
  s.solver = solver;
  s.end_step = 1;
  s.nranks = HeteroWorld::kRanks;

  comm::DecompOptions equal_opt;
  equal_opt.layout = comm::DecompOptions::Layout::kRows;

  HeteroCell cell;
  cell.solver = solver;
  // The equal-split run doubles as the calibration pass: each rank's
  // measured rate (rows per simulated second) folds launch latency AND
  // bandwidth into one number, so a latency-bound GPU is weighted by what
  // it actually delivers on this mesh, not by its STREAM headline.
  comm::DecompOptions weighted_opt;
  {
    const comm::BlockDecomposition equal_dec(s.nx, s.ny, s.nranks, equal_opt);
    dist::DistributedDriver driver(s, HeteroWorld::factory(), equal_dec);
    const dist::DistReport rep = driver.run();
    cell.equal_seconds = rep.run.sim_total_seconds;
    cell.equal_iterations = total_iterations(rep);
    for (const dist::RankReport& r : rep.ranks) {
      const double rows = static_cast<double>(equal_dec.tile(r.rank).ny());
      weighted_opt.weights.push_back(
          r.sim_seconds > 0.0 ? rows / r.sim_seconds : 1.0);
    }
  }
  {
    dist::DistributedDriver driver(
        s, HeteroWorld::factory(),
        comm::BlockDecomposition(s.nx, s.ny, s.nranks, weighted_opt));
    const dist::DistReport rep = driver.run();
    cell.weighted_seconds = rep.run.sim_total_seconds;
    cell.weighted_iterations = total_iterations(rep);
  }
  cell.speedup = cell.weighted_seconds > 0.0
                     ? cell.equal_seconds / cell.weighted_seconds
                     : 0.0;
  return cell;
}

// -- Fault survival ----------------------------------------------------------

struct FaultCell {
  std::uint64_t seed = 0;
  bool survived = false;
  bool identical = false;
  std::uint64_t retries = 0;
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t delayed = 0;
};

FaultCell run_fault_cell(std::uint64_t seed, const dist::DistReport& clean,
                         const core::Settings& s) {
  FaultCell cell;
  cell.seed = seed;
  dist::RunControl ctl;
  ctl.faults.seed = seed;
  ctl.faults.drop = 0.08;
  ctl.faults.duplicate = 0.05;
  ctl.faults.delay = 0.05;
  try {
    dist::DistributedDriver driver(s, reference_factory());
    const dist::DistReport rep = driver.run(ctl);
    cell.survived = true;
    cell.identical = fields_identical(clean, rep) &&
                     clean.run.steps.back().solve.rr_history ==
                         rep.run.steps.back().solve.rr_history;
    for (const dist::RankReport& r : rep.ranks) {
      cell.retries += r.comm.retries;
      cell.dropped += r.comm.dropped;
      cell.duplicated += r.comm.duplicated;
      cell.delayed += r.comm.delayed;
    }
  } catch (const comm::CommFaultError& e) {
    std::fprintf(stderr, "elastic bench: seed %llu did not survive: %s\n",
                 static_cast<unsigned long long>(seed), e.what());
  }
  return cell;
}

// -- Kill-and-resume ---------------------------------------------------------

struct ResumeCell {
  core::SolverKind solver;
  int from_ranks = 0;
  int to_ranks = 0;
  bool identical = false;
};

ResumeCell run_resume_cell(core::SolverKind solver, int from_ranks,
                           int to_ranks, int mesh) {
  core::Settings s = core::Settings::default_problem();
  s.nx = s.ny = mesh;
  s.solver = solver;
  s.end_step = 2;
  s.elastic = true;

  ResumeCell cell;
  cell.solver = solver;
  cell.from_ranks = from_ranks;
  cell.to_ranks = to_ranks;

  s.nranks = to_ranks;
  dist::DistributedDriver uninterrupted(s, reference_factory());
  const dist::DistReport full = uninterrupted.run();

  std::vector<std::uint8_t> wire;
  {
    s.nranks = from_ranks;
    dist::DistributedDriver first_leg(s, reference_factory());
    dist::RunControl ctl;
    ctl.halt_after_step = 1;
    ctl.on_checkpoint = [&wire](const dist::Snapshot& snap) {
      wire = dist::serialize(snap);  // the artifact goes through the codec
    };
    (void)first_leg.run(ctl);
  }
  const dist::Snapshot snap = dist::deserialize(wire);

  s.nranks = to_ranks;
  dist::DistributedDriver second_leg(s, reference_factory());
  dist::RunControl ctl;
  ctl.resume = &snap;
  const dist::DistReport resumed = second_leg.run(ctl);

  cell.identical =
      fields_identical(full, resumed) &&
      full.run.steps.size() == resumed.run.steps.size() &&
      full.run.steps.back().solve.rr_history ==
          resumed.run.steps.back().solve.rr_history;
  return cell;
}

// -- Artifact ----------------------------------------------------------------

std::string artifact_json(const std::string& mode, int hetero_mesh,
                          const std::vector<HeteroCell>& hetero,
                          const std::vector<FaultCell>& faults,
                          const std::vector<ResumeCell>& resumes) {
  std::string os;
  os += "{\n";
  os += "  \"bench\": \"elastic\",\n";
  os += "  \"source\": \"bench_elastic\",\n";
  os += util::strf("  \"mode\": \"%s\",\n", mode.c_str());
  os += util::strf(
      "  \"heterogeneous\": {\"ranks\": %d, \"mesh\": %d, \"cells\": [",
      HeteroWorld::kRanks, hetero_mesh);
  for (std::size_t i = 0; i < hetero.size(); ++i) {
    const HeteroCell& c = hetero[i];
    os += i ? ",\n    " : "\n    ";
    os += util::strf(
        "{\"solver\": \"%s\", \"equal_seconds\": %.17g, "
        "\"weighted_seconds\": %.17g, \"speedup\": %.17g, "
        "\"equal_iterations\": %d, \"weighted_iterations\": %d}",
        std::string(core::solver_name(c.solver)).c_str(), c.equal_seconds,
        c.weighted_seconds, c.speedup, c.equal_iterations,
        c.weighted_iterations);
  }
  os += "\n  ]},\n";
  os += "  \"faults\": {\"cells\": [";
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const FaultCell& c = faults[i];
    os += i ? ",\n    " : "\n    ";
    os += util::strf(
        "{\"seed\": %llu, \"survived\": %d, \"identical\": %d, "
        "\"retries\": %llu, \"dropped\": %llu, \"duplicated\": %llu, "
        "\"delayed\": %llu}",
        static_cast<unsigned long long>(c.seed), c.survived ? 1 : 0,
        c.identical ? 1 : 0, static_cast<unsigned long long>(c.retries),
        static_cast<unsigned long long>(c.dropped),
        static_cast<unsigned long long>(c.duplicated),
        static_cast<unsigned long long>(c.delayed));
  }
  os += "\n  ]},\n";
  os += "  \"resume\": {\"cells\": [";
  for (std::size_t i = 0; i < resumes.size(); ++i) {
    const ResumeCell& c = resumes[i];
    os += i ? ",\n    " : "\n    ";
    os += util::strf(
        "{\"solver\": \"%s\", \"from_ranks\": %d, \"to_ranks\": %d, "
        "\"identical\": %d}",
        std::string(core::solver_name(c.solver)).c_str(), c.from_ranks,
        c.to_ranks, c.identical ? 1 : 0);
  }
  os += "\n  ]}\n";
  os += "}\n";
  return os;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool smoke = cli.has("smoke");
  const std::string report_path = cli.get_or("report", "BENCH_elastic.json");
  const int hetero_mesh =
      static_cast<int>(cli.get_long_or("mesh", smoke ? 128 : 384));

  int gate_failures = 0;
  const auto fail = [&](const char* what) {
    std::fprintf(stderr, "elastic bench: GATE FAILED: %s\n", what);
    ++gate_failures;
  };

  // Heterogeneous: weighted must beat equal for every solver.
  std::printf("elastic bench (%s): heterogeneous world, %d ranks "
              "(2x CPU 76.2 GB/s + 2x K20X 180.1 GB/s), %dx%d\n",
              smoke ? "smoke" : "full", HeteroWorld::kRanks, hetero_mesh,
              hetero_mesh);
  std::vector<HeteroCell> hetero;
  for (const core::SolverKind solver :
       {core::SolverKind::kCg, core::SolverKind::kPpcg}) {
    hetero.push_back(run_hetero_cell(solver, hetero_mesh));
  }
  {
    util::Table table({"solver", "equal s", "weighted s", "speedup", "iters"});
    for (const HeteroCell& c : hetero) {
      table.row({std::string(core::solver_name(c.solver)),
                 util::strf("%.6f", c.equal_seconds),
                 util::strf("%.6f", c.weighted_seconds),
                 util::strf("%.3fx", c.speedup),
                 util::strf("%d/%d", c.equal_iterations,
                            c.weighted_iterations)});
      if (!(c.weighted_seconds < c.equal_seconds)) {
        fail("weighted split not faster than equal split");
      }
    }
    std::printf("%s", table.render().c_str());
  }

  // Faults: every seeded lossy schedule survives bit-identically.
  const int fault_seeds = smoke ? 2 : 5;
  core::Settings fault_settings = core::Settings::default_problem();
  fault_settings.nx = fault_settings.ny = 48;
  fault_settings.solver = core::SolverKind::kCg;
  fault_settings.end_step = 2;
  fault_settings.nranks = 4;
  dist::DistributedDriver clean_driver(fault_settings, reference_factory());
  const dist::DistReport clean = clean_driver.run();
  std::vector<FaultCell> faults;
  std::uint64_t total_retries = 0;
  for (int seed = 1; seed <= fault_seeds; ++seed) {
    faults.push_back(run_fault_cell(static_cast<std::uint64_t>(seed), clean,
                                    fault_settings));
    const FaultCell& c = faults.back();
    total_retries += c.retries;
    std::printf(
        "  faults seed %d: %s, %s, %llu retries (%llu drop / %llu dup / "
        "%llu delay)\n",
        seed, c.survived ? "survived" : "DIED",
        c.identical ? "bit-identical" : "DIVERGED",
        static_cast<unsigned long long>(c.retries),
        static_cast<unsigned long long>(c.dropped),
        static_cast<unsigned long long>(c.duplicated),
        static_cast<unsigned long long>(c.delayed));
    if (!c.survived) fail("a lossy schedule was not survived");
    if (!c.identical) fail("a survived schedule diverged from the clean run");
  }
  if (total_retries == 0) fail("the retry protocol was never exercised");

  // Resume: kill at the step boundary, resume into a different rank count.
  std::vector<ResumeCell> resumes;
  struct Transition { core::SolverKind solver; int from; int to; };
  const Transition transitions[] = {
      {core::SolverKind::kCg, 2, 4},
      {core::SolverKind::kCheby, 4, 2},
      {core::SolverKind::kPpcg, 1, 4},
      {core::SolverKind::kJacobi, 4, 8},
  };
  for (const Transition& t : transitions) {
    resumes.push_back(run_resume_cell(t.solver, t.from, t.to, 48));
    const ResumeCell& c = resumes.back();
    std::printf("  resume %s %d -> %d ranks: %s\n",
                std::string(core::solver_name(c.solver)).c_str(),
                c.from_ranks, c.to_ranks,
                c.identical ? "bit-identical" : "DIVERGED");
    if (!c.identical) fail("a resumed run diverged from the uninterrupted run");
  }

  const std::string json = artifact_json(smoke ? "smoke" : "full",
                                         hetero_mesh, hetero, faults, resumes);
  {
    std::ofstream out(report_path);
    if (out) out << json;
    if (!out) {
      util::log_error("elastic bench: cannot write '%s'", report_path.c_str());
      ++gate_failures;
    }
  }
  std::printf("elastic bench: wrote %s\n", report_path.c_str());

  if (gate_failures > 0) {
    std::fprintf(stderr, "elastic bench: %d gate(s) FAILED\n", gate_failures);
    return 1;
  }
  std::printf("elastic bench: all gates passed\n");
  return 0;
}
