// Figure 8 reproduction: dual-socket Intel Xeon E5-2670 CPUs solving across
// a 4096x4096 mesh (lower is better), plus the paper's 15-run OpenCL CPU
// variance experiment (1631 s .. 2813 s in the paper).
//
// Observability flags (strictly additive; default output is unchanged):
//   --profile       per-kernel breakdown per model, plus a launch-factor
//                   histogram of the OpenCL CPU work-stealing scheduler
//   --trace=FILE    Chrome trace (chrome://tracing) of one model's solves
//   --trace-model=ID  which model to trace (default: first figure model)
//   --smoke         CI fast path: short calibration ladder, 512^2 mesh,
//                   5-run variance experiment (CSV not golden-comparable)
//   --report=FILE   tl-report-1 run report + sibling .om OpenMetrics export

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "util/stats.hpp"
#include "util/string_util.hpp"

namespace {

/// The paper explains the OpenCL CPU spread with TBB's non-deterministic
/// work stealing; with tracing attached the per-launch scheduler factors are
/// directly observable, so print their distribution across one solve.
void print_launch_factor_histogram(const bench::Harness& harness, int mesh) {
  using namespace tl;
  sim::RecordingSink sink;
  harness.modelled_solve(sim::Model::kOpenCl, sim::DeviceId::kCpuSandyBridge,
                         core::SolverKind::kCg, mesh, 1, &sink);
  std::vector<double> factors;
  factors.reserve(sink.events().size());
  for (const sim::TraceEvent& ev : sink.events()) {
    if (ev.kind == sim::TraceEvent::Kind::kLaunch) {
      factors.push_back(ev.launch_factor);
    }
  }
  if (factors.empty()) return;
  const auto s = util::summarize(factors);
  std::printf("\n-- OpenCL CPU per-launch scheduler factors (CG solve, %zu "
              "launches) --\n", factors.size());
  constexpr int kBins = 10;
  const double width = (s.max - s.min) / kBins;
  if (width <= 0.0) {
    std::printf("  all launches at factor %.3f\n", s.min);
    return;
  }
  std::vector<int> bins(kBins, 0);
  for (const double f : factors) {
    int b = static_cast<int>((f - s.min) / width);
    if (b >= kBins) b = kBins - 1;
    ++bins[static_cast<std::size_t>(b)];
  }
  int peak = 1;
  for (const int b : bins) peak = std::max(peak, b);
  for (int b = 0; b < kBins; ++b) {
    const int stars = (bins[static_cast<std::size_t>(b)] * 50) / peak;
    std::printf("  [%.3f, %.3f) %6d %s\n", s.min + b * width,
                s.min + (b + 1) * width, bins[static_cast<std::size_t>(b)],
                std::string(static_cast<std::size_t>(stars), '#').c_str());
  }
  std::printf("  factor min %.3f / mean %.3f / max %.3f (static schedulers "
              "sit at 1.000)\n", s.min, s.mean, s.max);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tl;
  const bench::BenchOptions opts = bench::parse_bench_options(argc, argv);
  bench::Harness harness(opts.smoke ? bench::smoke_ladder()
                                     : std::vector<int>{});
  bench::run_device_figure(harness, sim::DeviceId::kCpuSandyBridge,
                           "Figure 8: CPU (2x Xeon E5-2670) runtimes",
                           "fig8_cpu.csv", opts);

  // The 15-run OpenCL variance experiment (total across the three solvers).
  // Smoke mode keeps the experiment but shrinks it (5 runs, smoke mesh).
  const int runs = opts.smoke ? 5 : 15;
  const int mesh =
      opts.smoke ? bench::kSmokeMesh : bench::Harness::kConvergenceMesh;
  std::vector<double> totals;
  for (std::uint64_t run = 1; run <= static_cast<std::uint64_t>(runs); ++run) {
    double total = 0.0;
    for (const core::SolverKind solver : core::kAllSolvers) {
      total += harness
                   .modelled_solve(sim::Model::kOpenCl,
                                   sim::DeviceId::kCpuSandyBridge, solver,
                                   mesh, run)
                   .seconds;
    }
    totals.push_back(total);
  }
  const auto s = util::summarize(totals);
  std::printf(
      "\nOpenCL CPU variance over %d runs (TBB-style work stealing): "
      "min %.0f s, max %.0f s, mean %.0f s, stddev %.0f s\n"
      "paper reported min 1631 s / max 2813 s over 15 tests\n",
      runs, s.min, s.max, s.mean, s.stddev);

  if (opts.profile) print_launch_factor_histogram(harness, mesh);
  return 0;
}
