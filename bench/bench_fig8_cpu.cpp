// Figure 8 reproduction: dual-socket Intel Xeon E5-2670 CPUs solving across
// a 4096x4096 mesh (lower is better), plus the paper's 15-run OpenCL CPU
// variance experiment (1631 s .. 2813 s in the paper).

#include <cstdio>
#include <vector>

#include "bench/harness.hpp"
#include "util/stats.hpp"
#include "util/string_util.hpp"

int main() {
  using namespace tl;
  bench::Harness harness;
  bench::run_device_figure(harness, sim::DeviceId::kCpuSandyBridge,
                           "Figure 8: CPU (2x Xeon E5-2670) runtimes",
                           "fig8_cpu.csv");

  // The 15-run OpenCL variance experiment (total across the three solvers).
  std::vector<double> totals;
  for (std::uint64_t run = 1; run <= 15; ++run) {
    double total = 0.0;
    for (const core::SolverKind solver : core::kAllSolvers) {
      total += harness
                   .modelled_solve(sim::Model::kOpenCl,
                                   sim::DeviceId::kCpuSandyBridge, solver,
                                   bench::Harness::kConvergenceMesh, run)
                   .seconds;
    }
    totals.push_back(total);
  }
  const auto s = util::summarize(totals);
  std::printf(
      "\nOpenCL CPU variance over 15 runs (TBB-style work stealing): "
      "min %.0f s, max %.0f s, mean %.0f s, stddev %.0f s\n"
      "paper reported min 1631 s / max 2813 s over 15 tests\n",
      s.min, s.max, s.mean, s.stddev);
  return 0;
}
