#pragma once
// Shared bench harness for the paper-reproduction binaries (one per table /
// figure, see DESIGN.md's per-experiment index).
//
// Pipeline: real small-mesh solves calibrate the per-solver iteration power
// law; paper-scale meshes are then metered through PhantomKernels with the
// same kernel catalogue and per-model trait decoration the live ports use
// (pinned by the port<->replay consistency tests).

#include <map>
#include <string>
#include <vector>

#include "core/iteration_model.hpp"
#include "core/settings.hpp"
#include "sim/device.hpp"
#include "sim/model_id.hpp"
#include "sim/trace.hpp"

namespace bench {

struct SolveResult {
  tl::sim::Model model;
  tl::sim::DeviceId device;
  tl::core::SolverKind solver;
  int nx = 0;
  int outer_iterations = 0;
  double seconds = 0.0;            // simulated runtime
  double bandwidth_gbs = 0.0;      // achieved main-memory bandwidth
  std::uint64_t launches = 0;
  // Dispatch accounting carried through for run reports.
  int fused_iterations = 0;
  int classic_iterations = 0;
  bool converged = false;
  double final_rr = 0.0;
};

class Harness {
 public:
  /// Calibrates iteration power laws for all three solvers by running real
  /// solves on the reference kernels over `ladder` (defaults to
  /// core::default_calibration_ladder()).
  explicit Harness(std::vector<int> ladder = {});

  const tl::core::IterationModel& iteration_model(
      tl::core::SolverKind solver) const;

  /// Predicted outer iterations at mesh size nx (square meshes).
  int predicted_outer(tl::core::SolverKind solver, int nx) const;

  /// Paper-scale modelled solve: one timestep at nx^2 under (model, device),
  /// iterations from the calibrated fit, metered via PhantomKernels. When
  /// `sink` is non-null it receives one TraceEvent per metered
  /// launch/transfer of the solve (the result is unchanged either way).
  /// `use_fused = false` forces the classic kernel sequence (bench_fusion
  /// compares the two pipelines cell by cell).
  SolveResult modelled_solve(tl::sim::Model model, tl::sim::DeviceId device,
                             tl::core::SolverKind solver, int nx,
                             std::uint64_t run_seed = 1,
                             tl::sim::TraceSink* sink = nullptr,
                             bool use_fused = true) const;

  /// Jacobi has no calibrated power law (it appears in no paper figure), so
  /// modelled Jacobi solves run a fixed iteration budget instead.
  static constexpr int kJacobiModelledIters = 200;

  /// The paper's headline mesh (the mesh-convergence point).
  static constexpr int kConvergenceMesh = 4096;

  /// Fig 11 mesh ladder: ~k * 1.5e5 cells, k = 1..10 (up to 1225^2).
  static std::vector<int> fig11_meshes();

  /// Prints the calibration block every figure bench leads with.
  void print_calibration() const;

 private:
  tl::core::Settings proto_;
  std::map<tl::core::SolverKind, tl::core::IterationModel> models_;
};

/// Formats seconds for table cells ("1234.5").
std::string fmt_seconds(double s);

/// Flags shared by every bench binary, parsed in exactly one place
/// (parse_bench_options). The observability flags are strictly additive:
/// with none set, bench output and CSVs are byte-identical to the untraced
/// harness (no sink is ever attached).
struct BenchOptions {
  /// --profile: after the runtime table, print a per-kernel breakdown
  /// (count, total, % of run, GB/s, scheduler factor spread) per model.
  bool profile = false;
  /// --trace=FILE: write a Chrome trace (chrome://tracing JSON) of one
  /// model's three solves, one timeline row per solver.
  std::string trace_path;
  /// --trace-model=ID: which model to trace (default: the figure's first).
  std::string trace_model;
  /// --smoke: CI fast path — calibrate on a short ladder and run the figure
  /// at kSmokeMesh instead of the paper's 4096^2. Exercises the identical
  /// pipeline (calibration, phantom metering, CSV) in a fraction of the
  /// time; the CSV is NOT comparable to the committed full-size goldens.
  bool smoke = false;
  /// --report=FILE: write the tl-report-1 JSON run report (and its sibling
  /// .om OpenMetrics export) of the bench's metered solves.
  std::string report_path;
};

/// Mesh edge for --smoke figure runs.
inline constexpr int kSmokeMesh = 512;

/// Calibration ladder for --smoke runs (the full default ladder is used
/// otherwise).
std::vector<int> smoke_ladder();

/// Parses --profile / --trace=FILE / --trace-model=ID / --smoke /
/// --report=FILE from argv.
BenchOptions parse_bench_options(int argc, const char* const* argv);

/// Meters `model`'s three solves (CG, Chebyshev, PPCG) at `mesh` on
/// `device` and writes the tl-report-1 run report to `path` (sibling `.om`
/// alongside): per-kernel profile with roofline ratios, solve outcomes,
/// registry counters/histograms. `source` labels the emitting bench.
void write_figure_report(const Harness& harness, tl::sim::Model model,
                         tl::sim::DeviceId device, int mesh,
                         const std::string& source, const std::string& path);

/// Shared driver for the per-device runtime figures (paper Figs 8/9/10):
/// each figure model x {CG, Chebyshev, PPCG} at the 4096^2 convergence mesh,
/// printed as a table and written to `csv_path`. `opts` adds the opt-in
/// per-kernel profile, Chrome-trace, and run-report outputs.
void run_device_figure(const Harness& harness, tl::sim::DeviceId device,
                       const std::string& title, const std::string& csv_path,
                       const BenchOptions& opts = {});

}  // namespace bench
