// Table 1 reproduction: supported implementations for each model.
//
//   | Model      | CPUs | NVIDIA GPUs  | KNC     |
//   | OpenMP 3.0 | Yes  |              | Native  |  ... (paper Table 1)

#include <cstdio>

#include "sim/codegen.hpp"
#include "util/table.hpp"

int main() {
  using namespace tl;
  std::printf("== Table 1: supported implementations for each model ==\n\n");

  util::Table table({"Model", "CPUs", "NVIDIA GPUs", "KNC"});
  for (const sim::Model m : sim::kAllModels) {
    // The paper lists base models; the HP / SIMD variants share their rows.
    if (m == sim::Model::kKokkosHp || m == sim::Model::kRajaSimd ||
        m == sim::Model::kOmp3Cpp) {
      continue;
    }
    table.row({std::string(sim::model_name(m)),
               std::string(sim::support_cell(m, sim::DeviceId::kCpuSandyBridge)),
               std::string(sim::support_cell(m, sim::DeviceId::kGpuK20X)),
               std::string(sim::support_cell(m, sim::DeviceId::kMicKnc))});
  }
  table.print();

  std::printf(
      "\npaper shape check: CUDA is GPU-only; OpenMP 3.0/RAJA have no GPU "
      "path; OpenCL reaches all three (CPU/GPU/KNC-offload);\n"
      "OpenMP 4.0 GPU support is 'Experimental'; Kokkos/RAJA compile "
      "natively on KNC.\n");
  return 0;
}
