// Figure 9 reproduction: NVIDIA K20X GPU runtimes across a 4096x4096 mesh
// (lower is better). Paper shape: CUDA ~= OpenCL best; OpenACC +30% on CG,
// +10% otherwise; Kokkos <5% on Chebyshev/PPCG with a +50% CG anomaly;
// Kokkos HP trades ~10% better CG for >20% worse Chebyshev/PPCG.
//
// Supports --profile / --trace=FILE / --trace-model=ID / --smoke /
// --report=FILE (see
// bench/harness.hpp); flagless output is unchanged.

#include "bench/harness.hpp"
#include "sim/device.hpp"

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_bench_options(argc, argv);
  bench::Harness harness(opts.smoke ? bench::smoke_ladder()
                                     : std::vector<int>{});
  bench::run_device_figure(harness, tl::sim::DeviceId::kGpuK20X,
                           "Figure 9: GPU (NVIDIA K20X) runtimes",
                           "fig9_gpu.csv", opts);
  return 0;
}
