// Figure 10 reproduction: Intel Xeon Phi (Knights Corner) runtimes across a
// 4096x4096 mesh (lower is better). Paper shape: native OpenMP F90 leads;
// OpenMP 4.0 +45% CG / ~10% otherwise; OpenCL CG ~3x the best; RAJA native
// substantially slower everywhere (no vectorisation through indirection);
// Kokkos HP roughly halves flat Kokkos' CG/PPCG times.
//
// Supports --profile / --trace=FILE / --trace-model=ID / --smoke /
// --report=FILE (see
// bench/harness.hpp); flagless output is unchanged.

#include "bench/harness.hpp"
#include "sim/device.hpp"

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_bench_options(argc, argv);
  bench::Harness harness(opts.smoke ? bench::smoke_ladder()
                                     : std::vector<int>{});
  bench::run_device_figure(harness, tl::sim::DeviceId::kMicKnc,
                           "Figure 10: KNC (Xeon Phi 5110P/SE10P) runtimes",
                           "fig10_knc.csv", opts);
  return 0;
}
