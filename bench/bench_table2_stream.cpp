// Table 2 reproduction: devices and corresponding memory bandwidth.
// Runs the STREAM kernels (verified arithmetic) on each simulated device,
// and additionally reports the fraction of STREAM each programming model's
// codegen achieves on a pure streaming kernel.

#include <cstdio>

#include "sim/codegen.hpp"
#include "sim/stream.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main() {
  using namespace tl;
  std::printf("== Table 2: devices and corresponding memory bandwidth ==\n\n");

  const std::size_t len = 1 << 23;  // 64 MiB/array: defeats every LLC
  util::Table table({"Device", "Peak BW", "STREAM BW", "copy", "scale", "add",
                     "triad", "verified"});
  for (const sim::DeviceId d : sim::kAllDevices) {
    const auto& spec = sim::device_spec(d);
    const auto r = sim::run_stream(d, len, 3);
    table.row({std::string(spec.name), util::strf("%.1f GB/s", spec.peak_bw_gbs),
               util::strf("%.1f GB/s", spec.stream_bw_gbs),
               util::strf("%.1f", r.copy_gbs), util::strf("%.1f", r.scale_gbs),
               util::strf("%.1f", r.add_gbs), util::strf("%.1f", r.triad_gbs),
               r.verified ? "yes" : "NO"});
  }
  table.print();

  std::printf("\n-- streaming-kernel fraction of STREAM per model (extra) --\n");
  util::Table frac({"Model", "cpu", "gpu", "knc"});
  for (const sim::Model m : sim::kAllModels) {
    std::vector<std::string> row{std::string(sim::model_name(m))};
    for (const sim::DeviceId d : sim::kAllDevices) {
      if (!sim::codegen_profile(m, d).supported) {
        row.push_back("-");
        continue;
      }
      const auto r = sim::run_stream(m, d, len, 1);
      row.push_back(
          util::strf("%.0f%%", 100.0 * r.best_gbs() /
                                   sim::device_spec(d).stream_bw_gbs));
    }
    frac.row(std::move(row));
  }
  frac.print();
  return 0;
}
