// bench_plan: does the fitted cost model pick the config you should run?
//
// Fits a tl-models-1 catalog per committed measurement grid, then replays
// the planner over every grid point where a real choice exists and compares
// the pick against the measured oracle (the row with the smallest measured
// seconds):
//
//   fig11  per (device, mesh):     pick the programming model  (CG sweep)
//   fig8/9 per (device, solver):   pick the programming model  (4096^2)
//   fig13  per solver (strong):    pick (ranks, blocking|overlap)
//
// Each grid gets its own catalog so an argmin never compares predictions
// fitted from different measurement protocols (the fig13 strong-scaling
// baseline runs a different iteration budget than the fig8 convergence
// runs, so their absolute seconds are not commensurable).
//
// A pick counts as "best" when the measured seconds of the chosen config is
// within --tie-tol (default 0.5%) of the oracle — the GPU grids contain
// near-ties (cuda vs opencl within ~0.2%) that no honest single-term model
// can split. Exact argmin hits are tracked separately. Aggregate regret is
// sum(chosen measured) / sum(oracle measured) - 1.
//
// Gates (exit 1 on failure):
//   picked-best rate >= 95%      aggregate regret <= 5%
//   mean LOO held-out error <= 15%   worst LOO error <= 40%
//
// Writes BENCH_plan.json (`"bench": "plan"`), regression-checked by
// tl_report --check against the committed baseline.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "tune/ingest.hpp"
#include "tune/planner.hpp"
#include "util/cli.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

using namespace tl;

namespace {

struct EvalCell {
  std::string grid;    // "fig11" | "fig8" | "fig9" | "fig13"
  std::string device;
  std::string solver;
  int mesh = 0;        // nx
  std::string chosen;  // human-readable picked config
  std::string oracle;  // measured-fastest config
  double chosen_s = 0.0;
  double oracle_s = 0.0;
  bool exact = false;
  bool picked_best = false;

  double regret() const {
    return oracle_s > 0.0 ? chosen_s / oracle_s - 1.0 : 0.0;
  }
};

/// Measured y for a series at x (exact sample match within 1e-9 relative).
bool measured_at(const tune::SampleSet& set, const tune::SeriesKey& key,
                 double x, double* y) {
  const auto it = set.series.find(key.str());
  if (it == set.series.end()) return false;
  for (const tune::SamplePoint& p : it->second.second) {
    if (std::abs(p.x - x) <= 1e-9 * std::max(std::abs(x), 1.0)) {
      *y = p.y;
      return true;
    }
  }
  return false;
}

tune::SampleSet ingest_or_die(const std::vector<std::string>& paths) {
  tune::SampleSet set;
  for (const std::string& path : paths) tune::ingest_file(set, path);
  return set;
}

/// fig11 + fig8/9 shape: per evaluation group, the planner picks the
/// programming model with everything else pinned.
void eval_model_choice(const tune::SampleSet& samples,
                       const tune::ModelCatalog& catalog,
                       const std::string& grid_name, double tie_tol,
                       std::vector<EvalCell>& cells) {
  // group key: (device, solver, cells) -> [(model, measured seconds)]
  std::map<std::tuple<std::string, std::string, double>,
           std::vector<std::pair<std::string, double>>>
      groups;
  for (const auto& [str_key, entry] : samples.series) {
    (void)str_key;
    const tune::SeriesKey& key = entry.first;
    if (key.metric != "total_s" || key.x != "cells" || !key.variant.empty()) {
      continue;
    }
    for (const tune::SamplePoint& p : entry.second) {
      groups[{key.device, key.solver, p.x}].push_back({key.model, p.y});
    }
  }
  for (const auto& [group, options] : groups) {
    const auto& [device, solver, mesh_cells] = group;
    if (options.size() < 2) continue;  // no choice to make
    const auto oracle = *std::min_element(
        options.begin(), options.end(),
        [](const auto& l, const auto& r) { return l.second < r.second; });

    tune::PlanQuery q;
    q.nx = static_cast<int>(std::lround(std::sqrt(mesh_cells)));
    q.solver = solver;
    q.device = device;
    const tune::PlanResult plan = tune::choose_config(catalog, q);
    EvalCell cell;
    cell.grid = grid_name;
    cell.device = device;
    cell.solver = solver;
    cell.mesh = q.nx;
    cell.oracle = oracle.first;
    cell.oracle_s = oracle.second;
    if (!plan.ok) {
      cell.chosen = "(no plan: " + plan.error + ")";
      cell.chosen_s = 0.0;
    } else {
      cell.chosen = plan.best.model;
      double chosen_s = 0.0;
      tune::SeriesKey mk{"total_s", plan.best.model, device, solver, "",
                         "cells"};
      if (measured_at(samples, mk, mesh_cells, &chosen_s)) {
        cell.chosen_s = chosen_s;
        cell.exact = chosen_s == oracle.second;
        cell.picked_best = chosen_s <= oracle.second * (1.0 + tie_tol);
      } else {
        cell.chosen = plan.best.model + " (unmeasured)";
      }
    }
    cells.push_back(std::move(cell));
  }
}

/// fig13 shape: solver pinned (omp3/cpu strong scaling at 4096), the
/// planner picks (ranks, blocking|overlap).
void eval_rank_choice(const tune::SampleSet& samples,
                      const tune::ModelCatalog& catalog, double tie_tol,
                      std::vector<EvalCell>& cells) {
  // measured[(solver)][(mode, ranks)] = total seconds
  std::map<std::string, std::map<std::pair<std::string, int>, double>>
      measured;
  std::set<int> rank_values;
  for (const auto& [str_key, entry] : samples.series) {
    (void)str_key;
    const tune::SeriesKey& key = entry.first;
    if (key.metric != "total_s" || key.x != "ranks" ||
        key.variant.rfind("strong-", 0) != 0) {
      continue;
    }
    // variant = "strong-<mode>-<nx>"
    const std::vector<std::string> parts = util::split(key.variant, '-');
    if (parts.size() != 3 || parts[2] != "4096") continue;
    for (const tune::SamplePoint& p : entry.second) {
      const int ranks = static_cast<int>(std::lround(p.x));
      measured[key.solver][{parts[1], ranks}] = p.y;
      rank_values.insert(ranks);
    }
  }
  for (const auto& [solver, grid] : measured) {
    if (grid.size() < 2) continue;
    const auto oracle = *std::min_element(
        grid.begin(), grid.end(),
        [](const auto& l, const auto& r) { return l.second < r.second; });

    tune::PlanQuery q;
    q.nx = 4096;
    q.solver = solver;
    q.model = "omp3";
    q.device = "cpu";
    q.rank_choices.assign(rank_values.begin(), rank_values.end());
    const tune::PlanResult plan = tune::choose_config(catalog, q);
    EvalCell cell;
    cell.grid = "fig13";
    cell.device = "cpu";
    cell.solver = solver;
    cell.mesh = 4096;
    cell.oracle = util::strf("ranks=%d %s", oracle.first.second,
                             oracle.first.first.c_str());
    cell.oracle_s = oracle.second;
    if (!plan.ok) {
      cell.chosen = "(no plan: " + plan.error + ")";
    } else {
      const char* mode = plan.best.overlap_comm ? "overlap" : "blocking";
      cell.chosen = util::strf("ranks=%d %s", plan.best.ranks, mode);
      const auto it = grid.find({mode, plan.best.ranks});
      if (it != grid.end()) {
        cell.chosen_s = it->second;
        cell.exact = it->second == oracle.second;
        cell.picked_best = it->second <= oracle.second * (1.0 + tie_tol);
      } else {
        cell.chosen += " (unmeasured)";
      }
    }
    cells.push_back(std::move(cell));
  }
}

struct CvStats {
  double sum = 0.0;
  double worst = 0.0;
  int series = 0;
};

/// Leave-one-out diagnostics over the multi-point total_s series — the
/// honest held-out prediction-error number for the fitted grids.
void accumulate_cv(const tune::ModelCatalog& catalog, CvStats& stats) {
  for (const auto& [key, s] : catalog.series()) {
    (void)key;
    if (s.key.metric != "total_s" || s.quality.points < 3) continue;
    stats.sum += s.quality.cv_rel_err;
    stats.worst = std::max(stats.worst, s.quality.cv_max_rel_err);
    ++stats.series;
  }
}

void write_artifact(const std::vector<EvalCell>& cells, double tie_tol,
                    const CvStats& cv, int exact, int picked_best,
                    double regret_pct, const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::printf("FAILED to write %s\n", path.c_str());
    return;
  }
  const double n = static_cast<double>(cells.size());
  const double cv_mean =
      cv.series > 0 ? cv.sum / static_cast<double>(cv.series) : 0.0;
  std::fprintf(f, "{\n  \"bench\": \"plan\",\n");
  std::fprintf(f, "  \"source\": \"bench_plan\",\n");
  std::fprintf(f, "  \"tie_tol\": %.17g,\n", tie_tol);
  std::fprintf(f,
               "  \"gates\": {\"min_picked_best_pct\": 95.0, "
               "\"max_regret_pct\": 5.0, \"max_cv_mean_pct\": 15.0, "
               "\"max_cv_max_pct\": 40.0},\n");
  std::fprintf(f,
               "  \"summary\": {\"cells\": %zu, \"exact\": %d, "
               "\"picked_best\": %d, \"picked_best_pct\": %.17g, "
               "\"regret_pct\": %.17g, \"cv_mean_pct\": %.17g, "
               "\"cv_max_pct\": %.17g, \"cv_series\": %d},\n",
               cells.size(), exact, picked_best,
               n > 0.0 ? 100.0 * picked_best / n : 0.0, regret_pct,
               100.0 * cv_mean, 100.0 * cv.worst, cv.series);
  std::fprintf(f, "  \"cells\": [\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const EvalCell& c = cells[i];
    std::fprintf(f,
                 "    {\"grid\": \"%s\", \"device\": \"%s\", \"solver\": "
                 "\"%s\", \"mesh\": %d, \"chosen\": \"%s\", \"oracle\": "
                 "\"%s\", \"chosen_s\": %.17g, \"oracle_s\": %.17g, "
                 "\"regret_pct\": %.17g, \"exact\": %d, \"picked_best\": "
                 "%d}%s\n",
                 c.grid.c_str(), c.device.c_str(), c.solver.c_str(), c.mesh,
                 c.chosen.c_str(), c.oracle.c_str(), c.chosen_s, c.oracle_s,
                 100.0 * c.regret(), c.exact ? 1 : 0, c.picked_best ? 1 : 0,
                 i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const std::string dir = cli.get_or("data-dir", ".");
  const double tie_tol = cli.get_double_or("tie-tol", 0.005);
  const std::string report_path = cli.get_or("report", "BENCH_plan.json");
  const auto at = [&dir](const char* name) { return dir + "/" + name; };

  std::vector<EvalCell> cells;
  CvStats cv;
  try {
    // Per-grid fit: each argmin compares predictions from one protocol.
    tune::SampleSet mesh_samples = ingest_or_die({at("fig11_meshsweep.csv")});
    tune::ModelCatalog mesh_catalog = tune::fit_samples(mesh_samples);
    eval_model_choice(mesh_samples, mesh_catalog, "fig11", tie_tol, cells);
    accumulate_cv(mesh_catalog, cv);

    tune::SampleSet conv_samples =
        ingest_or_die({at("fig8_cpu.csv"), at("fig9_gpu.csv")});
    tune::ModelCatalog conv_catalog = tune::fit_samples(conv_samples);
    eval_model_choice(conv_samples, conv_catalog, "fig8/9", tie_tol, cells);

    tune::SampleSet scaling_samples =
        ingest_or_die({at("fig13_scaling.csv")});
    tune::ModelCatalog scaling_catalog = tune::fit_samples(scaling_samples);
    eval_rank_choice(scaling_samples, scaling_catalog, tie_tol, cells);
    accumulate_cv(scaling_catalog, cv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_plan: %s\n", e.what());
    return 2;
  }

  int exact = 0, picked_best = 0;
  double chosen_sum = 0.0, oracle_sum = 0.0;
  util::Table table(
      {"grid", "device", "solver", "mesh", "chosen", "oracle", "regret"});
  for (const EvalCell& c : cells) {
    if (c.exact) ++exact;
    if (c.picked_best) ++picked_best;
    chosen_sum += c.chosen_s;
    oracle_sum += c.oracle_s;
    table.row({c.grid, c.device, c.solver, util::strf("%d", c.mesh),
               c.chosen, c.oracle,
               util::strf("%s%.2f%%", c.picked_best ? "" : "MISS ",
                          100.0 * c.regret())});
  }
  table.print();

  const double n = static_cast<double>(cells.size());
  const double picked_pct = n > 0.0 ? 100.0 * picked_best / n : 0.0;
  const double regret_pct =
      oracle_sum > 0.0 ? 100.0 * (chosen_sum / oracle_sum - 1.0) : 0.0;
  const double cv_mean_pct =
      cv.series > 0 ? 100.0 * cv.sum / static_cast<double>(cv.series) : 0.0;
  const double cv_max_pct = 100.0 * cv.worst;
  std::printf(
      "\n%zu cell(s): %d exact argmin, %d picked-best (%.1f%%, tie tol "
      "%.2f%%), aggregate regret %.3f%%\n",
      cells.size(), exact, picked_best, picked_pct, 100.0 * tie_tol,
      regret_pct);
  std::printf(
      "held-out (leave-one-out) error over %d multi-point series: mean "
      "%.2f%%, worst %.2f%%\n",
      cv.series, cv_mean_pct, cv_max_pct);

  write_artifact(cells, tie_tol, cv, exact, picked_best, regret_pct,
                 report_path);

  bool ok = true;
  const auto gate = [&ok](bool pass, const char* what) {
    std::printf("gate %-28s %s\n", what, pass ? "pass" : "FAIL");
    ok = ok && pass;
  };
  gate(cells.size() >= 10, "eval cells >= 10");
  gate(picked_pct >= 95.0, "picked-best >= 95%");
  gate(regret_pct <= 5.0, "aggregate regret <= 5%");
  gate(cv_mean_pct <= 15.0, "mean LOO error <= 15%");
  gate(cv_max_pct <= 40.0, "worst LOO error <= 40%");
  return ok ? 0 : 1;
}
