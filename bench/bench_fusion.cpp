// bench_fusion: fused vs unfused kernel pipelines, simulated and measured.
//
// Two legs:
//   1. Simulated: every figure model on the paper's CPU (fig8) and GPU
//      (fig9) devices runs each solver twice through the phantom metering
//      pipeline — once with the classic kernel sequence (use_fused off) and
//      once with the caps()-dispatched fused pipeline — and the per-cell
//      runtime/bandwidth pairs land in fig_fusion.csv plus the
//      machine-readable BENCH_fusion.json (both golden-diffed in CI; only
//      deterministic simulated numbers are written). Exits nonzero if ANY
//      cell's fused simulated runtime is slower than its unfused runtime.
//   2. Measured: real wall-clock CG solves on the reference host kernels at
//      512^2 with a fixed iteration budget, best of three runs per pipeline.
//      Exits nonzero if the fused path is below the 1.2x speedup gate.
//      Wall-clock numbers are machine-dependent and are reported on stdout
//      only, never in the golden-diffed artifacts.
//
// Flags:
//   --smoke      CI fast path: short calibration ladder, 512^2 simulated
//                mesh (CSV/JSON not comparable to the committed goldens).
//   --sim-only   Skip the measured leg (the golden regeneration fixture uses
//                this: golden tests must stay load-independent).
//   --report=FILE  tl-report-1 run report of the first fused cell's metered
//                solves (+ sibling .om OpenMetrics export).

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "core/driver.hpp"
#include "core/reference_kernels.hpp"
#include "ports/registry.hpp"
#include "sim/device.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace {

using namespace tl;
using core::SolverKind;

constexpr std::array<SolverKind, 4> kFusionSolvers = {
    SolverKind::kCg, SolverKind::kCheby, SolverKind::kPpcg,
    SolverKind::kJacobi};

constexpr std::array<sim::DeviceId, 2> kFusionDevices = {
    sim::DeviceId::kCpuSandyBridge, sim::DeviceId::kGpuK20X};

struct FusionCell {
  sim::DeviceId device;
  sim::Model model;
  SolverKind solver;
  bench::SolveResult unfused;
  bench::SolveResult fused;

  double speedup() const { return unfused.seconds / fused.seconds; }
};

std::vector<FusionCell> simulate(const bench::Harness& harness, int mesh) {
  std::vector<FusionCell> cells;
  for (const sim::DeviceId device : kFusionDevices) {
    for (const sim::Model model : ports::figure_models(device)) {
      for (const SolverKind solver : kFusionSolvers) {
        FusionCell cell{device, model, solver, {}, {}};
        cell.unfused = harness.modelled_solve(model, device, solver, mesh, 1,
                                              nullptr, /*use_fused=*/false);
        cell.fused = harness.modelled_solve(model, device, solver, mesh, 1,
                                            nullptr, /*use_fused=*/true);
        cells.push_back(cell);
      }
    }
  }
  return cells;
}

void print_tables(const std::vector<FusionCell>& cells) {
  for (const sim::DeviceId device : kFusionDevices) {
    std::printf("\n-- %s: simulated seconds, unfused -> fused (speedup) --\n",
                std::string(sim::device_spec(device).name).c_str());
    util::Table table({"Model", "CG", "Chebyshev", "PPCG", "Jacobi"});
    for (const sim::Model model : ports::figure_models(device)) {
      std::vector<std::string> row{std::string(sim::model_name(model))};
      for (const SolverKind solver : kFusionSolvers) {
        for (const FusionCell& c : cells) {
          if (c.device == device && c.model == model && c.solver == solver) {
            row.push_back(util::strf("%.1f -> %.1f (%.2fx)", c.unfused.seconds,
                                     c.fused.seconds, c.speedup()));
          }
        }
      }
      table.row(std::move(row));
    }
    table.print();
  }
}

void write_csv(const std::vector<FusionCell>& cells, const std::string& path) {
  util::CsvWriter csv(path, {"device", "model", "solver", "unfused_seconds",
                             "fused_seconds", "speedup", "unfused_gbs",
                             "fused_gbs", "unfused_launches", "fused_launches"});
  for (const FusionCell& c : cells) {
    csv.row({std::string(sim::device_short_name(c.device)),
             std::string(sim::model_id(c.model)),
             std::string(core::solver_name(c.solver)),
             util::strf("%.3f", c.unfused.seconds),
             util::strf("%.3f", c.fused.seconds),
             util::strf("%.4f", c.speedup()),
             util::strf("%.2f", c.unfused.bandwidth_gbs),
             util::strf("%.2f", c.fused.bandwidth_gbs),
             util::strf("%llu",
                        static_cast<unsigned long long>(c.unfused.launches)),
             util::strf("%llu",
                        static_cast<unsigned long long>(c.fused.launches))});
  }
  std::printf("\nCSV written to %s\n", path.c_str());
}

void write_json(const std::vector<FusionCell>& cells, int mesh,
                const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::printf("FAILED to write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"fusion\",\n  \"mesh\": %d,\n", mesh);
  std::fprintf(f, "  \"gates\": {\"sim_fused_never_slower\": true, "
                  "\"measured_cg_min_speedup\": 1.2},\n");
  std::fprintf(f, "  \"cells\": [\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const FusionCell& c = cells[i];
    std::fprintf(
        f,
        "    {\"device\": \"%s\", \"model\": \"%s\", \"solver\": \"%s\", "
        "\"unfused_seconds\": %.3f, \"fused_seconds\": %.3f, "
        "\"speedup\": %.4f, \"unfused_gbs\": %.2f, \"fused_gbs\": %.2f, "
        "\"unfused_launches\": %llu, \"fused_launches\": %llu}%s\n",
        std::string(sim::device_short_name(c.device)).c_str(),
        std::string(sim::model_id(c.model)).c_str(),
        std::string(core::solver_name(c.solver)).c_str(), c.unfused.seconds,
        c.fused.seconds, c.speedup(), c.unfused.bandwidth_gbs,
        c.fused.bandwidth_gbs,
        static_cast<unsigned long long>(c.unfused.launches),
        static_cast<unsigned long long>(c.fused.launches),
        i + 1 == cells.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("JSON written to %s\n", path.c_str());
}

/// Nonzero cell count whose fused simulated runtime regressed.
int check_sim_gate(const std::vector<FusionCell>& cells) {
  int regressions = 0;
  for (const FusionCell& c : cells) {
    if (c.fused.seconds > c.unfused.seconds) {
      std::printf("GATE FAIL: %s/%s/%s fused %.3f s > unfused %.3f s\n",
                  std::string(sim::device_short_name(c.device)).c_str(),
                  std::string(sim::model_id(c.model)).c_str(),
                  std::string(core::solver_name(c.solver)).c_str(),
                  c.fused.seconds, c.unfused.seconds);
      ++regressions;
    }
  }
  return regressions;
}

/// Wall-clock seconds for a real CG solve on the reference host kernels:
/// fixed iteration budget (eps is unreachable), timed around Driver::run.
double measured_cg_seconds(bool use_fused, int mesh, int iters) {
  core::Settings s = core::Settings::default_problem();
  s.nx = s.ny = mesh;
  s.solver = SolverKind::kCg;
  s.end_step = 1;
  s.max_iters = iters;
  s.eps = 1e-300;  // never reached: both pipelines run the full budget
  s.use_fused = use_fused;
  core::Driver driver(
      s, std::make_unique<core::ReferenceKernels>(
             core::Mesh(s.nx, s.ny, s.halo_depth)));
  const auto t0 = std::chrono::steady_clock::now();
  driver.run();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Best-of-3 measured CG wall clock, fused vs unfused. Returns the number of
/// failed gates (0 or 1).
int run_measured_leg() {
  constexpr int kMesh = 512;
  constexpr int kIters = 50;
  constexpr double kMinSpeedup = 1.2;
  double unfused = 1e300, fused = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    unfused = std::min(unfused, measured_cg_seconds(false, kMesh, kIters));
    fused = std::min(fused, measured_cg_seconds(true, kMesh, kIters));
  }
  const double speedup = unfused / fused;
  std::printf("\n-- measured: reference host kernels, CG, %dx%d, %d "
              "iterations, best of 3 --\n", kMesh, kMesh, kIters);
  std::printf("  unfused %.3f s   fused %.3f s   speedup %.2fx "
              "(gate: >= %.1fx)\n", unfused, fused, speedup, kMinSpeedup);
  if (speedup < kMinSpeedup) {
    std::printf("GATE FAIL: measured fused CG speedup %.2fx < %.1fx\n",
                speedup, kMinSpeedup);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bench::BenchOptions opts = bench::parse_bench_options(argc, argv);
  const bool smoke = opts.smoke;
  const bool sim_only = cli.has("sim-only");

  const int mesh = smoke ? bench::kSmokeMesh : bench::Harness::kConvergenceMesh;
  std::printf("== Fusion: fused vs unfused kernel pipelines ==\n"
              "(%dx%d simulated mesh%s; fused pipelines dispatched via "
              "KernelCaps, identical solver logic)\n\n",
              mesh, mesh, smoke ? " — SMOKE MODE" : "");

  bench::Harness harness(smoke ? bench::smoke_ladder() : std::vector<int>{});
  harness.print_calibration();

  const std::vector<FusionCell> cells = simulate(harness, mesh);
  print_tables(cells);
  write_csv(cells, "fig_fusion.csv");
  write_json(cells, mesh, "BENCH_fusion.json");

  if (!opts.report_path.empty()) {
    // Meter the first fusion device's first figure model through the shared
    // report path (fused pipeline — the production configuration).
    const sim::DeviceId device = kFusionDevices.front();
    bench::write_figure_report(harness, ports::figure_models(device).front(),
                               device, mesh, "bench_fusion",
                               opts.report_path);
  }

  int failures = check_sim_gate(cells);
  if (!sim_only) failures += run_measured_leg();

  if (failures != 0) {
    std::printf("\nbench_fusion: %d gate failure(s)\n", failures);
    return 1;
  }
  std::printf("\nbench_fusion: all gates passed (sim cells never slower; "
              "measured CG >= 1.2x)\n");
  return 0;
}
