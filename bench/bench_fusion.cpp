// bench_fusion: fused vs unfused kernel pipelines, simulated and measured.
//
// Two legs:
//   1. Simulated: every figure model on the paper's CPU (fig8) and GPU
//      (fig9) devices runs each solver twice through the phantom metering
//      pipeline — once with the classic kernel sequence (use_fused off) and
//      once with the caps()-dispatched fused pipeline — and the per-cell
//      runtime/bandwidth pairs land in fig_fusion.csv plus the
//      machine-readable BENCH_fusion.json (both golden-diffed in CI; only
//      deterministic simulated numbers are written). Exits nonzero if ANY
//      cell's fused simulated runtime is slower than its unfused runtime.
//   2. Measured: real wall-clock CG solves on the reference host kernels at
//      512^2 with a fixed iteration budget, best of three runs per pipeline.
//      Exits nonzero if the fused path is below the 1.2x speedup gate, or if
//      the fused row kernels forced to AVX2 fail the 1.1x gate over SSE2
//      (skipped, not failed, on hosts without both tables). Wall-clock
//      numbers are machine-dependent: they land on stdout and in the
//      artifact's "measured" section, which --sim-only (the golden
//      regeneration path) omits — the golden-diffed cells record only
//      deterministic simulated numbers and "isa": "phantom".
//
// Flags:
//   --smoke      CI fast path: short calibration ladder, 512^2 simulated
//                mesh (CSV/JSON not comparable to the committed goldens).
//   --sim-only   Skip the measured leg (the golden regeneration fixture uses
//                this: golden tests must stay load-independent).
//   --report=FILE  tl-report-1 run report of the first fused cell's metered
//                solves (+ sibling .om OpenMetrics export).

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "core/driver.hpp"
#include "core/isa.hpp"
#include "core/reference_kernels.hpp"
#include "ports/registry.hpp"
#include "sim/device.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace {

using namespace tl;
using core::SolverKind;

constexpr std::array<SolverKind, 4> kFusionSolvers = {
    SolverKind::kCg, SolverKind::kCheby, SolverKind::kPpcg,
    SolverKind::kJacobi};

constexpr std::array<sim::DeviceId, 2> kFusionDevices = {
    sim::DeviceId::kCpuSandyBridge, sim::DeviceId::kGpuK20X};

struct FusionCell {
  sim::DeviceId device;
  sim::Model model;
  SolverKind solver;
  bench::SolveResult unfused;
  bench::SolveResult fused;

  double speedup() const { return unfused.seconds / fused.seconds; }
};

std::vector<FusionCell> simulate(const bench::Harness& harness, int mesh) {
  std::vector<FusionCell> cells;
  for (const sim::DeviceId device : kFusionDevices) {
    for (const sim::Model model : ports::figure_models(device)) {
      for (const SolverKind solver : kFusionSolvers) {
        FusionCell cell{device, model, solver, {}, {}};
        cell.unfused = harness.modelled_solve(model, device, solver, mesh, 1,
                                              nullptr, /*use_fused=*/false);
        cell.fused = harness.modelled_solve(model, device, solver, mesh, 1,
                                            nullptr, /*use_fused=*/true);
        cells.push_back(cell);
      }
    }
  }
  return cells;
}

void print_tables(const std::vector<FusionCell>& cells) {
  for (const sim::DeviceId device : kFusionDevices) {
    std::printf("\n-- %s: simulated seconds, unfused -> fused (speedup) --\n",
                std::string(sim::device_spec(device).name).c_str());
    util::Table table({"Model", "CG", "Chebyshev", "PPCG", "Jacobi"});
    for (const sim::Model model : ports::figure_models(device)) {
      std::vector<std::string> row{std::string(sim::model_name(model))};
      for (const SolverKind solver : kFusionSolvers) {
        for (const FusionCell& c : cells) {
          if (c.device == device && c.model == model && c.solver == solver) {
            row.push_back(util::strf("%.1f -> %.1f (%.2fx)", c.unfused.seconds,
                                     c.fused.seconds, c.speedup()));
          }
        }
      }
      table.row(std::move(row));
    }
    table.print();
  }
}

/// Wall-clock results of the measured legs (stdout + the "measured" JSON
/// section; never golden-diffed — the golden fixture passes --sim-only).
struct MeasuredLeg {
  double unfused_s = 0.0;
  double fused_s = 0.0;
  double speedup() const { return unfused_s / fused_s; }
};

struct IsaLeg {
  // Full 512^2 fused-CG solves (informational: at this working set both ISA
  // paths saturate the same memory bandwidth, so the ratio hugs 1.0x).
  double solve_sse2_s = 0.0;
  double solve_avx2_s = 0.0;
  // The gated quantity: one fused-CG iteration's row kernels (w = A p dots +
  // the u/r/p update) at 512^2 row width on a cache-resident strip, where
  // vector width is observable rather than hidden behind the bandwidth wall.
  double row_sse2_s = 0.0;
  double row_avx2_s = 0.0;
  double solve_speedup() const { return solve_sse2_s / solve_avx2_s; }
  double row_speedup() const { return row_sse2_s / row_avx2_s; }
};

void write_csv(const std::vector<FusionCell>& cells, const std::string& isa,
               const std::string& path) {
  util::CsvWriter csv(path, {"device", "model", "solver", "unfused_seconds",
                             "fused_seconds", "speedup", "unfused_gbs",
                             "fused_gbs", "unfused_launches", "fused_launches",
                             "isa"});
  for (const FusionCell& c : cells) {
    csv.row({std::string(sim::device_short_name(c.device)),
             std::string(sim::model_id(c.model)),
             std::string(core::solver_name(c.solver)),
             util::strf("%.3f", c.unfused.seconds),
             util::strf("%.3f", c.fused.seconds),
             util::strf("%.4f", c.speedup()),
             util::strf("%.2f", c.unfused.bandwidth_gbs),
             util::strf("%.2f", c.fused.bandwidth_gbs),
             util::strf("%llu",
                        static_cast<unsigned long long>(c.unfused.launches)),
             util::strf("%llu",
                        static_cast<unsigned long long>(c.fused.launches)),
             isa});
  }
  std::printf("\nCSV written to %s\n", path.c_str());
}

void write_json(const std::vector<FusionCell>& cells, int mesh,
                const std::string& isa,
                const std::optional<MeasuredLeg>& measured,
                const std::optional<IsaLeg>& isa_leg,
                const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::printf("FAILED to write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"fusion\",\n  \"mesh\": %d,\n", mesh);
  std::fprintf(f, "  \"isa\": \"%s\",\n", isa.c_str());
  std::fprintf(f, "  \"gates\": {\"sim_fused_never_slower\": true, "
                  "\"measured_cg_min_speedup\": 1.2, "
                  "\"measured_avx2_min_speedup\": 1.1},\n");
  if (measured) {
    // Wall-clock (machine-dependent): present only when the measured legs
    // ran, so the --sim-only golden artifact never carries this section.
    std::fprintf(f,
                 "  \"measured\": {\"unfused_seconds\": %.6f, "
                 "\"fused_seconds\": %.6f, \"fused_speedup\": %.4f",
                 measured->unfused_s, measured->fused_s, measured->speedup());
    if (isa_leg) {
      std::fprintf(f,
                   ", \"solve_sse2_seconds\": %.6f, "
                   "\"solve_avx2_seconds\": %.6f, "
                   "\"solve_avx2_speedup\": %.4f, "
                   "\"row_sse2_seconds\": %.6f, \"row_avx2_seconds\": %.6f, "
                   "\"row_avx2_speedup\": %.4f",
                   isa_leg->solve_sse2_s, isa_leg->solve_avx2_s,
                   isa_leg->solve_speedup(), isa_leg->row_sse2_s,
                   isa_leg->row_avx2_s, isa_leg->row_speedup());
    }
    std::fprintf(f, "},\n");
  }
  std::fprintf(f, "  \"cells\": [\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const FusionCell& c = cells[i];
    std::fprintf(
        f,
        "    {\"device\": \"%s\", \"model\": \"%s\", \"solver\": \"%s\", "
        "\"unfused_seconds\": %.3f, \"fused_seconds\": %.3f, "
        "\"speedup\": %.4f, \"unfused_gbs\": %.2f, \"fused_gbs\": %.2f, "
        "\"unfused_launches\": %llu, \"fused_launches\": %llu}%s\n",
        std::string(sim::device_short_name(c.device)).c_str(),
        std::string(sim::model_id(c.model)).c_str(),
        std::string(core::solver_name(c.solver)).c_str(), c.unfused.seconds,
        c.fused.seconds, c.speedup(), c.unfused.bandwidth_gbs,
        c.fused.bandwidth_gbs,
        static_cast<unsigned long long>(c.unfused.launches),
        static_cast<unsigned long long>(c.fused.launches),
        i + 1 == cells.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("JSON written to %s\n", path.c_str());
}

/// Nonzero cell count whose fused simulated runtime regressed.
int check_sim_gate(const std::vector<FusionCell>& cells) {
  int regressions = 0;
  for (const FusionCell& c : cells) {
    if (c.fused.seconds > c.unfused.seconds) {
      std::printf("GATE FAIL: %s/%s/%s fused %.3f s > unfused %.3f s\n",
                  std::string(sim::device_short_name(c.device)).c_str(),
                  std::string(sim::model_id(c.model)).c_str(),
                  std::string(core::solver_name(c.solver)).c_str(),
                  c.fused.seconds, c.unfused.seconds);
      ++regressions;
    }
  }
  return regressions;
}

/// Wall-clock seconds for a real CG solve on the reference host kernels:
/// fixed iteration budget (eps is unreachable), timed around Driver::run.
double measured_cg_seconds(bool use_fused, int mesh, int iters) {
  core::Settings s = core::Settings::default_problem();
  s.nx = s.ny = mesh;
  s.solver = SolverKind::kCg;
  s.end_step = 1;
  s.max_iters = iters;
  s.eps = 1e-300;  // never reached: both pipelines run the full budget
  s.use_fused = use_fused;
  core::Driver driver(
      s, std::make_unique<core::ReferenceKernels>(
             core::Mesh(s.nx, s.ny, s.halo_depth)));
  const auto t0 = std::chrono::steady_clock::now();
  driver.run();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Best-of-3 measured CG wall clock, fused vs unfused. Returns the number of
/// failed gates (0 or 1) and fills `out` with the best timings.
int run_measured_leg(std::optional<MeasuredLeg>& out) {
  constexpr int kMesh = 512;
  constexpr int kIters = 50;
  constexpr double kMinSpeedup = 1.2;
  MeasuredLeg leg;
  leg.unfused_s = leg.fused_s = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    leg.unfused_s = std::min(leg.unfused_s,
                             measured_cg_seconds(false, kMesh, kIters));
    leg.fused_s = std::min(leg.fused_s,
                           measured_cg_seconds(true, kMesh, kIters));
  }
  out = leg;
  std::printf("\n-- measured: reference host kernels, CG, %dx%d, %d "
              "iterations, best of 3 --\n", kMesh, kMesh, kIters);
  std::printf("  unfused %.3f s   fused %.3f s   speedup %.2fx "
              "(gate: >= %.1fx)\n", leg.unfused_s, leg.fused_s, leg.speedup(),
              kMinSpeedup);
  if (leg.speedup() < kMinSpeedup) {
    std::printf("GATE FAIL: measured fused CG speedup %.2fx < %.1fx\n",
                leg.speedup(), kMinSpeedup);
    return 1;
  }
  return 0;
}

/// Best-of-3 wall clock of one fused-CG iteration's row kernels (w_row +
/// urp_row) under the given ISA table, 512-point rows on a strip small
/// enough to stay cache-resident so the measurement sees the vector units
/// rather than the memory wall.
double measured_cg_rows_seconds(const core::isa::RowKernelTable* table) {
  constexpr std::size_t kWidth = 512 + 4;   // 512^2 interior + halo columns
  constexpr std::size_t kRows = 64;  // ~1.9 MB hot set: cache-resident
  constexpr int kSweeps = 300;
  const std::size_t n = kWidth * (kRows + 2);
  static std::vector<double> p(n), kx(n), ky(n), w(n), u(n), r(n);
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;
  auto fill = [&seed](std::vector<double>& v) {
    for (double& x : v) {
      seed ^= seed << 13; seed ^= seed >> 7; seed ^= seed << 17;
      x = 0.5 + static_cast<double>(seed % 1000) * 1e-3;
    }
  };
  fill(p); fill(kx); fill(ky); fill(w); fill(u); fill(r);
  double sink = 0.0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int it = 0; it < kSweeps; ++it) {
    double pw = 0.0;
    for (std::size_t j = 1; j + 1 < kRows + 2; ++j) {
      const std::size_t b = j * kWidth + 2, e = j * kWidth + kWidth - 2;
      pw += table->w_row(p.data(), kx.data(), ky.data(), w.data(), b, e,
                         kWidth).pw;
    }
    const double alpha = 0.25 + 1e-6 * pw;
    for (std::size_t j = 1; j + 1 < kRows + 2; ++j) {
      const std::size_t b = j * kWidth + 2, e = j * kWidth + kWidth - 2;
      sink += table->urp_row(u.data(), r.data(), p.data(), w.data(), b, e,
                             alpha, 0.5);
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  // Keep the computation observable (the value itself is irrelevant).
  if (sink == 42.0) std::printf("%f\n", sink);
  return std::chrono::duration<double>(t1 - t0).count();
}

/// SSE2-vs-AVX2 measured leg. Skipped (not failed) when this host lacks
/// either table. Two measurements: the full 512^2 fused-CG solve (reported,
/// not gated — at that working set both paths run at memory bandwidth and
/// the ratio is ~1.0x by physics, which is the paper's central point), and
/// the CG row kernels on a cache-resident 512-wide strip, where AVX2 must
/// clear the 1.1x gate over SSE2. Restores auto dispatch before returning.
int run_isa_leg(std::optional<IsaLeg>& out) {
  constexpr int kMesh = 512;
  constexpr int kIters = 50;
  constexpr double kMinSpeedup = 1.1;
  using core::isa::Isa;
  const core::isa::RowKernelTable* sse2 = core::isa::row_table(Isa::kSse2);
  const core::isa::RowKernelTable* avx2 = core::isa::row_table(Isa::kAvx2);
  if (sse2 == nullptr || avx2 == nullptr) {
    std::printf("\n-- measured ISA leg: SKIPPED (sse2/avx2 row kernels "
                "unavailable on this host) --\n");
    return 0;
  }
  IsaLeg leg;
  leg.solve_sse2_s = leg.solve_avx2_s = 1e300;
  leg.row_sse2_s = leg.row_avx2_s = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    core::isa::force_isa(Isa::kSse2);
    leg.solve_sse2_s = std::min(leg.solve_sse2_s,
                                measured_cg_seconds(true, kMesh, kIters));
    core::isa::force_isa(Isa::kAvx2);
    leg.solve_avx2_s = std::min(leg.solve_avx2_s,
                                measured_cg_seconds(true, kMesh, kIters));
    leg.row_sse2_s = std::min(leg.row_sse2_s, measured_cg_rows_seconds(sse2));
    leg.row_avx2_s = std::min(leg.row_avx2_s, measured_cg_rows_seconds(avx2));
  }
  core::isa::force_isa(std::nullopt);
  out = leg;
  std::printf("\n-- measured: fused CG, sse2 vs avx2 row kernels, best of 3 "
              "--\n");
  std::printf("  full %dx%d solve, %d iters: sse2 %.3f s   avx2 %.3f s   "
              "%.2fx (bandwidth-bound; informational)\n", kMesh, kMesh,
              kIters, leg.solve_sse2_s, leg.solve_avx2_s, leg.solve_speedup());
  std::printf("  cache-resident row kernels: sse2 %.3f s   avx2 %.3f s   "
              "%.2fx (gate: >= %.1fx)\n", leg.row_sse2_s, leg.row_avx2_s,
              leg.row_speedup(), kMinSpeedup);
  if (leg.row_speedup() < kMinSpeedup) {
    std::printf("GATE FAIL: measured avx2-over-sse2 row-kernel speedup "
                "%.2fx < %.1fx\n", leg.row_speedup(), kMinSpeedup);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bench::BenchOptions opts = bench::parse_bench_options(argc, argv);
  const bool smoke = opts.smoke;
  const bool sim_only = cli.has("sim-only");

  const int mesh = smoke ? bench::kSmokeMesh : bench::Harness::kConvergenceMesh;
  std::printf("== Fusion: fused vs unfused kernel pipelines ==\n"
              "(%dx%d simulated mesh%s; fused pipelines dispatched via "
              "KernelCaps, identical solver logic)\n\n",
              mesh, mesh, smoke ? " — SMOKE MODE" : "");

  bench::Harness harness(smoke ? bench::smoke_ladder() : std::vector<int>{});
  harness.print_calibration();

  const std::vector<FusionCell> cells = simulate(harness, mesh);
  print_tables(cells);

  // Measured legs run before the artifact writes so their wall-clock numbers
  // (and the ISA they dispatched) can be recorded. Under --sim-only no row
  // kernel ever executes — the cells are phantom-metered — so the artifact
  // records "phantom" and stays machine-independent for the golden diff.
  int failures = check_sim_gate(cells);
  std::optional<MeasuredLeg> measured;
  std::optional<IsaLeg> isa_leg;
  if (!sim_only) {
    failures += run_measured_leg(measured);
    failures += run_isa_leg(isa_leg);
  }
  const std::string isa =
      sim_only ? "phantom"
               : std::string(core::isa::isa_name(core::isa::active_isa()));

  write_csv(cells, isa, "fig_fusion.csv");
  write_json(cells, mesh, isa, measured, isa_leg, "BENCH_fusion.json");

  if (!opts.report_path.empty()) {
    // Meter the first fusion device's first figure model through the shared
    // report path (fused pipeline — the production configuration).
    const sim::DeviceId device = kFusionDevices.front();
    bench::write_figure_report(harness, ports::figure_models(device).front(),
                               device, mesh, "bench_fusion",
                               opts.report_path);
  }

  if (failures != 0) {
    std::printf("\nbench_fusion: %d gate failure(s)\n", failures);
    return 1;
  }
  std::printf("\nbench_fusion: all gates passed (sim cells never slower; "
              "measured CG >= 1.2x; avx2 >= 1.1x over sse2 where available)\n");
  return 0;
}
