// Figure 11 reproduction: runtime as problem size increases in even steps of
// ~1.5e5 cells up to 1225^2, for every model/device series in the paper's
// plot (lower is better). Paper shape: OpenMP 4.0, OpenACC, Kokkos-KNC and
// OpenCL-KNC start with high intercepts (per-launch overheads) that amortise
// with size; CPU models lead until ~9e5 cells then bend (LLC saturation);
// GPU series stay near-linear.
//
// Observability flags (strictly additive; default output is unchanged):
//   --smoke         CI fast path: short calibration ladder, first three
//                   meshes only (CSV not golden-comparable)
//   --report=FILE   tl-report-1 run report + sibling .om OpenMetrics export
//                   (first CPU figure model at the sweep's largest mesh)

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "ports/registry.hpp"
#include "util/csv.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace tl;
  const bench::BenchOptions opts = bench::parse_bench_options(argc, argv);
  bench::Harness harness(opts.smoke ? bench::smoke_ladder()
                                    : std::vector<int>{});

  std::printf("== Figure 11: runtime vs mesh size (even cell-count steps) ==%s\n"
              "(CG solver, simulated seconds, lower is better)\n\n",
              opts.smoke ? " — SMOKE MODE" : "");
  harness.print_calibration();

  struct Series {
    sim::Model model;
    sim::DeviceId device;
  };
  std::vector<Series> series;
  for (const sim::DeviceId d : sim::kAllDevices) {
    for (const sim::Model m : ports::figure_models(d)) {
      series.push_back({m, d});
    }
  }

  std::vector<int> meshes = bench::Harness::fig11_meshes();
  if (opts.smoke && meshes.size() > 3) meshes.resize(3);
  util::CsvWriter csv("fig11_meshsweep.csv",
                      {"model", "device", "nx", "cells", "seconds"});

  std::vector<std::string> header{"Series \\ cells"};
  for (const int nx : meshes) {
    header.push_back(util::human_count(static_cast<double>(nx) * nx));
  }
  util::Table table(header);

  for (const auto& sr : series) {
    std::vector<std::string> row{std::string(sim::model_name(sr.model)) + " " +
                                 std::string(sim::device_short_name(sr.device))};
    for (const int nx : meshes) {
      const auto r = harness.modelled_solve(sr.model, sr.device,
                                            core::SolverKind::kCg, nx);
      row.push_back(util::strf("%.2f", r.seconds));
      csv.row({std::string(sim::model_id(sr.model)),
               std::string(sim::device_short_name(sr.device)),
               util::strf("%d", nx),
               util::strf("%lld", static_cast<long long>(nx) * nx),
               util::strf("%.4f", r.seconds)});
    }
    table.row(std::move(row));
  }
  table.print();
  std::printf("\nCSV written to fig11_meshsweep.csv\n");

  if (!opts.report_path.empty() && !series.empty()) {
    bench::write_figure_report(harness, series.front().model,
                               series.front().device, meshes.back(),
                               "bench_fig11_meshsweep", opts.report_path);
  }
  return 0;
}
