// Figure 12 reproduction: percentage of STREAM bandwidth achieved by each
// model, averaged over the three solvers, per device (higher is better).
// Paper shape: the device-tuned ports (OpenMP 3.0, CUDA) utilise bandwidth
// best; most portable options land within 10-20% of them; Kokkos is within
// 10% on CPU and GPU; the KNC numbers are poor with HP recovering part.

#include <cstdio>
#include <vector>

#include "bench/harness.hpp"
#include "ports/registry.hpp"
#include "sim/device.hpp"
#include "util/csv.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main() {
  using namespace tl;
  bench::Harness harness;

  std::printf("== Figure 12: %% of STREAM bandwidth achieved, averaged over "
              "all solvers ==\n(4096x4096 mesh, higher is better)\n\n");
  harness.print_calibration();

  util::CsvWriter csv("fig12_bandwidth.csv",
                      {"device", "model", "percent_of_stream"});
  for (const sim::DeviceId d : sim::kAllDevices) {
    const auto& spec = sim::device_spec(d);
    std::printf("-- %s (STREAM %.1f GB/s) --\n", std::string(spec.name).c_str(),
                spec.stream_bw_gbs);
    util::Table table({"Model", "% of STREAM"});
    for (const sim::Model m : ports::figure_models(d)) {
      double sum = 0.0;
      for (const core::SolverKind solver : core::kAllSolvers) {
        const auto r = harness.modelled_solve(m, d, solver,
                                              bench::Harness::kConvergenceMesh);
        sum += r.bandwidth_gbs;
      }
      const double pct = 100.0 * (sum / 3.0) / spec.stream_bw_gbs;
      table.row({std::string(sim::model_name(m)), util::strf("%.1f%%", pct)});
      csv.row({std::string(sim::device_short_name(d)),
               std::string(sim::model_id(m)), util::strf("%.2f", pct)});
    }
    table.print();
    std::printf("\n");
  }
  std::printf("CSV written to fig12_bandwidth.csv\n");
  return 0;
}
