// Micro/ablation benchmarks (google-benchmark) for the design choices called
// out in DESIGN.md:
//   - per-region offload overhead vs a fused region (OpenMP 4.0 section 3.1)
//   - flat + loop-body halo branch vs hierarchical re-encoding (Kokkos/KNC)
//   - direct range traversal vs indirection lists (RAJA vectorisation loss)
//   - static vs work-stealing scheduling variance (OpenCL CPU)
// plus real host-execution microbenchmarks of the model layers themselves.
//
// Counters: "sim_ms" reports simulated milliseconds per iteration; wall time
// measures the emulation layers' real host cost.

#include <benchmark/benchmark.h>

#include "core/kernel_catalog.hpp"
#include "core/model_traits.hpp"
#include "models/kokkoslike/kokkos.hpp"
#include "models/launcher.hpp"
#include "models/rajalike/raja.hpp"
#include "sim/perf_model.hpp"

using namespace tl;

namespace {
constexpr std::size_t kCells = 2048 * 2048;

sim::LaunchInfo cg_w_info(sim::Model m) {
  return core::make_launch_info(m, core::KernelId::kCgCalcW, kCells);
}
}  // namespace

// ---------------------------------------------------------------------------
// Ablation: per-launch offload overhead vs fused region (OpenMP 4.0 / KNC)
// ---------------------------------------------------------------------------

static void BM_OffloadPerRegionOverhead(benchmark::State& state) {
  const int regions = static_cast<int>(state.range(0));
  sim::PerfModel pm(sim::Model::kOmp4, sim::DeviceId::kMicKnc);
  auto info = cg_w_info(sim::Model::kOmp4);
  info.bytes_read /= static_cast<std::size_t>(regions);
  info.bytes_written /= static_cast<std::size_t>(regions);
  double total_ns = 0.0;
  for (auto _ : state) {
    double ns = 0.0;
    for (int r = 0; r < regions; ++r) ns += pm.launch_ns(info);
    benchmark::DoNotOptimize(ns);
    total_ns = ns;
  }
  // One fused region moving the same bytes:
  auto fused = cg_w_info(sim::Model::kOmp4);
  const double fused_ns = pm.launch_ns(fused);
  state.counters["sim_ms"] = total_ns * 1e-6;
  state.counters["fused_sim_ms"] = fused_ns * 1e-6;
  state.counters["overhead_ratio"] = total_ns / fused_ns;
}
BENCHMARK(BM_OffloadPerRegionOverhead)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

// ---------------------------------------------------------------------------
// Ablation: loop-body halo branch vs hierarchical re-encoding, per device
// ---------------------------------------------------------------------------

static void BM_HaloBranchVsHierarchical(benchmark::State& state) {
  const auto device = static_cast<sim::DeviceId>(state.range(0));
  sim::PerfModel flat(sim::Model::kKokkos, device);
  sim::PerfModel hp(sim::Model::kKokkosHp, device);
  const auto flat_info = cg_w_info(sim::Model::kKokkos);
  const auto hp_info = cg_w_info(sim::Model::kKokkosHp);
  double ratio = 0.0;
  for (auto _ : state) {
    ratio = flat.launch_ns(flat_info) / hp.launch_ns(hp_info);
    benchmark::DoNotOptimize(ratio);
  }
  state.counters["flat_over_hp"] = ratio;
}
BENCHMARK(BM_HaloBranchVsHierarchical)
    ->Arg(static_cast<int>(sim::DeviceId::kCpuSandyBridge))
    ->Arg(static_cast<int>(sim::DeviceId::kGpuK20X))
    ->Arg(static_cast<int>(sim::DeviceId::kMicKnc));

// ---------------------------------------------------------------------------
// Ablation: indirection lists vs direct ranges (RAJA), Chebyshev kernel
// ---------------------------------------------------------------------------

static void BM_IndirectionVsRange(benchmark::State& state) {
  const auto device = static_cast<sim::DeviceId>(state.range(0));
  sim::PerfModel pm(sim::Model::kRaja, device);
  auto direct = core::base_launch_info(core::KernelId::kChebyIterate, kCells);
  auto indirect = direct;
  indirect.traits.indirection = true;
  double ratio = 0.0;
  for (auto _ : state) {
    ratio = pm.launch_ns(indirect) / pm.launch_ns(direct);
    benchmark::DoNotOptimize(ratio);
  }
  state.counters["indirect_over_direct"] = ratio;
}
BENCHMARK(BM_IndirectionVsRange)
    ->Arg(static_cast<int>(sim::DeviceId::kCpuSandyBridge))
    ->Arg(static_cast<int>(sim::DeviceId::kMicKnc));

// ---------------------------------------------------------------------------
// Ablation: scheduler variance (static vs work stealing)
// ---------------------------------------------------------------------------

static void BM_SchedulerVariance(benchmark::State& state) {
  sim::PerfModel ocl(sim::Model::kOpenCl, sim::DeviceId::kCpuSandyBridge);
  const auto info = cg_w_info(sim::Model::kOpenCl);
  double lo = 1e300, hi = 0.0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    ocl.begin_run(seed++);
    const double ns = ocl.launch_ns(info);
    lo = std::min(lo, ns);
    hi = std::max(hi, ns);
    benchmark::DoNotOptimize(ns);
  }
  state.counters["max_over_min"] = hi / lo;
}
BENCHMARK(BM_SchedulerVariance)->Iterations(50);

// ---------------------------------------------------------------------------
// Real host cost of the emulation layers (wall time)
// ---------------------------------------------------------------------------

static void BM_KokkosLikeParallelFor(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  kokkoslike::Context ctx(sim::Model::kKokkos, sim::DeviceId::kCpuSandyBridge);
  kokkoslike::View a("a", n, n), b("b", n, n);
  const auto info =
      core::make_launch_info(sim::Model::kKokkos, core::KernelId::kCgCalcP,
                             static_cast<std::size_t>(n) * n);
  for (auto _ : state) {
    ctx.parallel_for(info, {0, static_cast<std::int64_t>(n) * n},
                     [=](std::int64_t i) {
                       b[static_cast<std::size_t>(i)] =
                           2.0 * a[static_cast<std::size_t>(i)] + 1.0;
                     });
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_KokkosLikeParallelFor)->Arg(128)->Arg(512);

static void BM_RajaLikeForallList(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  rajalike::Context ctx(sim::Model::kRaja, sim::DeviceId::kCpuSandyBridge);
  const auto iset = rajalike::make_interior_index_set(n, n, 2);
  std::vector<double> a(static_cast<std::size_t>(n + 4) * (n + 4), 1.0);
  const auto info = core::make_launch_info(
      sim::Model::kRaja, core::KernelId::kCgCalcP,
      static_cast<std::size_t>(n) * n);
  for (auto _ : state) {
    ctx.forall<rajalike::omp_parallel_for_exec>(
        info, iset, [&](std::int64_t i) {
          a[static_cast<std::size_t>(i)] *= 1.0000001;
        });
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_RajaLikeForallList)->Arg(128)->Arg(512);

BENCHMARK_MAIN();
