// tl_plan: performance-model fitting, prediction, and config planning.
//
//   tl_plan fit INPUT... --out=FILE [--min-points=N] [--check=GOLDEN]
//       Ingest measurement files (figure CSVs, tl-report-1 profiles,
//       BENCH_*.json artifacts — auto-detected), fit the hypothesis lattice
//       per series, and write the tl-models-1 catalog. With --check, compare
//       the freshly fitted catalog against the committed golden catalog
//       (series sets and selected hypotheses exact, coefficients within
//       --rel-tol) and exit 1 on drift.
//
//   tl_plan predict --models=FILE --model=M --device=D --nx=N
//           [--solver=S] [--ny=N] [--ranks=R] [--fused=0|1] [--overlap=0|1]
//           [--pipelined]
//       Print the composed runtime estimate for one configuration point.
//
//   tl_plan plan --models=FILE --nx=N [--ny=N] [--solver=S] [--model=M]
//           [--device=D] [--ranks=R1,R2,...] [--fused=0|1] [--overlap=0|1]
//           [--pipelined] [--top=N]
//       Enumerate the feasible config space (unpinned fields free), score
//       with the predictor, and print the ranked table.
//
// Exits 0 on success, 1 on check drift, 2 on usage/parse errors.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "tune/ingest.hpp"
#include "tune/planner.hpp"
#include "util/cli.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

using namespace tl;

namespace {

int usage(const char* program) {
  std::fprintf(stderr,
               "usage: %s fit INPUT... --out=FILE [--min-points=N] "
               "[--check=GOLDEN] [--rel-tol=T]\n"
               "       %s predict --models=FILE --model=M --device=D --nx=N "
               "[--solver=S] [--ranks=R] [--fused=0|1] [--overlap=0|1] "
               "[--pipelined]\n"
               "       %s plan --models=FILE --nx=N [--solver=S] [--model=M] "
               "[--device=D] [--ranks=R1,R2,...] [--top=N]\n",
               program, program, program);
  return 2;
}

std::string formula(const tune::ScalingFit& fit) {
  if (fit.is_constant()) return util::strf("%.4g", fit.c0);
  std::string term = util::strf("%.4g * x^%g", fit.c1, fit.a);
  if (fit.b != 0) term += util::strf(" * log2(x)^%d", fit.b);
  return util::strf("%.4g + ", fit.c0) + term;
}

void print_catalog(const tune::ModelCatalog& catalog) {
  util::Table table({"series", "fit", "R^2", "cv err", "cv max", "points"});
  for (const auto& [key, s] : catalog.series()) {
    table.row({key, formula(s.fit), util::strf("%.4f", s.quality.r2),
               util::strf("%.2f%%", s.quality.cv_rel_err * 100.0),
               util::strf("%.2f%%", s.quality.cv_max_rel_err * 100.0),
               util::strf("%d", s.quality.points)});
  }
  table.print();
}

/// Structural catalog comparison: series sets and selected hypotheses must
/// match exactly (a hypothesis flip is a behaviour change); coefficients and
/// quality numbers within `rel_tol`.
int compare_catalogs(const tune::ModelCatalog& current,
                     const tune::ModelCatalog& golden, double rel_tol) {
  int drift = 0;
  const auto complain = [&drift](const std::string& what) {
    std::fprintf(stderr, "tl_plan: DRIFT: %s\n", what.c_str());
    ++drift;
  };
  const auto close = [rel_tol](double a, double b) {
    const double scale = std::max(std::abs(a), std::abs(b));
    return scale == 0.0 || std::abs(a - b) <= rel_tol * scale;
  };
  for (const auto& [key, gold] : golden.series()) {
    const tune::FittedSeries* cur = current.find(gold.key);
    if (cur == nullptr) {
      complain("series missing from fitted catalog: " + key);
      continue;
    }
    if (cur->fit.a != gold.fit.a || cur->fit.b != gold.fit.b ||
        cur->fit.is_constant() != gold.fit.is_constant()) {
      complain(util::strf("%s: hypothesis flipped (x^%g log^%d -> x^%g "
                          "log^%d)",
                          key.c_str(), gold.fit.a, gold.fit.b, cur->fit.a,
                          cur->fit.b));
      continue;
    }
    if (!close(cur->fit.c0, gold.fit.c0) || !close(cur->fit.c1, gold.fit.c1)) {
      complain(util::strf("%s: coefficients moved beyond rel tol %g",
                          key.c_str(), rel_tol));
    }
    if (cur->quality.points != gold.quality.points) {
      complain(util::strf("%s: point count %d -> %d", key.c_str(),
                          gold.quality.points, cur->quality.points));
    }
  }
  for (const auto& [key, cur] : current.series()) {
    (void)cur;
    if (golden.find(cur.key) == nullptr) {
      complain("series absent from golden catalog: " + key);
    }
  }
  return drift;
}

int run_fit(const util::Cli& cli, const std::vector<std::string>& inputs) {
  if (inputs.empty()) return usage(cli.program().c_str());
  const std::string out_path = cli.get_or("out", "models.json");
  const int min_points =
      static_cast<int>(cli.get_long_or("min-points", 1));

  tune::SampleSet samples;
  std::size_t total_points = 0;
  for (const std::string& input : inputs) {
    const std::size_t n = tune::ingest_file(samples, input);
    std::printf("tl_plan: %s: %zu sample(s)\n", input.c_str(), n);
    total_points += n;
  }
  tune::ModelCatalog catalog = tune::fit_samples(samples, min_points);
  for (const std::string& note : samples.notes) {
    std::printf("tl_plan: note: %s\n", note.c_str());
  }
  std::printf("tl_plan: fitted %zu series from %zu sample(s)\n",
              catalog.size(), total_points);
  print_catalog(catalog);
  catalog.save(out_path);
  std::printf("tl_plan: wrote %s\n", out_path.c_str());

  const std::string golden_path = cli.get_or("check", "");
  if (!golden_path.empty() && golden_path != "true") {
    const tune::ModelCatalog golden = tune::ModelCatalog::load(golden_path);
    const double rel_tol = cli.get_double_or("rel-tol", 1e-6);
    const int drift = compare_catalogs(catalog, golden, rel_tol);
    if (drift > 0) {
      std::fprintf(stderr, "tl_plan: %d drift(s) vs %s: FAIL\n", drift,
                   golden_path.c_str());
      return 1;
    }
    std::printf("tl_plan: catalog matches %s (rel tol %g)\n",
                golden_path.c_str(), rel_tol);
  }
  return 0;
}

tune::PredictQuery predict_query_from(const util::Cli& cli) {
  tune::PredictQuery q;
  q.model = cli.get_or("model", "");
  q.device = cli.get_or("device", "");
  q.solver = cli.get_or("solver", "CG");
  q.nx = static_cast<int>(cli.get_long_or("nx", 0));
  q.ny = static_cast<int>(cli.get_long_or("ny", 0));
  q.ranks = static_cast<int>(cli.get_long_or("ranks", 1));
  q.use_fused = cli.get_long_or("fused", 1) != 0;
  q.overlap_comm = cli.get_long_or("overlap", 1) != 0;
  q.use_pipelined = cli.has("pipelined");
  return q;
}

int run_predict(const util::Cli& cli) {
  const std::string models_path = cli.get_or("models", "");
  const tune::PredictQuery q = predict_query_from(cli);
  if (models_path.empty() || q.model.empty() || q.device.empty() ||
      q.nx <= 0) {
    return usage(cli.program().c_str());
  }
  const tune::ModelCatalog catalog = tune::ModelCatalog::load(models_path);
  const tune::Prediction p = tune::predict(catalog, q);
  if (!p.ok) {
    std::fprintf(stderr, "tl_plan: no estimate: %s\n", p.error.c_str());
    return 2;
  }
  std::printf("%s/%s/%s %dx%d ranks=%d fused=%d overlap=%d pipelined=%d\n",
              q.model.c_str(), q.device.c_str(), q.solver.c_str(), q.nx,
              q.ny > 0 ? q.ny : q.nx, q.ranks, q.use_fused ? 1 : 0,
              q.overlap_comm ? 1 : 0, q.use_pipelined ? 1 : 0);
  std::printf("predicted: %.6f s (compute %.6f s + comm %.6f s)%s\n",
              p.seconds, p.compute_s, p.comm_s,
              p.extrapolated ? "  [extrapolated]" : "");
  std::printf("basis: %s\n", p.basis.c_str());
  return 0;
}

int run_plan(const util::Cli& cli) {
  const std::string models_path = cli.get_or("models", "");
  tune::PlanQuery q;
  q.nx = static_cast<int>(cli.get_long_or("nx", 0));
  q.ny = static_cast<int>(cli.get_long_or("ny", 0));
  q.solver = cli.get_or("solver", "CG");
  q.model = cli.get_or("model", "");
  q.device = cli.get_or("device", "");
  q.use_fused = cli.get_long_or("fused", 1) != 0;
  q.use_pipelined = cli.has("pipelined");
  if (cli.has("overlap")) q.overlap_comm = cli.get_long_or("overlap", 1) != 0;
  if (const auto ranks = cli.get("ranks")) {
    q.rank_choices.clear();
    for (const std::string& token : util::split(*ranks, ',')) {
      q.rank_choices.push_back(std::atoi(token.c_str()));
    }
  }
  if (models_path.empty() || q.nx <= 0) return usage(cli.program().c_str());

  const tune::ModelCatalog catalog = tune::ModelCatalog::load(models_path);
  const tune::PlanResult plan = tune::choose_config(catalog, q);
  if (!plan.ok) {
    std::fprintf(stderr, "tl_plan: no plan: %s\n", plan.error.c_str());
    return 2;
  }
  const long top = cli.get_long_or("top", 10);
  util::Table table({"#", "model", "device", "ranks", "overlap",
                     "predicted s", "notes"});
  long shown = 0;
  for (const tune::PlanChoice& choice : plan.ranked) {
    if (shown++ >= top) break;
    table.row({util::strf("%ld", shown), choice.model, choice.device,
               util::strf("%d", choice.ranks),
               choice.overlap_comm ? "on" : "off",
               util::strf("%.6f", choice.predicted.seconds),
               choice.predicted.extrapolated ? "extrapolated" : ""});
  }
  table.print();
  std::printf("best: %s/%s ranks=%d overlap=%s — %.6f s predicted "
              "(%d candidate(s) considered, %zu scorable)\n",
              plan.best.model.c_str(), plan.best.device.c_str(),
              plan.best.ranks, plan.best.overlap_comm ? "on" : "off",
              plan.best.predicted.seconds, plan.considered,
              plan.ranked.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  std::vector<std::string> positional = cli.positional();
  if (positional.empty()) return usage(cli.program().c_str());
  const std::string command = positional.front();
  positional.erase(positional.begin());

  try {
    if (command == "fit") return run_fit(cli, positional);
    if (command == "predict") return run_predict(cli);
    if (command == "plan") return run_plan(cli);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tl_plan: %s\n", e.what());
    return 2;
  }
  return usage(cli.program().c_str());
}
