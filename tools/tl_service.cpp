// tl_service: submit a batch of tenant solve jobs to the SolveService.
//
// Usage:
//   tl_service JOBS.csv [options]
//   tl_service --demo N [options]
//
//   JOBS.csv   one job per line:
//                tenant,priority,solver,model,device,nx,ranks,steps
//              priority in {high,normal,low}; solver in
//              {cg,cheby,ppcg,jacobi}; model/device use the usual short ids
//              (omp3, kokkos, cuda, ... / cpu, gpu, knc). A header line and
//              '#' comments are skipped.
//   --demo N   generate N jobs from the soak bench's deterministic mix
//              instead of reading a file.
//
// Options: --workers N (3), --large-workers N (1), --capacity N (256),
//          --batch N (8), --aging N (16), --threads N (1 host thread/rank),
//          --report=FILE (write a tl-report-1 document with the per-tenant
//          section alongside an OpenMetrics .om rendering).
//
// Prints the per-tenant summary table and exits nonzero if any job failed.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "service/job.hpp"
#include "service/pool.hpp"
#include "telemetry/report.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace {

using namespace tl;

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s JOBS.csv [options]\n"
               "       %s --demo N [options]\n"
               "options: --workers N --large-workers N --capacity N\n"
               "         --batch N --aging N --threads N --report=FILE\n",
               prog, prog);
  return 2;
}

bool parse_solver(const std::string& id, core::SolverKind& out) {
  if (id == "cg") out = core::SolverKind::kCg;
  else if (id == "cheby") out = core::SolverKind::kCheby;
  else if (id == "ppcg") out = core::SolverKind::kPpcg;
  else if (id == "jacobi") out = core::SolverKind::kJacobi;
  else return false;
  return true;
}

/// Parses one CSV job line; returns false (with a message) on bad input.
bool parse_job_line(const std::string& line, int lineno, service::Job& job) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream ss(line);
  while (std::getline(ss, field, ',')) {
    fields.push_back(util::trim(field));
  }
  if (fields.size() != 8) {
    std::fprintf(stderr, "tl_service: line %d: want 8 fields, got %zu\n",
                 lineno, fields.size());
    return false;
  }
  job.tenant = fields[0];
  const auto priority = service::parse_priority(fields[1]);
  if (!priority) {
    std::fprintf(stderr, "tl_service: line %d: bad priority '%s'\n", lineno,
                 fields[1].c_str());
    return false;
  }
  job.priority = *priority;

  service::Scenario& s = job.scenario;
  s.settings = core::Settings::default_problem();
  if (!parse_solver(fields[2], s.settings.solver)) {
    std::fprintf(stderr, "tl_service: line %d: bad solver '%s'\n", lineno,
                 fields[2].c_str());
    return false;
  }
  const auto model = sim::parse_model(fields[3]);
  const auto device = sim::parse_device(fields[4]);
  if (!model || !device) {
    std::fprintf(stderr, "tl_service: line %d: bad model/device '%s'/'%s'\n",
                 lineno, fields[3].c_str(), fields[4].c_str());
    return false;
  }
  s.model = *model;
  s.device = *device;
  const int nx = std::atoi(fields[5].c_str());
  const int ranks = std::atoi(fields[6].c_str());
  const int steps = std::atoi(fields[7].c_str());
  if (nx <= 0 || ranks <= 0 || steps <= 0) {
    std::fprintf(stderr, "tl_service: line %d: bad nx/ranks/steps\n", lineno);
    return false;
  }
  s.settings.nx = s.settings.ny = nx;
  s.settings.nranks = ranks;
  s.settings.end_step = steps;
  s.settings.eps = 1e-6;
  s.settings.max_iters = 200;
  return true;
}

bool load_jobs_csv(const std::string& path, std::vector<service::Job>& jobs) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "tl_service: cannot read '%s'\n", path.c_str());
    return false;
  }
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string trimmed = util::trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    if (lineno == 1 && trimmed.rfind("tenant,", 0) == 0) continue;  // header
    service::Job job;
    if (!parse_job_line(trimmed, lineno, job)) return false;
    jobs.push_back(std::move(job));
  }
  return true;
}

/// The soak bench's mix, shrunk: three tenants, tiny meshes, all solvers.
std::vector<service::Job> demo_jobs(long n) {
  util::Rng rng(0x7ea1ea55ULL);
  static constexpr const char* kTenants[] = {"acme", "burl", "cato"};
  static constexpr int kMeshes[] = {16, 16, 24, 32};
  static constexpr core::SolverKind kSolvers[] = {
      core::SolverKind::kCg, core::SolverKind::kCheby,
      core::SolverKind::kPpcg, core::SolverKind::kJacobi};
  std::vector<service::Job> jobs;
  jobs.reserve(static_cast<std::size_t>(n));
  for (long i = 0; i < n; ++i) {
    service::Job job;
    job.tenant = kTenants[rng.next_below(std::size(kTenants))];
    job.priority = static_cast<service::Priority>(rng.next_below(3));
    job.scenario.settings = core::Settings::default_problem();
    job.scenario.settings.nx = job.scenario.settings.ny =
        kMeshes[rng.next_below(std::size(kMeshes))];
    job.scenario.settings.nranks = rng.next_below(4) == 0 ? 2 : 1;
    job.scenario.settings.solver =
        kSolvers[rng.next_below(std::size(kSolvers))];
    job.scenario.settings.eps = 1e-6;
    job.scenario.settings.max_iters = 200;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);

  std::vector<service::Job> jobs;
  if (cli.has("demo")) {
    const long n = cli.get_long_or("demo", 100);
    if (n <= 0) return usage(cli.program().c_str());
    jobs = demo_jobs(n);
  } else if (cli.positional().size() == 1) {
    if (!load_jobs_csv(cli.positional()[0], jobs)) return 1;
  } else {
    return usage(cli.program().c_str());
  }
  if (jobs.empty()) {
    std::fprintf(stderr, "tl_service: no jobs to run\n");
    return 1;
  }

  service::ServiceConfig config;
  config.small_workers = static_cast<int>(cli.get_long_or("workers", 3));
  config.large_workers =
      static_cast<int>(cli.get_long_or("large-workers", 1));
  config.queue_capacity =
      static_cast<std::size_t>(cli.get_long_or("capacity", 256));
  config.batch_max = static_cast<std::size_t>(cli.get_long_or("batch", 8));
  config.aging_interval =
      static_cast<std::uint64_t>(cli.get_long_or("aging", 16));
  config.host_threads =
      static_cast<unsigned>(cli.get_long_or("threads", 1));
  try {
    config.validate();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tl_service: %s\n", e.what());
    return 2;
  }

  service::SolveService svc(config);
  for (service::Job& job : jobs) svc.submit(std::move(job));
  const service::ServiceReport report = svc.finish();

  util::Table table({"tenant", "jobs", "failures", "converged", "iterations",
                     "sim s", "max wait"});
  for (const service::TenantSummary& t : report.tenants) {
    table.row({t.tenant, util::strf("%llu", (unsigned long long)t.jobs),
               util::strf("%llu", (unsigned long long)t.failures),
               util::strf("%llu", (unsigned long long)t.converged),
               util::strf("%llu", (unsigned long long)t.iterations),
               util::strf("%.4f", t.sim_seconds),
               util::strf("%llu", (unsigned long long)t.max_wait_pops)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "tl_service: %zu job(s), %zu tenant(s) in %.2f s; max wait %llu "
      "pop(s), fairness bound %llu\n",
      report.results.size(), report.tenants.size(), report.wall_seconds,
      static_cast<unsigned long long>(report.max_wait_pops()),
      static_cast<unsigned long long>(report.fairness_bound));
  for (const service::JobResult& r : report.results) {
    if (!r.ok) {
      std::fprintf(stderr, "tl_service: job %llu (%s) failed: %s\n",
                   static_cast<unsigned long long>(r.id), r.tenant.c_str(),
                   r.error.c_str());
    }
  }

  const std::string report_path = cli.get_or("report", "");
  if (!report_path.empty()) {
    telemetry::ReportContext ctx;
    ctx.source = "tl_service";
    ctx.model = "mixed";
    ctx.device = "mixed";
    ctx.solver = "mixed";
    ctx.ranks = 0;
    telemetry::ReportBuilder builder(ctx);
    double total_sim = 0.0;
    std::uint64_t total_launches = 0;
    for (const service::TenantSummary& t : report.tenants) {
      builder.add_tenant(telemetry::TenantRow{
          t.tenant, t.jobs, t.failures, t.converged, t.iterations,
          t.kernel_launches, t.comm_bytes, t.sim_seconds, t.max_wait_pops});
      total_sim += t.sim_seconds;
      total_launches += t.kernel_launches;
    }
    builder.set_totals(total_sim, 0.0, total_launches);
    builder.registry().combine(report.metrics);
    if (!builder.write(report_path)) return 1;
    std::printf("tl_service: wrote %s (and %s)\n", report_path.c_str(),
                telemetry::ReportBuilder::openmetrics_path(report_path)
                    .c_str());
  }

  return report.all_ok() ? 0 : 1;
}
