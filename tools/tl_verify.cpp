// tl_verify: the cross-model conformance checker CLI.
//
//   tl_verify [--nx 40] [--steps 1] [--seed 7] [--ranks R]
//             [--overlap on|off] [--pipelined]
//             [--solver cg|cheby|ppcg|jacobi|all]
//             [--model ID] [--device cpu|gpu|knc]
//             [--golden FILE] [--regen-golden FILE]
//             [--json[=FILE]] [--perturb KERNEL] [--no-replay]
//
// Runs every supported model x device pair through the selected solvers,
// prints the conformance matrix (pass/FAIL + worst relative error per cell),
// optionally emits the machine-readable JSON report for CI, and exits
// nonzero on any divergence. `--golden FILE` additionally pins the reference
// kernels themselves to the committed baselines; `--regen-golden FILE`
// rewrites the baselines (a deliberate, reviewed act — see DESIGN.md §7).
// `--perturb KERNEL` corrupts one reference kernel to prove the checker
// fails when it should; the special targets `halo_payload` and `allreduce`
// (with --ranks > 1) instead corrupt the distributed cells' communication in
// flight, proving wire corruption is detected too. `--ranks R` (R > 1) runs
// every cell decomposed over
// R MiniComm ranks and asserts agreement with the 1-rank reference
// (DESIGN.md §8). `--overlap on|off` (default on) controls the overlapped
// halo pipeline for those decomposed cells; with it on, each cell also runs
// a blocking twin and asserts bit-identical results (DESIGN.md §10).
// `--pipelined` switches every CG solve to the pipelined (allreduce-hiding)
// variant under ToleranceSpec::pipelined; with --ranks > 1 and overlap on,
// the blocking twin additionally proves the nonblocking allreduce
// bit-identical to the blocking one (DESIGN.md §14).

#include <cstdio>
#include <fstream>
#include <string>

#include "util/cli.hpp"
#include "verify/conformance.hpp"
#include "verify/perturb.hpp"
#include "verify/report.hpp"

using namespace tl;

namespace {

bool parse_solvers(const std::string& id,
                   std::vector<core::SolverKind>& out) {
  if (id == "all") {
    out.assign(core::kAllSolvers.begin(), core::kAllSolvers.end());
    out.push_back(core::SolverKind::kJacobi);
  } else if (id == "cg") {
    out = {core::SolverKind::kCg};
  } else if (id == "cheby") {
    out = {core::SolverKind::kCheby};
  } else if (id == "ppcg") {
    out = {core::SolverKind::kPpcg};
  } else if (id == "jacobi") {
    out = {core::SolverKind::kJacobi};
  } else if (!id.empty()) {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);

  verify::VerifyOptions opt;
  opt.nx = static_cast<int>(cli.get_long_or("nx", opt.nx));
  opt.steps = static_cast<int>(cli.get_long_or("steps", opt.steps));
  opt.seed = static_cast<std::uint64_t>(cli.get_long_or("seed", 7));
  opt.ranks = static_cast<int>(cli.get_long_or("ranks", opt.ranks));
  if (opt.ranks < 1) {
    std::fprintf(stderr, "tl_verify: --ranks must be >= 1\n");
    return 2;
  }
  const std::string overlap = cli.get_or("overlap", "on");
  if (overlap == "on") {
    opt.overlap = true;
  } else if (overlap == "off") {
    opt.overlap = false;
  } else {
    std::fprintf(stderr, "tl_verify: --overlap must be 'on' or 'off'\n");
    return 2;
  }
  opt.pipelined = cli.has("pipelined");
  opt.check_replay = !cli.has("no-replay");
  opt.golden_path = cli.get_or("golden", "");
  // --perturb names either a reference kernel (PerturbingKernels) or one of
  // the comm-phase targets, which corrupt the distributed cells in flight.
  const std::string perturb = cli.get_or("perturb", "");
  if (perturb == "halo_payload" || perturb == "allreduce") {
    if (opt.ranks < 2) {
      std::fprintf(stderr,
                   "tl_verify: --perturb %s needs --ranks > 1 (it corrupts "
                   "inter-rank communication)\n",
                   perturb.c_str());
      return 2;
    }
    opt.comm_perturb = perturb;
  } else {
    opt.perturb_kernel = perturb;
  }

  if (!parse_solvers(cli.get_or("solver", ""), opt.solvers)) {
    std::fprintf(stderr, "tl_verify: unknown --solver '%s'\n",
                 cli.get_or("solver", "").c_str());
    return 2;
  }
  if (const auto model = cli.get("model")) {
    const auto parsed = sim::parse_model(*model);
    if (!parsed) {
      std::fprintf(stderr, "tl_verify: unknown --model '%s'\n", model->c_str());
      return 2;
    }
    opt.only_model = *parsed;
  }
  if (const auto device = cli.get("device")) {
    const auto parsed = sim::parse_device(*device);
    if (!parsed) {
      std::fprintf(stderr, "tl_verify: unknown --device '%s'\n",
                   device->c_str());
      return 2;
    }
    opt.only_device = *parsed;
  }

  // Baseline regeneration is its own mode: write and exit.
  if (const auto regen = cli.get("regen-golden")) {
    std::vector<verify::GoldenRecord> records;
    for (const core::SolverKind solver : opt.solvers) {
      records.push_back(
          verify::compute_reference_record(solver, opt.nx, opt.steps));
      std::printf("golden [%s] nx=%d steps=%d: %d iterations, "
                  "internal_energy=%.17g\n",
                  std::string(core::solver_name(solver)).c_str(), opt.nx,
                  opt.steps, records.back().iterations,
                  records.back().internal_energy);
    }
    verify::save_golden(*regen, records);
    std::printf("golden baselines written to %s (%zu records)\n",
                regen->c_str(), records.size());
    return 0;
  }

  verify::ConformanceReport report;
  try {
    report = verify::run_conformance(opt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tl_verify: %s\n", e.what());
    return 2;
  }

  std::printf("tl_verify: %dx%d mesh, %d step(s), %d rank(s)%s%s, seed %llu%s\n\n",
              opt.nx, opt.nx, opt.steps, opt.ranks,
              opt.ranks > 1 ? (opt.overlap ? " (overlap on)" : " (overlap off)")
                            : "",
              opt.pipelined ? " (pipelined CG)" : "",
              static_cast<unsigned long long>(opt.seed),
              !opt.perturb_kernel.empty()
                  ? (" — PERTURBED reference kernel: " + opt.perturb_kernel)
                        .c_str()
                  : !opt.comm_perturb.empty()
                        ? (" — PERTURBED comm phase: " + opt.comm_perturb)
                              .c_str()
                        : "");
  std::fputs(verify::format_matrix(report).c_str(), stdout);

  if (cli.has("json")) {
    const std::string json = verify::to_json(report);
    std::string path = cli.get_or("json", "");
    if (path == "true") path.clear();  // bare --json means stdout
    if (path.empty()) {
      std::printf("%s\n", json.c_str());
    } else {
      std::ofstream out(path);
      out << json << "\n";
      if (!out) {
        std::fprintf(stderr, "tl_verify: cannot write %s\n", path.c_str());
        return 2;
      }
      std::printf("\nJSON report written to %s\n", path.c_str());
    }
  }

  const int failed = report.failed_cells();
  std::printf("\n%zu cells checked, %d failed; golden %s\n",
              report.cells.size(), failed,
              !report.references.empty() && report.references[0].golden_checked
                  ? (report.golden_pass() ? "pass" : "FAIL")
                  : "not checked");
  return report.all_pass() ? 0 : 1;
}
