// tl_report: run-report analysis and regression checking.
//
//   tl_report [--top=N] FILE...
//       Analyze each artifact: top-N kernels with roofline ratios, per-rank
//       comm exposure, fusion/overlap effectiveness. Accepts tl-report-1 run
//       reports and the committed bench artifacts (BENCH_fusion.json,
//       BENCH_overlap.json).
//
//   tl_report --check --baseline=BASE [--rel-tol=0.10] CURRENT
//       Regression gate: compare CURRENT against BASE (same artifact kind).
//       Time-like metrics fail only when slower than baseline by more than
//       the relative tolerance; launch/iteration counts and kernel/cell sets
//       are exact (the simulated timeline is deterministic). Exits 0 on
//       pass, 1 on regression, 2 on usage or parse errors.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/check.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"

using namespace tl;

namespace {

int usage(const char* program) {
  std::fprintf(stderr,
               "usage: %s [--top=N] FILE...\n"
               "       %s --check --baseline=BASE [--rel-tol=T] CURRENT\n",
               program, program);
  return 2;
}

bool load_json(const std::string& path, util::JsonValue& out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "tl_report: cannot read '%s'\n", path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    out = util::parse_json(buffer.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tl_report: %s: %s\n", path.c_str(), e.what());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);

  // Operands: positionals, plus a value the parser attached to the bare
  // --check flag (`--check FILE` binds FILE to the flag).
  std::vector<std::string> files = cli.positional();
  const std::string check_value = cli.get_or("check", "");
  if (!check_value.empty() && check_value != "true") {
    files.insert(files.begin(), check_value);
  }

  if (cli.has("check")) {
    const std::string baseline_path = cli.get_or("baseline", "");
    if (baseline_path.empty() || files.size() != 1) {
      return usage(cli.program().c_str());
    }
    telemetry::CheckOptions opt;
    opt.rel_tol = cli.get_double_or("rel-tol", opt.rel_tol);
    if (opt.rel_tol < 0.0) {
      std::fprintf(stderr, "tl_report: --rel-tol must be >= 0\n");
      return 2;
    }

    util::JsonValue baseline, current;
    if (!load_json(baseline_path, baseline) || !load_json(files[0], current)) {
      return 2;
    }
    const telemetry::CheckResult result =
        telemetry::check(baseline, current, opt);
    std::printf("check %s (%s) vs baseline %s\n", files[0].c_str(),
                std::string(telemetry::artifact_kind_name(
                                telemetry::classify(current)))
                    .c_str(),
                baseline_path.c_str());
    std::fputs(telemetry::format_check(result).c_str(), stdout);
    return result.pass() ? 0 : 1;
  }

  if (files.empty()) return usage(cli.program().c_str());

  telemetry::AnalyzeOptions opt;
  opt.top_n = static_cast<int>(cli.get_long_or("top", opt.top_n));
  bool first = true;
  for (const std::string& path : files) {
    util::JsonValue doc;
    if (!load_json(path, doc)) return 2;
    if (!first) std::printf("\n");
    first = false;
    std::printf("== %s ==\n", path.c_str());
    std::fputs(telemetry::analyze(doc, opt).c_str(), stdout);
  }
  return 0;
}
