// tl_isa: runtime ISA dispatch inspector.
//
//   tl_isa                 prints the CPU's detected best ISA, the resolved
//                          active ISA (after TL_FORCE_ISA), and per-ISA
//                          availability of the fused row-kernel tables.
//   tl_isa --probe NAME    exit 0 if NAME (scalar|sse2|avx2|avx512) is
//                          executable in this build on this CPU, 3 if not,
//                          2 on an unknown name.
//
// The --probe form is the CI gate: scripts force each ISA in turn through
// TL_FORCE_ISA and use the exit code to skip (not fail) legs the host cannot
// run — an AVX-512 smoke on an AVX2-only box must be a skip, never a crash.

#include <cstdio>
#include <cstring>
#include <string>

#include "core/isa.hpp"

using tl::core::isa::Isa;

int main(int argc, char** argv) {
  namespace isa = tl::core::isa;

  if (argc >= 2 && std::strcmp(argv[1], "--probe") == 0) {
    if (argc != 3) {
      std::fprintf(stderr, "tl_isa: --probe needs exactly one ISA name\n");
      return 2;
    }
    const auto parsed = isa::parse_isa(argv[2]);
    if (!parsed) {
      std::fprintf(stderr, "tl_isa: unknown ISA '%s'\n", argv[2]);
      return 2;
    }
    const bool ok = isa::row_table(*parsed) != nullptr;
    std::printf("%s: %s\n", isa::isa_name(*parsed),
                ok ? "available" : "unavailable");
    return ok ? 0 : 3;
  }
  if (argc != 1) {
    std::fprintf(stderr,
                 "usage: tl_isa [--probe scalar|sse2|avx2|avx512]\n");
    return 2;
  }

  std::printf("detected best: %s\n", isa::isa_name(isa::detect_best()));
  std::printf("active:        %s\n", isa::isa_name(isa::active_isa()));
  std::printf("tables:\n");
  for (int i = 0; i < isa::kIsaCount; ++i) {
    const Isa which = static_cast<Isa>(i);
    std::printf("  %-7s %s (lanes=%zu, row_group=%zu)\n", isa::isa_name(which),
                isa::row_table(which) ? "available  " : "unavailable",
                isa::isa_lanes(which), isa::isa_row_group(which));
  }
  return 0;
}
