// tl_csv_diff: tolerant numeric CSV comparison for golden regression tests.
//
//   tl_csv_diff A.csv B.csv [--rel 1e-9] [--abs 0] [--max-report 20]
//             [--numeric-tokens]
//
// Compares two CSV files cell by cell. Cells that parse as numbers on both
// sides compare within the given absolute OR relative tolerance; everything
// else must match exactly as text. Exit status: 0 = files agree, 1 = they
// diverge (each difference printed), 2 = usage or I/O error. This is what
// the golden-CSV ctest regressions use to compare freshly regenerated
// fig8/fig9 outputs against the committed baselines, where bit-identical
// output is expected but a stated tolerance keeps the contract explicit.
//
// --numeric-tokens drops the CSV structure: each file is a stream of
// interleaved text and number tokens, text must match exactly and numbers
// compare within tolerance. This is how the JSON goldens (BENCH_fusion.json)
// are diffed — same tolerance contract, format-agnostic.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/string_util.hpp"

using namespace tl;

namespace {

std::vector<std::vector<std::string>> read_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    rows.push_back(util::parse_csv_line(line));
  }
  return rows;
}

bool cells_match(const std::string& a, const std::string& b, double rel,
                 double abs, std::string& why) {
  if (a == b) return true;
  const auto da = util::parse_double(a);
  const auto db = util::parse_double(b);
  if (!da || !db) {
    why = "text mismatch";
    return false;
  }
  const double abs_err = std::fabs(*da - *db);
  const double denom = std::max(std::fabs(*da), std::fabs(*db));
  const double rel_err = denom > 0 ? abs_err / denom : 0.0;
  if (abs_err <= abs || rel_err <= rel) return true;
  why = util::strf("abs_err=%.3e rel_err=%.3e", abs_err, rel_err);
  return false;
}

/// Splits a file into alternating text/number tokens. A number token starts
/// at a digit (or a sign immediately followed by a digit) and spans whatever
/// strtod consumes; everything between numbers is one text token.
struct Token {
  bool numeric = false;
  std::string text;   // verbatim spelling (numeric and text alike)
  double value = 0.0;
};

std::vector<Token> tokenize_numeric(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  const std::string body((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  std::vector<Token> tokens;
  std::string text;
  const auto flush_text = [&] {
    if (!text.empty()) {
      tokens.push_back(Token{false, text, 0.0});
      text.clear();
    }
  };
  std::size_t i = 0;
  while (i < body.size()) {
    const char c = body[i];
    const bool starts_number =
        (c >= '0' && c <= '9') ||
        ((c == '-' || c == '+') && i + 1 < body.size() &&
         body[i + 1] >= '0' && body[i + 1] <= '9');
    if (starts_number) {
      char* end = nullptr;
      const double v = std::strtod(body.c_str() + i, &end);
      const std::size_t len = static_cast<std::size_t>(end - (body.c_str() + i));
      flush_text();
      tokens.push_back(Token{true, body.substr(i, len), v});
      i += len;
    } else {
      text.push_back(c);
      ++i;
    }
  }
  flush_text();
  return tokens;
}

int diff_numeric_tokens(const std::string& pa, const std::string& pb,
                        double rel, double abs, long max_report) {
  std::vector<Token> a, b;
  try {
    a = tokenize_numeric(pa);
    b = tokenize_numeric(pb);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tl_csv_diff: %s\n", e.what());
    return 2;
  }
  long diffs = 0;
  const auto report = [&](const std::string& msg) {
    if (++diffs <= max_report) std::fprintf(stderr, "%s\n", msg.c_str());
  };
  if (a.size() != b.size()) {
    report(util::strf("token count differs: %zu vs %zu", a.size(), b.size()));
  }
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    std::string why;
    if (a[i].numeric != b[i].numeric) {
      report(util::strf("token %zu: '%s' vs '%s' (kind mismatch)", i + 1,
                        a[i].text.c_str(), b[i].text.c_str()));
    } else if (!cells_match(a[i].text, b[i].text, rel, abs, why)) {
      report(util::strf("token %zu: '%s' vs '%s' (%s)", i + 1,
                        a[i].text.c_str(), b[i].text.c_str(), why.c_str()));
    }
  }
  if (diffs > max_report) {
    std::fprintf(stderr, "... and %ld more difference(s)\n", diffs - max_report);
  }
  if (diffs == 0) {
    std::printf("tl_csv_diff: %s and %s agree (rel<=%g, abs<=%g, tokens)\n",
                pa.c_str(), pb.c_str(), rel, abs);
    return 0;
  }
  std::fprintf(stderr, "tl_csv_diff: %ld difference(s) between %s and %s\n",
               diffs, pa.c_str(), pb.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  if (cli.positional().size() != 2) {
    std::fprintf(stderr,
                 "usage: tl_csv_diff A.csv B.csv [--rel 1e-9] [--abs 0] "
                 "[--numeric-tokens]\n");
    return 2;
  }
  const double rel = cli.get_double_or("rel", 1e-9);
  const double abs = cli.get_double_or("abs", 0.0);
  const long max_report = cli.get_long_or("max-report", 20);
  if (cli.has("numeric-tokens")) {
    return diff_numeric_tokens(cli.positional()[0], cli.positional()[1], rel,
                               abs, max_report);
  }

  std::vector<std::vector<std::string>> a, b;
  try {
    a = read_csv(cli.positional()[0]);
    b = read_csv(cli.positional()[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tl_csv_diff: %s\n", e.what());
    return 2;
  }

  long diffs = 0;
  const auto report = [&](const std::string& msg) {
    if (++diffs <= max_report) std::fprintf(stderr, "%s\n", msg.c_str());
  };

  if (a.size() != b.size()) {
    report(util::strf("row count differs: %zu vs %zu", a.size(), b.size()));
  }
  const std::size_t rows = std::min(a.size(), b.size());
  for (std::size_t r = 0; r < rows; ++r) {
    if (a[r].size() != b[r].size()) {
      report(util::strf("row %zu: column count differs: %zu vs %zu", r + 1,
                        a[r].size(), b[r].size()));
      continue;
    }
    for (std::size_t c = 0; c < a[r].size(); ++c) {
      std::string why;
      if (!cells_match(a[r][c], b[r][c], rel, abs, why)) {
        report(util::strf("row %zu col %zu: '%s' vs '%s' (%s)", r + 1, c + 1,
                          a[r][c].c_str(), b[r][c].c_str(), why.c_str()));
      }
    }
  }

  if (diffs > max_report) {
    std::fprintf(stderr, "... and %ld more difference(s)\n", diffs - max_report);
  }
  if (diffs == 0) {
    std::printf("tl_csv_diff: %s and %s agree (rel<=%g, abs<=%g)\n",
                cli.positional()[0].c_str(), cli.positional()[1].c_str(), rel,
                abs);
    return 0;
  }
  std::fprintf(stderr, "tl_csv_diff: %ld difference(s) between %s and %s\n",
               diffs, cli.positional()[0].c_str(), cli.positional()[1].c_str());
  return 1;
}
