// Region-parameterised sweeps (KernelCaps::kCapRegions): the overlap
// pipeline's correctness rests on interior + boundary-ring sweeps being
// BIT-IDENTICAL to the full-sweep kernel they split — same per-cell
// arithmetic, reductions recomputed in the full sweep's accumulation order.
// These tests drive two instances of the same implementation through
// identical prologues, run one full and one split, and assert exact (==)
// agreement on every reduction and every touched field, for every
// advertising implementation, including degenerate tile shapes.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/reference_kernels.hpp"
#include "core/state_init.hpp"
#include "ports/registry.hpp"

using namespace tl;
using core::FieldId;
using core::Region;

namespace {

/// An implementation that advertises kCapRegions, by name + factory.
struct RegionImpl {
  std::string name;
  std::function<std::unique_ptr<core::SolverKernels>(const core::Mesh&)> make;
};

std::vector<RegionImpl> region_impls() {
  std::vector<RegionImpl> out;
  out.push_back({"reference", [](const core::Mesh& m) {
                   return std::make_unique<core::ReferenceKernels>(m);
                 }});
  const core::Mesh probe_mesh(8, 8, 2);
  for (const auto model : sim::kAllModels) {
    for (const auto device : sim::kAllDevices) {
      if (!ports::is_supported(model, device)) continue;
      const auto probe = ports::make_port(model, device, probe_mesh, 1);
      if (!(probe->caps() & core::kCapRegions)) continue;
      std::string name = std::string(sim::model_id(model)) + "_" +
                         std::string(sim::device_short_name(device));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      out.push_back({name, [model, device](const core::Mesh& m) {
                       return ports::make_port(model, device, m, 9);
                     }});
    }
  }
  return out;
}

std::string impl_name(const testing::TestParamInfo<RegionImpl>& info) {
  return info.param.name;
}

/// Standard solve prologue on a fresh instance (mirrors the solver driver).
std::unique_ptr<core::SolverKernels> make_ready(const RegionImpl& impl, int nx,
                                                int ny) {
  const core::Mesh mesh(nx, ny, 2);
  auto k = impl.make(mesh);

  core::Settings s = core::Settings::default_problem();
  s.nx = nx;
  s.ny = ny;
  core::Mesh painted = mesh;
  painted.x_min = s.x_min;
  painted.x_max = s.x_max;
  painted.y_min = s.y_min;
  painted.y_max = s.y_max;
  core::Chunk chunk(painted);
  core::apply_initial_states(chunk, s);

  k->upload_state(chunk);
  k->halo_update(core::kMaskDensity | core::kMaskEnergy0, 2);
  k->init_u();
  k->init_coefficients(core::Coefficient::kConductivity, 0.35, 0.35);
  k->halo_update(core::kMaskU, 1);
  return k;
}

/// Sweeps interior + the four edge regions in the pipeline's fixed order.
template <typename Fn>
void sweep_regions(Fn&& region_call) {
  region_call(Region::kInterior);
  for (const Region r : core::kEdgeRegions) region_call(r);
}

/// Bitwise comparison of one padded field between two instances.
void expect_field_identical(core::SolverKernels& full,
                            core::SolverKernels& split, FieldId id,
                            const char* what) {
  const auto a = full.field_view(id);
  const auto b = split.field_view(id);
  ASSERT_EQ(a.nx(), b.nx());
  ASSERT_EQ(a.ny(), b.ny());
  for (int y = 0; y < a.ny(); ++y) {
    for (int x = 0; x < a.nx(); ++x) {
      ASSERT_EQ(a(x, y), b(x, y))
          << what << ": field " << static_cast<int>(id) << " differs at ("
          << x << "," << y << ")";
    }
  }
}

}  // namespace

class RegionSweeps : public testing::TestWithParam<RegionImpl> {};

INSTANTIATE_TEST_SUITE_P(AllAdvertising, RegionSweeps,
                         testing::ValuesIn(region_impls()), impl_name);

TEST_P(RegionSweeps, CgClassicSplitIsBitIdentical) {
  auto full = make_ready(GetParam(), 24, 20);
  auto split = make_ready(GetParam(), 24, 20);
  for (auto* k : {full.get(), split.get()}) {
    k->cg_init();
    k->halo_update(core::kMaskP, 1);
  }
  const double pw = full->cg_calc_w();
  sweep_regions([&](Region r) { split->cg_calc_w_region(r); });
  const double pw_split = split->cg_calc_w_region_finish();
  EXPECT_EQ(pw, pw_split);  // bitwise
  expect_field_identical(*full, *split, FieldId::kW, "cg_calc_w");
}

TEST_P(RegionSweeps, CgFusedSplitIsBitIdentical) {
  auto full = make_ready(GetParam(), 24, 20);
  auto split = make_ready(GetParam(), 24, 20);
  for (auto* k : {full.get(), split.get()}) {
    k->cg_init();
    k->halo_update(core::kMaskP, 1);
  }
  const core::CgFusedW f = full->cg_calc_w_fused();
  sweep_regions([&](Region r) { split->cg_calc_w_fused_region(r); });
  const core::CgFusedW g = split->cg_calc_w_fused_region_finish();
  EXPECT_EQ(f.pw, g.pw);
  EXPECT_EQ(f.ww, g.ww);
  expect_field_identical(*full, *split, FieldId::kW, "cg_calc_w_fused");
}

TEST_P(RegionSweeps, ChebySplitIsBitIdenticalOverIterations) {
  auto full = make_ready(GetParam(), 24, 20);
  auto split = make_ready(GetParam(), 24, 20);
  const double theta = 4.0;
  for (auto* k : {full.get(), split.get()}) {
    k->cg_init();
    k->halo_update(core::kMaskP, 1);
    k->cheby_init(theta);
    k->halo_update(core::kMaskU, 1);
  }
  for (int it = 0; it < 3; ++it) {
    const double alpha = 0.3 + 0.1 * it;
    const double beta = 0.7 - 0.1 * it;
    full->cheby_fused_iterate(alpha, beta);
    full->halo_update(core::kMaskU, 1);
    sweep_regions([&](Region r) { split->cheby_fused_region(alpha, beta, r); });
    split->cheby_fused_region_finish();
    split->halo_update(core::kMaskU, 1);
    for (const FieldId id : {FieldId::kU, FieldId::kP, FieldId::kR}) {
      expect_field_identical(*full, *split, id, "cheby_fused_iterate");
    }
  }
}

TEST_P(RegionSweeps, PpcgSplitIsBitIdenticalOverIterations) {
  auto full = make_ready(GetParam(), 24, 20);
  auto split = make_ready(GetParam(), 24, 20);
  const double theta = 5.0;
  for (auto* k : {full.get(), split.get()}) {
    k->cg_init();
    k->halo_update(core::kMaskP, 1);
    k->cg_calc_w();
    k->cg_calc_ur(0.7);
    k->ppcg_init_sd(theta);
    k->halo_update(core::kMaskSd, 1);
  }
  for (int it = 0; it < 3; ++it) {
    const double alpha = 0.4 + 0.05 * it;
    const double beta = 0.3 / theta;
    full->ppcg_fused_inner(alpha, beta);
    full->halo_update(core::kMaskSd, 1);
    sweep_regions([&](Region r) { split->ppcg_fused_region(alpha, beta, r); });
    split->ppcg_fused_region_finish(alpha, beta);
    split->halo_update(core::kMaskSd, 1);
    for (const FieldId id : {FieldId::kU, FieldId::kR, FieldId::kSd}) {
      expect_field_identical(*full, *split, id, "ppcg_fused_inner");
    }
  }
}

TEST_P(RegionSweeps, JacobiSplitIsBitIdenticalOverIterations) {
  // Three iterations with halo updates between, exercising the ping-pong
  // swap in the interior call and any per-iteration halo-frame bookkeeping.
  auto full = make_ready(GetParam(), 24, 20);
  auto split = make_ready(GetParam(), 24, 20);
  for (int it = 0; it < 3; ++it) {
    full->jacobi_fused_copy_iterate();
    full->halo_update(core::kMaskU, 1);
    sweep_regions([&](Region r) { split->jacobi_fused_region(r); });
    split->jacobi_fused_region_finish();
    split->halo_update(core::kMaskU, 1);
    for (const FieldId id : {FieldId::kU, FieldId::kW}) {
      expect_field_identical(*full, *split, id, "jacobi_fused_copy_iterate");
    }
  }
}

TEST_P(RegionSweeps, DegenerateTileShapesStayBitIdentical) {
  // Tiles where the boundary ring IS most (or all) of the interior: single
  // rows, single columns, and rings wider than the remaining interior.
  const int shapes[][2] = {{5, 1}, {1, 4}, {2, 2}, {7, 3}, {3, 7}};
  for (const auto& s : shapes) {
    auto full = make_ready(GetParam(), s[0], s[1]);
    auto split = make_ready(GetParam(), s[0], s[1]);
    for (auto* k : {full.get(), split.get()}) {
      k->cg_init();
      k->halo_update(core::kMaskP, 1);
    }
    const double pw = full->cg_calc_w();
    sweep_regions([&](Region r) { split->cg_calc_w_region(r); });
    EXPECT_EQ(pw, split->cg_calc_w_region_finish())
        << "tile " << s[0] << "x" << s[1];
    expect_field_identical(*full, *split, FieldId::kW, "degenerate cg w");
  }
}

// ---------------------------------------------------------------------------
// Region geometry
// ---------------------------------------------------------------------------

TEST(RegionBounds, FiveRegionsPartitionTheInteriorExactly) {
  // Every interior cell is visited exactly once by the union of the five
  // regions, for every small tile shape and both halo depths.
  for (int h = 1; h <= 2; ++h) {
    for (int nx = 1; nx <= 6; ++nx) {
      for (int ny = 1; ny <= 6; ++ny) {
        std::vector<int> cover(static_cast<std::size_t>(nx) * ny, 0);
        const Region all[5] = {Region::kInterior, Region::kSouth,
                               Region::kNorth, Region::kWest, Region::kEast};
        for (const Region r : all) {
          const core::RegionBounds b = core::region_bounds(r, h, nx, ny);
          for (int y = b.y0; y < b.y1; ++y) {
            for (int x = b.x0; x < b.x1; ++x) {
              ASSERT_GE(x, h);
              ASSERT_LT(x, h + nx);
              ASSERT_GE(y, h);
              ASSERT_LT(y, h + ny);
              ++cover[static_cast<std::size_t>(y - h) * nx + (x - h)];
            }
          }
        }
        for (const int c : cover) {
          ASSERT_EQ(c, 1) << "tile " << nx << "x" << ny << " h=" << h;
        }
      }
    }
  }
}

TEST(RegionBounds, InteriorIsInsetOneCell) {
  const core::RegionBounds b =
      core::region_bounds(Region::kInterior, 2, 10, 8);
  EXPECT_EQ(b.x0, 3);
  EXPECT_EQ(b.x1, 11);
  EXPECT_EQ(b.y0, 3);
  EXPECT_EQ(b.y1, 9);
}

TEST(RegionDefaults, NonAdvertisingPortThrows) {
  // The solver/dist layers must never call a region sweep on a port that
  // does not advertise kCapRegions; the defaults enforce it loudly.
  const core::Mesh mesh(8, 8, 2);
  for (const auto model : sim::kAllModels) {
    for (const auto device : sim::kAllDevices) {
      if (!ports::is_supported(model, device)) continue;
      auto k = ports::make_port(model, device, mesh, 1);
      if (k->caps() & core::kCapRegions) continue;
      EXPECT_THROW(k->cg_calc_w_region(Region::kInterior), std::logic_error);
      EXPECT_THROW(k->cg_calc_w_region_finish(), std::logic_error);
      EXPECT_THROW(k->cheby_fused_region(0.5, 0.5, Region::kSouth),
                   std::logic_error);
      EXPECT_THROW(k->ppcg_fused_region_finish(0.5, 0.5), std::logic_error);
      EXPECT_THROW(k->jacobi_fused_region(Region::kInterior),
                   std::logic_error);
    }
  }
}
