// Runtime ISA dispatch: the contract that vector width is a pure speed
// choice. Every available row-kernel table (sse2/avx2/avx512) must be
// bit-identical to the scalar one for every primitive, every tail residue,
// and unaligned row starts; TL_FORCE_ISA / force_isa must select the table
// they name (degrading to scalar, never faulting, when the CPU or build
// lacks it); and a whole CG solve — classic and pipelined — must produce
// bit-identical results under every forced ISA.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/driver.hpp"
#include "core/isa.hpp"
#include "core/reference_kernels.hpp"
#include "core/settings.hpp"
#include "models/host_pool.hpp"

using namespace tl;
using core::isa::Isa;

namespace {

// ---------------------------------------------------------------------------
// Per-primitive bit-identity against the scalar table
// ---------------------------------------------------------------------------

/// Deterministic positive test data, same generator as test_fusion.cpp.
struct RowArrays {
  std::vector<double> a, b, c, d, e, f, g;
  explicit RowArrays(std::size_t n) : a(n), b(n), c(n), d(n), e(n), f(n), g(n) {
    std::uint64_t s = 0x9e3779b97f4a7c15ull;
    auto next = [&s] {
      s ^= s << 13;
      s ^= s >> 7;
      s ^= s << 17;
      return 0.5 + static_cast<double>(s % 1000) * 1e-3;
    };
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = next();
      b[i] = next();
      c[i] = next();
      d[i] = next();
      e[i] = next();
      f[i] = next();
      g[i] = next();
    }
  }
};

/// Every non-scalar table that exists in this build on this CPU.
std::vector<Isa> available_wide_isas() {
  std::vector<Isa> out;
  for (const Isa isa : {Isa::kSse2, Isa::kAvx2, Isa::kAvx512}) {
    if (core::isa::row_table(isa) != nullptr) out.push_back(isa);
  }
  return out;
}

/// Runs every primitive of `table` against the scalar table over rows at
/// `base..base+len` (len sweeps every tail residue past a full AVX-512
/// step) and asserts outputs and mutated arrays bit-identical.
void expect_table_matches_scalar(const core::isa::RowKernelTable& table,
                                 const std::string& tag, std::size_t width,
                                 std::size_t base, std::size_t len) {
  const core::isa::RowKernelTable& ref = *core::isa::row_table(Isa::kScalar);
  const std::string what =
      tag + " width=" + std::to_string(width) + " base=" +
      std::to_string(base) + " len=" + std::to_string(len);
  RowArrays m(width * 8);
  const std::size_t e = base + len;

  {  // w_row: w = A p plus {p.w, w.w}
    std::vector<double> w1 = m.e, w2 = m.e;
    const auto d1 = table.w_row(m.a.data(), m.b.data(), m.c.data(), w1.data(),
                                base, e, width);
    const auto d2 = ref.w_row(m.a.data(), m.b.data(), m.c.data(), w2.data(),
                              base, e, width);
    EXPECT_EQ(d1.pw, d2.pw) << what << " w_row pw";
    EXPECT_EQ(d1.ww, d2.ww) << what << " w_row ww";
    EXPECT_EQ(w1, w2) << what << " w_row w";
  }
  {  // w_row_dots: recompute the dots from a written w row
    const auto d1 = table.w_row_dots(m.a.data(), m.e.data(), base, e);
    const auto d2 = ref.w_row_dots(m.a.data(), m.e.data(), base, e);
    EXPECT_EQ(d1.pw, d2.pw) << what << " w_row_dots pw";
    EXPECT_EQ(d1.ww, d2.ww) << what << " w_row_dots ww";
  }
  {  // urp_row: u += a p; r -= a w; p = r + bp p; returns r.r
    std::vector<double> u1 = m.a, r1 = m.b, p1 = m.c;
    std::vector<double> u2 = m.a, r2 = m.b, p2 = m.c;
    const double rr1 = table.urp_row(u1.data(), r1.data(), p1.data(),
                                     m.d.data(), base, e, 0.37, 0.61);
    const double rr2 = ref.urp_row(u2.data(), r2.data(), p2.data(),
                                   m.d.data(), base, e, 0.37, 0.61);
    EXPECT_EQ(rr1, rr2) << what << " urp_row rr";
    EXPECT_EQ(u1, u2) << what << " urp_row u";
    EXPECT_EQ(r1, r2) << what << " urp_row r";
    EXPECT_EQ(p1, p2) << what << " urp_row p";
  }
  {  // residual_row: r = u0 - A u; returns r.r
    std::vector<double> r1 = m.e, r2 = m.e;
    const double rr1 = table.residual_row(m.a.data(), m.b.data(), m.c.data(),
                                          m.d.data(), r1.data(), base, e,
                                          width);
    const double rr2 = ref.residual_row(m.a.data(), m.b.data(), m.c.data(),
                                        m.d.data(), r2.data(), base, e, width);
    EXPECT_EQ(rr1, rr2) << what << " residual_row rr";
    EXPECT_EQ(r1, r2) << what << " residual_row r";
  }
  {  // cheby_row
    std::vector<double> r1 = m.e, p1 = m.f, un1 = m.g;
    std::vector<double> r2 = m.e, p2 = m.f, un2 = m.g;
    table.cheby_row(m.a.data(), m.b.data(), m.c.data(), m.d.data(), r1.data(),
                    p1.data(), un1.data(), base, e, width, 0.8, 0.3);
    ref.cheby_row(m.a.data(), m.b.data(), m.c.data(), m.d.data(), r2.data(),
                  p2.data(), un2.data(), base, e, width, 0.8, 0.3);
    EXPECT_EQ(r1, r2) << what << " cheby_row r";
    EXPECT_EQ(p1, p2) << what << " cheby_row p";
    EXPECT_EQ(un1, un2) << what << " cheby_row un";
  }
  {  // ppcg_row
    std::vector<double> u1 = m.d, r1 = m.e, sn1 = m.f;
    std::vector<double> u2 = m.d, r2 = m.e, sn2 = m.f;
    table.ppcg_row(m.a.data(), m.b.data(), m.c.data(), u1.data(), r1.data(),
                   sn1.data(), base, e, width, 0.8, 0.3);
    ref.ppcg_row(m.a.data(), m.b.data(), m.c.data(), u2.data(), r2.data(),
                 sn2.data(), base, e, width, 0.8, 0.3);
    EXPECT_EQ(u1, u2) << what << " ppcg_row u";
    EXPECT_EQ(r1, r2) << what << " ppcg_row r";
    EXPECT_EQ(sn1, sn2) << what << " ppcg_row sn";
  }
  {  // jacobi_row
    std::vector<double> u1 = m.e, u2 = m.e;
    table.jacobi_row(m.a.data(), m.b.data(), m.c.data(), m.d.data(), u1.data(),
                     base, e, width);
    ref.jacobi_row(m.a.data(), m.b.data(), m.c.data(), m.d.data(), u2.data(),
                   base, e, width);
    EXPECT_EQ(u1, u2) << what << " jacobi_row u";
  }
  {  // stencil_row: q = A v
    std::vector<double> q1 = m.e, q2 = m.e;
    table.stencil_row(m.a.data(), m.b.data(), m.c.data(), q1.data(), base, e,
                      width);
    ref.stencil_row(m.a.data(), m.b.data(), m.c.data(), q2.data(), base, e,
                    width);
    EXPECT_EQ(q1, q2) << what << " stencil_row q";
  }
  {  // pipe_init_row: w = A r plus {r.r, w.r}
    std::vector<double> w1 = m.e, w2 = m.e;
    const auto d1 = table.pipe_init_row(m.a.data(), m.b.data(), m.c.data(),
                                        w1.data(), base, e, width);
    const auto d2 = ref.pipe_init_row(m.a.data(), m.b.data(), m.c.data(),
                                      w2.data(), base, e, width);
    EXPECT_EQ(d1.pw, d2.pw) << what << " pipe_init_row rr";
    EXPECT_EQ(d1.ww, d2.ww) << what << " pipe_init_row rw";
    EXPECT_EQ(w1, w2) << what << " pipe_init_row w";
  }
  {  // pipe_update_row: the six-field recurrence plus {r.r, w.r}
    std::vector<double> z1 = m.a, s1 = m.b, p1 = m.c, u1 = m.d, r1 = m.e,
                        w1 = m.f;
    std::vector<double> z2 = m.a, s2 = m.b, p2 = m.c, u2 = m.d, r2 = m.e,
                        w2 = m.f;
    const auto d1 =
        table.pipe_update_row(z1.data(), s1.data(), p1.data(), u1.data(),
                              r1.data(), w1.data(), m.g.data(), base, e, 0.37,
                              0.61);
    const auto d2 =
        ref.pipe_update_row(z2.data(), s2.data(), p2.data(), u2.data(),
                            r2.data(), w2.data(), m.g.data(), base, e, 0.37,
                            0.61);
    EXPECT_EQ(d1.pw, d2.pw) << what << " pipe_update_row rr";
    EXPECT_EQ(d1.ww, d2.ww) << what << " pipe_update_row rw";
    EXPECT_EQ(z1, z2) << what << " pipe_update_row z";
    EXPECT_EQ(s1, s2) << what << " pipe_update_row s";
    EXPECT_EQ(p1, p2) << what << " pipe_update_row p";
    EXPECT_EQ(u1, u2) << what << " pipe_update_row u";
    EXPECT_EQ(r1, r2) << what << " pipe_update_row r";
    EXPECT_EQ(w1, w2) << what << " pipe_update_row w";
  }
}

TEST(IsaTables, EveryAvailableTableMatchesScalarBitwise) {
  const std::vector<Isa> wide = available_wide_isas();
  ASSERT_FALSE(wide.empty()) << "SSE2 must exist on x86-64 builds";
  for (const Isa isa : wide) {
    const core::isa::RowKernelTable* table = core::isa::row_table(isa);
    ASSERT_NE(table, nullptr);
    for (const std::size_t width : {std::size_t{37}, std::size_t{41}}) {
      // Unaligned starts (offset sweeps the vector-lane phase) x every tail
      // residue through one full AVX-512 step plus change.
      for (const std::size_t offset : {std::size_t{0}, std::size_t{1},
                                       std::size_t{2}, std::size_t{3}}) {
        for (std::size_t len = 0; len <= 19; ++len) {
          expect_table_matches_scalar(*table, core::isa::isa_name(isa), width,
                                      width * 3 + offset, len);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Dispatch: force_isa / TL_FORCE_ISA resolution and graceful fallback
// ---------------------------------------------------------------------------

/// Restores clean resolution state around every dispatch test.
class IsaDispatchTest : public testing::Test {
 protected:
  void SetUp() override {
    ::unsetenv("TL_FORCE_ISA");
    core::isa::force_isa(std::nullopt);
  }
  void TearDown() override {
    ::unsetenv("TL_FORCE_ISA");
    core::isa::force_isa(std::nullopt);
  }
};

TEST_F(IsaDispatchTest, ParseRoundTripsEveryName) {
  for (int i = 0; i < core::isa::kIsaCount; ++i) {
    const Isa isa = static_cast<Isa>(i);
    const auto parsed = core::isa::parse_isa(core::isa::isa_name(isa));
    ASSERT_TRUE(parsed.has_value()) << core::isa::isa_name(isa);
    EXPECT_EQ(*parsed, isa);
  }
  EXPECT_FALSE(core::isa::parse_isa("").has_value());
  EXPECT_FALSE(core::isa::parse_isa("avx9000").has_value());
}

TEST_F(IsaDispatchTest, ForceSelectsTheNamedTableOrScalar) {
  for (int i = 0; i < core::isa::kIsaCount; ++i) {
    const Isa isa = static_cast<Isa>(i);
    core::isa::force_isa(isa);
    const Isa expect =
        core::isa::row_table(isa) != nullptr ? isa : Isa::kScalar;
    EXPECT_EQ(core::isa::active_isa(), expect) << core::isa::isa_name(isa);
    EXPECT_EQ(core::isa::active_row_table(), core::isa::row_table(expect));
  }
}

TEST_F(IsaDispatchTest, EnvSelectsAndProgrammaticForceWins) {
  ::setenv("TL_FORCE_ISA", "sse2", 1);
  core::isa::force_isa(std::nullopt);  // reset the cached decision
  EXPECT_EQ(core::isa::active_isa(), Isa::kSse2);

  // Programmatic force outranks the environment.
  core::isa::force_isa(Isa::kScalar);
  EXPECT_EQ(core::isa::active_isa(), Isa::kScalar);
}

TEST_F(IsaDispatchTest, UnparseableEnvFallsBackToDetection) {
  ::setenv("TL_FORCE_ISA", "not-an-isa", 1);
  core::isa::force_isa(std::nullopt);
  EXPECT_EQ(core::isa::active_isa(), core::isa::detect_best());
}

TEST_F(IsaDispatchTest, ActiveTableIsNeverNull) {
  for (int i = 0; i < core::isa::kIsaCount; ++i) {
    core::isa::force_isa(static_cast<Isa>(i));
    EXPECT_NE(core::isa::active_row_table(), nullptr);
  }
}

// ---------------------------------------------------------------------------
// Grain heuristic: ISA-width-aware alignment
// ---------------------------------------------------------------------------

TEST(IsaGrain, DefaultGrainRoundsUpToTheIsaGroup) {
  using models::HostPool;
  // Explicit grains are honoured exactly, aligned or not.
  EXPECT_EQ(HostPool::effective_grain(1000, 7, 8), 7);
  // Default grains round up to the requested alignment so chunk boundaries
  // never split an accumulation group mid-vector.
  for (const std::int64_t align : {1, 4, 8}) {
    const std::int64_t g = HostPool::effective_grain(1000, 0, align);
    EXPECT_GT(g, 0);
    EXPECT_EQ(g % align, 0) << "align=" << align;
  }
  // Tiny ranges still get a positive grain.
  EXPECT_EQ(HostPool::effective_grain(3, 0, 8), 8);
  // The row groups the reference kernels actually pass are 4 and 8.
  EXPECT_EQ(core::isa::isa_row_group(Isa::kScalar), 4u);
  EXPECT_EQ(core::isa::isa_row_group(Isa::kAvx512), 8u);
}

// ---------------------------------------------------------------------------
// Whole-solve invariance: classic and pipelined CG bit-identical under every
// forced ISA (histories and residuals, not just per-row outputs).
// ---------------------------------------------------------------------------

core::StepReport run_cg(bool pipelined) {
  core::Settings s = core::Settings::default_problem();
  s.nx = s.ny = 40;
  s.solver = core::SolverKind::kCg;
  s.use_pipelined = pipelined;
  core::Driver driver(s, std::make_unique<core::ReferenceKernels>(
                             core::Mesh(s.nx, s.ny, s.halo_depth)));
  return driver.run_step();
}

TEST_F(IsaDispatchTest, CgSolveBitIdenticalUnderEveryForcedIsa) {
  for (const bool pipelined : {false, true}) {
    core::isa::force_isa(Isa::kScalar);
    const core::StepReport base = run_cg(pipelined);
    EXPECT_TRUE(base.solve.converged);
    for (const Isa isa : available_wide_isas()) {
      core::isa::force_isa(isa);
      const core::StepReport got = run_cg(pipelined);
      const std::string tag = std::string(core::isa::isa_name(isa)) +
                              (pipelined ? " pipelined" : " classic");
      EXPECT_EQ(got.solve.iterations, base.solve.iterations) << tag;
      EXPECT_EQ(got.solve.final_rr, base.solve.final_rr) << tag;
      EXPECT_EQ(got.solve.rr_history, base.solve.rr_history) << tag;
      EXPECT_EQ(got.summary.internal_energy, base.summary.internal_energy)
          << tag;
      EXPECT_EQ(got.summary.temperature, base.summary.temperature) << tag;
    }
  }
}

}  // namespace
