// Tests for the conformance & verification subsystem: the tolerance
// comparators (including their exact boundaries), field checksums, the
// golden-baseline CSV round trip, fault injection through PerturbingKernels
// (known-divergent inputs MUST fail), and the well-formedness of the JSON
// report CI consumes.

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "core/mesh.hpp"
#include "core/reference_kernels.hpp"
#include "core/state_init.hpp"
#include "verify/checksum.hpp"
#include "verify/conformance.hpp"
#include "verify/golden.hpp"
#include "verify/perturb.hpp"
#include "verify/report.hpp"
#include "verify/tolerance.hpp"

using namespace tl;

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON syntax checker (objects, arrays, strings, numbers, literals) —
// the same validator the trace tests use, enough to assert structural
// validity without a JSON library.
// ---------------------------------------------------------------------------

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

/// A conformance run restricted to one cell, so the subsystem tests stay
/// fast (the full 69-cell sweep is the verify.conformance ctest).
verify::VerifyOptions one_cell_options() {
  verify::VerifyOptions opt;
  opt.nx = 24;
  opt.solvers = {core::SolverKind::kCg};
  opt.only_model = sim::Model::kKokkos;
  opt.only_device = sim::DeviceId::kCpuSandyBridge;
  return opt;
}

std::string temp_path(const char* name) {
  return testing::TempDir() + name;
}

}  // namespace

// ---------------------------------------------------------------------------
// ulp_distance
// ---------------------------------------------------------------------------

TEST(UlpDistance, EqualValuesAreZeroApart) {
  EXPECT_EQ(verify::ulp_distance(1.0, 1.0), 0u);
  EXPECT_EQ(verify::ulp_distance(0.0, -0.0), 0u);
}

TEST(UlpDistance, AdjacentRepresentablesAreOneApart) {
  const double next = std::nextafter(1.0, 2.0);
  EXPECT_EQ(verify::ulp_distance(1.0, next), 1u);
  EXPECT_EQ(verify::ulp_distance(next, 1.0), 1u);
  EXPECT_EQ(verify::ulp_distance(-1.0, std::nextafter(-1.0, -2.0)), 1u);
}

TEST(UlpDistance, NanAndOppositeSignsSaturate) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(verify::ulp_distance(nan, 1.0), UINT64_MAX);
  EXPECT_EQ(verify::ulp_distance(1.0, nan), UINT64_MAX);
  EXPECT_EQ(verify::ulp_distance(-1.0, 1.0), UINT64_MAX);
}

// ---------------------------------------------------------------------------
// compare: the disjunction and its exact boundaries
// ---------------------------------------------------------------------------

TEST(Compare, AllCriteriaDisabledDemandsExactEquality) {
  EXPECT_TRUE(verify::compare(3.5, 3.5, verify::Tolerance::exact()).pass);
  EXPECT_FALSE(
      verify::compare(3.5, std::nextafter(3.5, 4.0), verify::Tolerance::exact())
          .pass);
}

TEST(Compare, AbsoluteBoundaryIsInclusive) {
  const verify::Tolerance tol{.abs = 0.5};
  EXPECT_TRUE(verify::compare(1.0, 1.5, tol).pass);   // exactly at the bound
  EXPECT_FALSE(verify::compare(1.0, 1.5001, tol).pass);
}

TEST(Compare, RelativeBoundaryIsInclusive) {
  const verify::Tolerance tol{.rel = 0.25};
  // rel_err = |80 - 100| / 100 = 0.2 <= 0.25
  EXPECT_TRUE(verify::compare(80.0, 100.0, tol).pass);
  // rel_err = |70 - 100| / 100 = 0.3 > 0.25
  EXPECT_FALSE(verify::compare(70.0, 100.0, tol).pass);
  EXPECT_TRUE(verify::compare(100.0, 125.0, verify::Tolerance{.rel = 0.2}).pass);
}

TEST(Compare, UlpBoundaryIsInclusive) {
  const verify::Tolerance tol{.ulp = 2};
  const double two_up = std::nextafter(std::nextafter(1.0, 2.0), 2.0);
  EXPECT_TRUE(verify::compare(1.0, two_up, tol).pass);
  EXPECT_FALSE(
      verify::compare(1.0, std::nextafter(two_up, 2.0), tol).pass);
}

TEST(Compare, DisjunctionPassesWhenAnyCriterionHolds) {
  // Tiny residuals: hopeless relatively, fine absolutely.
  const verify::Tolerance tol{.abs = 1e-15, .rel = 1e-9};
  const auto c = verify::compare(1e-22, 3e-22, tol);
  EXPECT_TRUE(c.pass);
  EXPECT_GT(c.rel_err, 0.5);
  // Large energies: hopeless absolutely, fine relatively.
  EXPECT_TRUE(verify::compare(1e9, 1e9 * (1 + 1e-10), tol).pass);
}

TEST(Compare, NanNeverPasses) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const verify::Tolerance loose{.abs = 1e300, .rel = 1.0, .ulp = UINT64_MAX};
  EXPECT_FALSE(verify::compare(nan, nan, loose).pass);
  EXPECT_FALSE(verify::compare(nan, 1.0, loose).pass);
  EXPECT_FALSE(verify::compare(1.0, nan, loose).pass);
}

TEST(Compare, RecordsEveryCriterionsError) {
  const auto c = verify::compare(2.0, 1.0, verify::Tolerance{.abs = 2.0});
  EXPECT_TRUE(c.pass);
  EXPECT_DOUBLE_EQ(c.abs_err, 1.0);
  EXPECT_DOUBLE_EQ(c.rel_err, 0.5);
  EXPECT_EQ(c.a, 2.0);
  EXPECT_EQ(c.b, 1.0);
}

TEST(ToleranceSpec, DefaultsEncodeTheDocumentedContract) {
  const auto spec = verify::ToleranceSpec::defaults(core::SolverKind::kCg);
  // Control flow is exact.
  EXPECT_EQ(spec[verify::Metric::kIterations].abs, 0.0);
  EXPECT_EQ(spec[verify::Metric::kIterations].rel, 0.0);
  EXPECT_EQ(spec[verify::Metric::kIterations].ulp, 0u);
  // Residuals have the eps absolute floor for converged values.
  EXPECT_GT(spec[verify::Metric::kFinalResidual].abs, 0.0);
  EXPECT_GT(spec[verify::Metric::kFinalResidual].rel, 0.0);
  // Replay launches are exact; replay seconds carry the pinned 1e-9.
  EXPECT_EQ(spec[verify::Metric::kReplayLaunches].rel, 0.0);
  EXPECT_DOUBLE_EQ(spec[verify::Metric::kReplaySeconds].rel, 1e-9);
  // Chebyshev's three-term recurrence gets a looser history bound than CG.
  const auto cheby = verify::ToleranceSpec::defaults(core::SolverKind::kCheby);
  EXPECT_GT(cheby[verify::Metric::kResidualHistory].rel,
            spec[verify::Metric::kResidualHistory].rel);
}

// ---------------------------------------------------------------------------
// Field checksums
// ---------------------------------------------------------------------------

TEST(Checksum, ConstantFieldHasKnownChecksum) {
  const core::Mesh mesh(4, 4, 2);
  std::vector<double> data(static_cast<std::size_t>(mesh.padded_nx()) *
                               static_cast<std::size_t>(mesh.padded_ny()),
                           -99.0);  // halo junk must not leak in
  for (int y = mesh.halo_depth; y < mesh.halo_depth + mesh.ny; ++y) {
    for (int x = mesh.halo_depth; x < mesh.halo_depth + mesh.nx; ++x) {
      data[static_cast<std::size_t>(y) *
               static_cast<std::size_t>(mesh.padded_nx()) +
           static_cast<std::size_t>(x)] = 2.0;
    }
  }
  const util::Span2D<const double> span(data.data(), mesh.padded_nx(),
                                        mesh.padded_ny());
  const verify::FieldChecksum cs = verify::checksum_field(mesh, span);
  EXPECT_DOUBLE_EQ(cs.sum, 2.0 * 16);
  EXPECT_DOUBLE_EQ(cs.l2, std::sqrt(4.0 * 16));
  EXPECT_DOUBLE_EQ(cs.min, 2.0);
  EXPECT_DOUBLE_EQ(cs.max, 2.0);
}

TEST(Checksum, CompensatedSumSurvivesMagnitudeSpread) {
  // 1e16 + many 1.0s: a naive left-to-right double sum loses the ones.
  const core::Mesh mesh(3, 3, 1);
  std::vector<double> data(static_cast<std::size_t>(mesh.padded_nx()) *
                               static_cast<std::size_t>(mesh.padded_ny()),
                           0.0);
  const auto at = [&](int x, int y) -> double& {
    return data[static_cast<std::size_t>(y) *
                    static_cast<std::size_t>(mesh.padded_nx()) +
                static_cast<std::size_t>(x)];
  };
  at(1, 1) = 1e16;
  at(2, 1) = 1.0;
  at(3, 1) = 1.0;
  at(1, 2) = 1.0;
  at(2, 2) = 1.0;
  const util::Span2D<const double> span(data.data(), mesh.padded_nx(),
                                        mesh.padded_ny());
  const verify::FieldChecksum cs = verify::checksum_field(mesh, span);
  EXPECT_DOUBLE_EQ(cs.sum, 1e16 + 4.0);
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

TEST(Perturb, UnknownTargetThrows) {
  const core::Mesh mesh(8, 8, 2);
  EXPECT_THROW(verify::PerturbingKernels(
                   std::make_unique<core::ReferenceKernels>(mesh),
                   "not_a_kernel"),
               std::invalid_argument);
}

TEST(Perturb, TargetsCoverTheScalarKernels) {
  const auto& targets = verify::PerturbingKernels::targets();
  EXPECT_NE(std::find(targets.begin(), targets.end(), "cg_calc_ur"),
            targets.end());
  EXPECT_NE(std::find(targets.begin(), targets.end(), "field_summary"),
            targets.end());
}

TEST(Perturb, ScalesExactlyTheNamedKernel) {
  const core::Mesh mesh(8, 8, 2);
  core::ReferenceKernels plain(mesh);
  verify::PerturbingKernels wrapped(
      std::make_unique<core::ReferenceKernels>(mesh), "cg_init", 2.0);
  core::Chunk chunk(mesh);
  core::Settings s = core::Settings::default_problem();
  s.nx = s.ny = mesh.nx;
  core::apply_initial_states(chunk, s);
  plain.upload_state(chunk);
  wrapped.upload_state(chunk);
  for (auto* k : {static_cast<core::SolverKernels*>(&plain),
                  static_cast<core::SolverKernels*>(&wrapped)}) {
    k->init_u();
    k->init_coefficients(core::Coefficient::kConductivity, 0.1, 0.1);
    k->calc_residual();
  }
  EXPECT_DOUBLE_EQ(wrapped.cg_init(), 2.0 * plain.cg_init());
  // Non-targeted kernels pass through untouched.
  EXPECT_DOUBLE_EQ(wrapped.cg_calc_w(), plain.cg_calc_w());
}

// ---------------------------------------------------------------------------
// Golden round trip
// ---------------------------------------------------------------------------

TEST(Golden, CsvRoundTripPreservesEveryBit) {
  const auto rec = verify::compute_reference_record(core::SolverKind::kCg, 24);
  const std::string path = temp_path("golden_roundtrip.csv");
  verify::save_golden(path, {rec});
  const auto loaded = verify::load_golden(path);
  ASSERT_EQ(loaded.size(), 1u);
  const auto& back = loaded[0];
  EXPECT_EQ(back.solver, rec.solver);
  EXPECT_EQ(back.nx, rec.nx);
  EXPECT_EQ(back.steps, rec.steps);
  EXPECT_EQ(back.converged, rec.converged);
  EXPECT_EQ(back.iterations, rec.iterations);
  EXPECT_EQ(back.final_rr, rec.final_rr);          // %.17g: exact round trip
  EXPECT_EQ(back.internal_energy, rec.internal_energy);
  EXPECT_EQ(back.u.sum, rec.u.sum);
  EXPECT_EQ(back.u.l2, rec.u.l2);
  EXPECT_EQ(back.energy.max, rec.energy.max);
  EXPECT_NE(verify::find_golden(loaded, core::SolverKind::kCg, 24, 1), nullptr);
  EXPECT_EQ(verify::find_golden(loaded, core::SolverKind::kPpcg, 24, 1),
            nullptr);
  std::remove(path.c_str());
}

TEST(Golden, MalformedFilesThrow) {
  const std::string path = temp_path("golden_malformed.csv");
  {
    std::ofstream out(path);
    out << "solver,nx\nCG,not_a_number\n";
  }
  EXPECT_THROW(verify::load_golden(path), std::runtime_error);
  EXPECT_THROW(verify::load_golden(temp_path("no_such_golden.csv")),
               std::runtime_error);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Conformance: agreement passes, known-divergent inputs fail
// ---------------------------------------------------------------------------

TEST(Conformance, SingleCellAgreesWithReference) {
  const auto report = verify::run_conformance(one_cell_options());
  ASSERT_EQ(report.cells.size(), 1u);
  EXPECT_TRUE(report.all_pass());
  EXPECT_EQ(report.failed_cells(), 0);
  // The replay cross-check ran and passed too.
  bool saw_replay = false;
  for (const auto& m : report.cells[0].metrics) {
    if (m.metric == verify::Metric::kReplaySeconds) saw_replay = true;
  }
  EXPECT_TRUE(saw_replay);
}

TEST(Conformance, JacobiCellAgreesIncludingReplay) {
  // Jacobi converges on norm checks, not cg_calc_ur — the replay script
  // derivation must use converge_after_jacobi or the phantom never stops.
  auto opt = one_cell_options();
  opt.solvers = {core::SolverKind::kJacobi};
  const auto report = verify::run_conformance(opt);
  ASSERT_EQ(report.cells.size(), 1u);
  EXPECT_TRUE(report.all_pass()) << verify::format_matrix(report);
  bool replay_checked = false;
  for (const auto& m : report.cells[0].metrics) {
    if (m.metric == verify::Metric::kReplayLaunches) {
      replay_checked = true;
      EXPECT_TRUE(m.pass);
    }
  }
  EXPECT_TRUE(replay_checked);
}

TEST(Conformance, PerturbedReferenceKernelFails) {
  auto opt = one_cell_options();
  opt.perturb_kernel = "cg_calc_ur";
  const auto report = verify::run_conformance(opt);
  EXPECT_FALSE(report.all_pass());
  EXPECT_GT(report.failed_cells(), 0);
}

TEST(Conformance, GoldenStoreCatchesReferenceDrift) {
  // Commit a golden, then corrupt it: the conformance run must flag the
  // mismatch even though every port still agrees with the live reference.
  auto rec = verify::compute_reference_record(core::SolverKind::kCg, 24);
  rec.internal_energy *= 1.001;
  const std::string path = temp_path("golden_drift.csv");
  verify::save_golden(path, {rec});
  auto opt = one_cell_options();
  opt.golden_path = path;
  const auto report = verify::run_conformance(opt);
  EXPECT_FALSE(report.golden_pass());
  EXPECT_FALSE(report.all_pass());
  EXPECT_EQ(report.failed_cells(), 0);  // ports still conform
  std::remove(path.c_str());
}

TEST(Conformance, MissingGoldenRecordIsAFailureWithANote) {
  const auto rec = verify::compute_reference_record(core::SolverKind::kCg, 24);
  const std::string path = temp_path("golden_wrong_size.csv");
  verify::save_golden(path, {rec});
  auto opt = one_cell_options();
  opt.nx = 40;  // no record for nx=40 in the store
  opt.golden_path = path;
  const auto report = verify::run_conformance(opt);
  EXPECT_FALSE(report.golden_pass());
  ASSERT_FALSE(report.references.empty());
  EXPECT_FALSE(report.references[0].golden_note.empty());
  std::remove(path.c_str());
}

TEST(Conformance, EmptySolverListThrows) {
  verify::VerifyOptions opt;
  opt.solvers.clear();
  EXPECT_THROW(verify::run_conformance(opt), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Report output
// ---------------------------------------------------------------------------

TEST(Report, JsonIsWellFormedAndCarriesTheSummary) {
  const auto report = verify::run_conformance(one_cell_options());
  const std::string json = verify::to_json(report);
  EXPECT_TRUE(JsonChecker(json).valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"schema\":\"tl-verify-1\""), std::string::npos);
  EXPECT_NE(json.find("\"summary\""), std::string::npos);
  EXPECT_NE(json.find("\"pass\":true"), std::string::npos);
  EXPECT_NE(json.find("\"residual_history\""), std::string::npos);
}

TEST(Report, FailingJsonStaysWellFormed) {
  auto opt = one_cell_options();
  opt.perturb_kernel = "cg_calc_w";
  const auto report = verify::run_conformance(opt);
  const std::string json = verify::to_json(report);
  EXPECT_TRUE(JsonChecker(json).valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"pass\":false"), std::string::npos);
}

TEST(Report, JsonEscapeHandlesSpecials) {
  const std::string escaped =
      "\"" + verify::json_escape("a\"b\\c\nd\te\x01") + "\"";
  EXPECT_TRUE(JsonChecker(escaped).valid()) << escaped;
}

TEST(Report, MatrixNamesEveryCell) {
  const auto report = verify::run_conformance(one_cell_options());
  const std::string matrix = verify::format_matrix(report);
  EXPECT_NE(matrix.find("Kokkos"), std::string::npos);
  EXPECT_NE(matrix.find("CG"), std::string::npos);
  EXPECT_NE(matrix.find("pass"), std::string::npos);
}
