// Fused-kernel correctness: the contract that fusion is a pure performance
// transform. Per-kernel and solver-level equivalence between the fused and
// classic paths (reference kernels and every supported model x device pair,
// compared under verify::Tolerance), capability gating (a caps() == 0 port
// must never receive a fused call), bit-identity of the SIMD and scalar row
// primitives, and thread-count invariance of the pooled reductions.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/driver.hpp"
#include "core/fused_rows.hpp"
#include "core/reference_kernels.hpp"
#include "core/solvers.hpp"
#include "core/state_init.hpp"
#include "ports/registry.hpp"
#include "verify/tolerance.hpp"

using namespace tl;
using core::FieldId;
using core::Settings;
using core::SolverKind;

namespace {

// Reductions reassociate between the fused and classic paths; per-element
// field arithmetic follows the identical association in both.
constexpr verify::Tolerance kFieldTol{1e-15, 1e-13, 4};
constexpr verify::Tolerance kSumTol{1e-13, 1e-12, 0};

void expect_close(double a, double b, const verify::Tolerance& tol,
                  const std::string& what) {
  const verify::Comparison cmp = verify::compare(a, b, tol);
  EXPECT_TRUE(cmp.pass) << what << ": fused=" << a << " classic=" << b
                        << " rel_err=" << cmp.rel_err;
}

// ---------------------------------------------------------------------------
// Row primitives: the SIMD path must be bit-identical to the portable
// fallback for any range length (including every tail residue).
// ---------------------------------------------------------------------------

struct RowArrays {
  std::vector<double> a, b, c, d, e;
  explicit RowArrays(std::size_t n) : a(n), b(n), c(n), d(n), e(n) {
    std::uint64_t s = 0x9e3779b97f4a7c15ull;
    auto next = [&s] {
      s ^= s << 13;
      s ^= s >> 7;
      s ^= s << 17;
      return 0.5 + static_cast<double>(s % 1000) * 1e-3;
    };
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = next();
      b[i] = next();
      c[i] = next();
      d[i] = next();
      e[i] = next();
    }
  }
};

#if TL_FUSED_SIMD

TEST(FusedRows, SimdWRowMatchesScalarBitwise) {
  constexpr std::size_t kWidth = 37;
  RowArrays m(kWidth * 8);
  for (std::size_t len = 0; len <= 9; ++len) {
    const std::size_t base = kWidth * 3 + 2;
    std::vector<double> w_simd = m.e, w_scalar = m.e;
    const auto simd = core::fused::fused_w_row_simd(
        m.a.data(), m.b.data(), m.c.data(), w_simd.data(), base, base + len,
        kWidth);
    const auto scalar = core::fused::fused_w_row_scalar(
        m.a.data(), m.b.data(), m.c.data(), w_scalar.data(), base, base + len,
        kWidth);
    EXPECT_EQ(simd.pw, scalar.pw) << "len=" << len;
    EXPECT_EQ(simd.ww, scalar.ww) << "len=" << len;
    EXPECT_EQ(w_simd, w_scalar) << "len=" << len;
  }
}

TEST(FusedRows, SimdUrpRowMatchesScalarBitwise) {
  for (std::size_t len = 0; len <= 9; ++len) {
    RowArrays m(64);
    std::vector<double> u1 = m.a, r1 = m.b, p1 = m.c;
    std::vector<double> u2 = m.a, r2 = m.b, p2 = m.c;
    const double rr_simd = core::fused::fused_urp_row_simd(
        u1.data(), r1.data(), p1.data(), m.d.data(), 5, 5 + len, 0.37, 0.61);
    const double rr_scalar = core::fused::fused_urp_row_scalar(
        u2.data(), r2.data(), p2.data(), m.d.data(), 5, 5 + len, 0.37, 0.61);
    EXPECT_EQ(rr_simd, rr_scalar) << "len=" << len;
    EXPECT_EQ(u1, u2) << "len=" << len;
    EXPECT_EQ(r1, r2) << "len=" << len;
    EXPECT_EQ(p1, p2) << "len=" << len;
  }
}

TEST(FusedRows, SimdResidualRowMatchesScalarBitwise) {
  constexpr std::size_t kWidth = 41;
  RowArrays m(kWidth * 8);
  for (std::size_t len = 0; len <= 9; ++len) {
    const std::size_t base = kWidth * 3 + 1;
    std::vector<double> r_simd = m.e, r_scalar = m.e;
    const double rr_simd = core::fused::fused_residual_row_simd(
        m.a.data(), m.b.data(), m.c.data(), m.d.data(), r_simd.data(), base,
        base + len, kWidth);
    const double rr_scalar = core::fused::fused_residual_row_scalar(
        m.a.data(), m.b.data(), m.c.data(), m.d.data(), r_scalar.data(), base,
        base + len, kWidth);
    EXPECT_EQ(rr_simd, rr_scalar) << "len=" << len;
    EXPECT_EQ(r_simd, r_scalar) << "len=" << len;
  }
}

#endif  // TL_FUSED_SIMD

// ---------------------------------------------------------------------------
// Per-kernel equivalence on the reference kernels: each fused kernel against
// the classic sequence it replaces, from an identical mid-solve state.
// ---------------------------------------------------------------------------

constexpr int kN = 28;

/// Two identically initialised reference-kernel instances, stepped through
/// CG init so all solver fields (u, u0, r, p, w, kx, ky) are populated.
class ReferencePairTest : public testing::Test {
 protected:
  ReferencePairTest()
      : mesh_(kN, kN, 2),
        fused_(std::make_unique<core::ReferenceKernels>(mesh_)),
        classic_(std::make_unique<core::ReferenceKernels>(mesh_)) {
    Settings s = Settings::default_problem();
    s.nx = s.ny = kN;
    core::Mesh painted = mesh_;
    painted.x_min = s.x_min;
    painted.x_max = s.x_max;
    painted.y_min = s.y_min;
    painted.y_max = s.y_max;
    core::Chunk chunk(painted);
    core::apply_initial_states(chunk, s);
    for (core::SolverKernels* k : {fused_.get(), classic_.get()}) {
      k->upload_state(chunk);
      k->halo_update(core::kMaskDensity | core::kMaskEnergy0, 2);
      k->init_u();
      k->init_coefficients(core::Coefficient::kConductivity, 0.35, 0.35);
      k->halo_update(core::kMaskU, 1);
      k->cg_init();
      k->halo_update(core::kMaskP, 1);
    }
  }

  // Interior only: fused sweeps that ping-pong buffers (cheby, jacobi) leave
  // stale halo values behind, which the solver refreshes via halo_update
  // before any kernel reads them — halos are not part of the contract.
  void expect_field_close(FieldId f) {
    const auto a = fused_->field_view(f);
    const auto b = classic_->field_view(f);
    const int h = mesh_.halo_depth;
    for (int y = h; y < h + mesh_.ny; ++y) {
      for (int x = h; x < h + mesh_.nx; ++x) {
        const verify::Comparison cmp = verify::compare(a(x, y), b(x, y),
                                                       kFieldTol);
        ASSERT_TRUE(cmp.pass)
            << core::field_name(f) << "(" << x << "," << y
            << "): fused=" << a(x, y) << " classic=" << b(x, y);
      }
    }
  }

  core::Mesh mesh_;
  std::unique_ptr<core::ReferenceKernels> fused_;
  std::unique_ptr<core::ReferenceKernels> classic_;
};

TEST_F(ReferencePairTest, CgCalcWFused) {
  const core::CgFusedW out = fused_->cg_calc_w_fused();
  const double pw = classic_->cg_calc_w();
  expect_close(out.pw, pw, kSumTol, "pw");
  expect_field_close(FieldId::kW);

  // ww must be the norm of the w the sweep just wrote.
  const auto w = fused_->field_view(FieldId::kW);
  std::vector<double> sq;
  const int h = mesh_.halo_depth;
  for (int y = h; y < h + mesh_.ny; ++y) {
    for (int x = h; x < h + mesh_.nx; ++x) sq.push_back(w(x, y) * w(x, y));
  }
  double ww = 0.0;
  for (const double v : sq) ww += v;
  expect_close(out.ww, ww, kSumTol, "ww");
}

TEST_F(ReferencePairTest, CgFusedUrP) {
  const double alpha = 0.123, beta_prev = 0.456;
  const double rrn = fused_->cg_fused_ur_p(alpha, beta_prev);
  const double rrn_classic = classic_->cg_calc_ur(alpha);
  classic_->cg_calc_p(beta_prev);
  expect_close(rrn, rrn_classic, kSumTol, "rrn");
  expect_field_close(FieldId::kU);
  expect_field_close(FieldId::kR);
  expect_field_close(FieldId::kP);
}

TEST_F(ReferencePairTest, FusedResidualNorm) {
  const double rr = fused_->fused_residual_norm();
  classic_->calc_residual();
  const double rr_classic = classic_->calc_2norm(core::NormTarget::kResidual);
  expect_close(rr, rr_classic, kSumTol, "rr");
  expect_field_close(FieldId::kR);
}

TEST_F(ReferencePairTest, ChebyFusedIterate) {
  for (core::SolverKernels* k : {static_cast<core::SolverKernels*>(fused_.get()),
                                 static_cast<core::SolverKernels*>(classic_.get())}) {
    k->cheby_init(2.5);
    k->halo_update(core::kMaskU, 1);
  }
  fused_->cheby_fused_iterate(0.8, 0.3);
  classic_->cheby_iterate(0.8, 0.3);
  expect_field_close(FieldId::kU);
  expect_field_close(FieldId::kP);
  expect_field_close(FieldId::kR);
}

TEST_F(ReferencePairTest, PpcgFusedInner) {
  for (core::SolverKernels* k : {static_cast<core::SolverKernels*>(fused_.get()),
                                 static_cast<core::SolverKernels*>(classic_.get())}) {
    k->ppcg_init_sd(2.5);
    k->halo_update(core::kMaskSd, 1);
  }
  fused_->ppcg_fused_inner(0.8, 0.3);
  classic_->ppcg_inner(0.8, 0.3);
  expect_field_close(FieldId::kU);
  expect_field_close(FieldId::kR);
  expect_field_close(FieldId::kSd);
}

TEST_F(ReferencePairTest, JacobiFusedCopyIterate) {
  fused_->jacobi_fused_copy_iterate();
  classic_->jacobi_copy_u();
  classic_->jacobi_iterate();
  expect_field_close(FieldId::kU);
}

// The pooled fused reductions must be bit-identical for any thread count:
// chunking is grain-derived, row slots are position-fixed, and the pairwise
// tree is over the row index — nothing depends on the schedule.
TEST(FusionDeterminism, ReductionsInvariantAcrossThreadCounts) {
  Settings s = Settings::default_problem();
  s.nx = s.ny = 65;  // odd: exercises row-tail chains and ragged tiles
  const core::Mesh mesh(s.nx, s.ny, s.halo_depth);
  core::Mesh painted = mesh;
  painted.x_min = s.x_min;
  painted.x_max = s.x_max;
  painted.y_min = s.y_min;
  painted.y_max = s.y_max;
  core::Chunk chunk(painted);
  core::apply_initial_states(chunk, s);

  std::vector<double> pw, ww, rrn, rr;
  for (const unsigned threads : {1u, 2u, 8u}) {
    core::ReferenceKernels k(mesh, threads);
    k.upload_state(chunk);
    k.halo_update(core::kMaskDensity | core::kMaskEnergy0, 2);
    k.init_u();
    k.init_coefficients(core::Coefficient::kConductivity, 0.35, 0.35);
    k.halo_update(core::kMaskU, 1);
    k.cg_init();
    k.halo_update(core::kMaskP, 1);
    const core::CgFusedW out = k.cg_calc_w_fused();
    pw.push_back(out.pw);
    ww.push_back(out.ww);
    rrn.push_back(k.cg_fused_ur_p(0.123, 0.456));
    rr.push_back(k.fused_residual_norm());
  }
  for (std::size_t i = 1; i < pw.size(); ++i) {
    EXPECT_EQ(pw[0], pw[i]);
    EXPECT_EQ(ww[0], ww[i]);
    EXPECT_EQ(rrn[0], rrn[i]);
    EXPECT_EQ(rr[0], rr[i]);
  }
}

// ---------------------------------------------------------------------------
// Capability gating: a port that advertises caps() == 0 must never receive a
// fused call, and the solver must produce the classic result through it.
// ---------------------------------------------------------------------------

/// Forwards every classic kernel to a ReferenceKernels but advertises no
/// fused capabilities; every fused entry point counts the call and defers to
/// the base class (which throws — the solver must never get here).
class NoCapsKernels final : public core::SolverKernels {
 public:
  explicit NoCapsKernels(const core::Mesh& mesh)
      : inner_(std::make_unique<core::ReferenceKernels>(mesh)) {}

  int fused_calls = 0;

  unsigned caps() const override { return 0; }
  core::CgFusedW cg_calc_w_fused() override {
    ++fused_calls;
    return SolverKernels::cg_calc_w_fused();
  }
  double cg_fused_ur_p(double a, double b) override {
    ++fused_calls;
    return SolverKernels::cg_fused_ur_p(a, b);
  }
  double fused_residual_norm() override {
    ++fused_calls;
    return SolverKernels::fused_residual_norm();
  }
  void cheby_fused_iterate(double a, double b) override {
    ++fused_calls;
    SolverKernels::cheby_fused_iterate(a, b);
  }
  void ppcg_fused_inner(double a, double b) override {
    ++fused_calls;
    SolverKernels::ppcg_fused_inner(a, b);
  }
  void jacobi_fused_copy_iterate() override {
    ++fused_calls;
    SolverKernels::jacobi_fused_copy_iterate();
  }

  void upload_state(const core::Chunk& c) override { inner_->upload_state(c); }
  void init_u() override { inner_->init_u(); }
  void init_coefficients(core::Coefficient c, double rx, double ry) override {
    inner_->init_coefficients(c, rx, ry);
  }
  void halo_update(unsigned f, int d) override { inner_->halo_update(f, d); }
  void calc_residual() override { inner_->calc_residual(); }
  double calc_2norm(core::NormTarget t) override {
    return inner_->calc_2norm(t);
  }
  void finalise() override { inner_->finalise(); }
  core::FieldSummary field_summary() override {
    return inner_->field_summary();
  }
  double cg_init() override { return inner_->cg_init(); }
  double cg_calc_w() override { return inner_->cg_calc_w(); }
  double cg_calc_ur(double a) override { return inner_->cg_calc_ur(a); }
  void cg_calc_p(double b) override { inner_->cg_calc_p(b); }
  void cheby_init(double t) override { inner_->cheby_init(t); }
  void cheby_iterate(double a, double b) override {
    inner_->cheby_iterate(a, b);
  }
  void ppcg_init_sd(double t) override { inner_->ppcg_init_sd(t); }
  void ppcg_inner(double a, double b) override { inner_->ppcg_inner(a, b); }
  void jacobi_copy_u() override { inner_->jacobi_copy_u(); }
  void jacobi_iterate() override { inner_->jacobi_iterate(); }
  void read_u(tl::util::Span2D<double> out) override { inner_->read_u(out); }
  tl::util::Span2D<double> field_view(FieldId id) override {
    return inner_->field_view(id);
  }
  void download_energy(core::Chunk& c) override { inner_->download_energy(c); }
  const tl::sim::SimClock& clock() const override { return inner_->clock(); }
  void begin_run(std::uint64_t seed) override { inner_->begin_run(seed); }

 private:
  std::unique_ptr<core::ReferenceKernels> inner_;
};

TEST(FusionDispatch, CapsZeroPortNeverReceivesFusedCalls) {
  for (const SolverKind solver :
       {SolverKind::kCg, SolverKind::kCheby, SolverKind::kPpcg,
        SolverKind::kJacobi}) {
    Settings s = Settings::default_problem();
    s.nx = s.ny = kN;
    s.solver = solver;
    s.use_fused = true;  // requested, but the port does not advertise it

    auto kernels = std::make_unique<NoCapsKernels>(
        core::Mesh(s.nx, s.ny, s.halo_depth));
    NoCapsKernels* raw = kernels.get();
    core::Driver driver(s, std::move(kernels));
    const core::StepReport report = driver.run_step();
    EXPECT_TRUE(report.solve.converged)
        << core::solver_name(solver) << " did not converge";
    EXPECT_EQ(raw->fused_calls, 0)
        << core::solver_name(solver)
        << " dispatched a fused kernel to a caps()==0 port";
  }
}

// Forcing the classic path on a fully capable port must reproduce the
// caps()==0 control flow bit-for-bit.
TEST(FusionDispatch, UseFusedOffMatchesCapsZeroExactly) {
  Settings s = Settings::default_problem();
  s.nx = s.ny = kN;
  s.solver = SolverKind::kCg;

  s.use_fused = true;
  core::Driver caps0(s, std::make_unique<NoCapsKernels>(
                            core::Mesh(s.nx, s.ny, s.halo_depth)));
  const core::StepReport a = caps0.run_step();

  s.use_fused = false;
  core::Driver classic(s, std::make_unique<core::ReferenceKernels>(
                              core::Mesh(s.nx, s.ny, s.halo_depth)));
  const core::StepReport b = classic.run_step();

  EXPECT_EQ(a.solve.iterations, b.solve.iterations);
  EXPECT_EQ(a.solve.final_rr, b.solve.final_rr);
  EXPECT_EQ(a.solve.rr_history, b.solve.rr_history);
}

// ---------------------------------------------------------------------------
// Solver-level equivalence: every supported model x device pair must produce
// the same solve (control flow and physics) with fusion on and off.
// ---------------------------------------------------------------------------

struct Pair {
  sim::Model model;
  sim::DeviceId device;
};

std::vector<Pair> supported_pairs() {
  std::vector<Pair> out;
  for (const auto m : sim::kAllModels) {
    for (const auto d : sim::kAllDevices) {
      if (ports::is_supported(m, d)) out.push_back({m, d});
    }
  }
  return out;
}

std::string pair_name(const testing::TestParamInfo<Pair>& info) {
  std::string name = std::string(sim::model_id(info.param.model)) + "_" +
                     std::string(sim::device_short_name(info.param.device));
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

class FusedPortPair : public testing::TestWithParam<Pair> {};

INSTANTIATE_TEST_SUITE_P(AllSupported, FusedPortPair,
                         testing::ValuesIn(supported_pairs()), pair_name);

TEST_P(FusedPortPair, FusedMatchesUnfusedForEverySolver) {
  const Pair pair = GetParam();
  for (const SolverKind solver :
       {SolverKind::kCg, SolverKind::kCheby, SolverKind::kPpcg,
        SolverKind::kJacobi}) {
    Settings s = Settings::default_problem();
    s.nx = s.ny = 40;
    s.solver = solver;

    core::StepReport reports[2];
    for (const bool fused : {true, false}) {
      s.use_fused = fused;
      core::Driver driver(
          s, ports::make_port(pair.model, pair.device,
                              core::Mesh(s.nx, s.ny, s.halo_depth), 7));
      reports[fused ? 0 : 1] = driver.run_step();
    }
    const core::SolveStats& f = reports[0].solve;
    const core::SolveStats& c = reports[1].solve;
    const std::string tag = std::string(core::solver_name(solver));

    EXPECT_EQ(f.converged, c.converged) << tag;
    // Rounding near the eps threshold may slip a check interval.
    EXPECT_NEAR(f.iterations, c.iterations, 1) << tag;
    expect_close(f.final_rr, c.final_rr,
                 verify::Tolerance{1e-13, 1e-6, 0}, tag + " final_rr");
    const std::size_t n = std::min(f.rr_history.size(), c.rr_history.size());
    for (std::size_t i = 0; i + 1 < n; ++i) {
      expect_close(f.rr_history[i], c.rr_history[i],
                   verify::Tolerance{1e-13, 1e-6, 0},
                   tag + " rr_history[" + std::to_string(i) + "]");
    }
    expect_close(reports[0].summary.internal_energy,
                 reports[1].summary.internal_energy,
                 verify::Tolerance{0.0, 1e-9, 0}, tag + " internal_energy");
    expect_close(reports[0].summary.temperature,
                 reports[1].summary.temperature,
                 verify::Tolerance{0.0, 1e-9, 0}, tag + " temperature");
  }
}

}  // namespace
