// Unit tests for src/dist: the multi-rank timestep driver, its agreement
// with the single-rank core::Driver, the comm accounting, and the
// distributed conformance path (VerifyOptions::ranks).

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/driver.hpp"
#include "core/mesh.hpp"
#include "core/reference_kernels.hpp"
#include "core/settings.hpp"
#include "dist/driver.hpp"
#include "ports/registry.hpp"
#include "sim/device.hpp"
#include "sim/model_id.hpp"
#include "sim/trace.hpp"
#include "verify/conformance.hpp"

namespace d = tl::dist;
using tl::core::Mesh;
using tl::core::Settings;

namespace {

Settings small_problem(int ranks, tl::core::SolverKind solver) {
  Settings s = Settings::default_problem();
  s.nx = s.ny = 32;
  s.solver = solver;
  s.end_step = 1;
  s.nranks = ranks;
  return s;
}

d::PortFactory reference_factory() {
  return [](const Mesh& mesh, int /*rank*/) {
    return std::make_unique<tl::core::ReferenceKernels>(mesh);
  };
}

d::PortFactory omp3_factory() {
  return [](const Mesh& mesh, int rank) {
    return tl::ports::make_port(*tl::sim::parse_model("omp3"),
                                *tl::sim::parse_device("cpu"), mesh,
                                1 + static_cast<std::uint64_t>(rank));
  };
}

/// Interior-only sum of a padded global field (halo cells are zero in a
/// DistReport, so a plain sum is fine, but be explicit anyway).
double interior_sum(const Mesh& mesh, const tl::util::Buffer<double>& buf) {
  const auto s = buf.view2d(mesh.padded_nx(), mesh.padded_ny());
  double sum = 0.0;
  const int h = mesh.halo_depth;
  for (int y = h; y < h + mesh.ny; ++y) {
    for (int x = h; x < h + mesh.nx; ++x) sum += s(x, y);
  }
  return sum;
}

}  // namespace

TEST(DistDriver, SingleRankReproducesCoreDriver) {
  // nranks == 1 is the degenerate decomposition: no neighbours, every halo
  // exchange is a pure boundary reflection, every allreduce a copy. The run
  // must be bit-identical to core::Driver on the same kernels.
  const Settings s = small_problem(1, tl::core::SolverKind::kCg);

  const Mesh mesh(s.nx, s.ny, s.halo_depth);
  tl::core::Driver serial(s, std::make_unique<tl::core::ReferenceKernels>(mesh));
  const tl::core::RunReport ref = serial.run();

  d::DistributedDriver driver(s, reference_factory());
  const d::DistReport rep = driver.run();

  ASSERT_EQ(rep.run.steps.size(), ref.steps.size());
  const auto& a = rep.run.steps.back().solve;
  const auto& b = ref.steps.back().solve;
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.final_rr, b.final_rr);
  EXPECT_EQ(rep.run.steps.back().summary.internal_energy,
            ref.steps.back().summary.internal_energy);

  ASSERT_EQ(rep.ranks.size(), 1u);
  EXPECT_EQ(rep.ranks[0].comm.bytes, 0u) << "1 rank must move no wire bytes";
}

TEST(DistDriver, FourRanksAgreeWithOneRank) {
  // The R-rank vs 1-rank contract (DESIGN.md §8): identical control flow,
  // residuals equal up to allreduce reassociation, fields equal to ~1e-12.
  for (const auto solver :
       {tl::core::SolverKind::kCg, tl::core::SolverKind::kCheby}) {
    d::DistributedDriver one(small_problem(1, solver), reference_factory());
    d::DistributedDriver four(small_problem(4, solver), reference_factory());
    const d::DistReport r1 = one.run();
    const d::DistReport r4 = four.run();

    const auto& s1 = r1.run.steps.back().solve;
    const auto& s4 = r4.run.steps.back().solve;
    EXPECT_EQ(s4.iterations, s1.iterations);
    EXPECT_EQ(s4.converged, s1.converged);
    if (s1.final_rr != 0.0) {
      EXPECT_NEAR(s4.final_rr / s1.final_rr, 1.0, 1e-6);
    }
    const double u1 = interior_sum(r1.global_mesh, r1.u);
    const double u4 = interior_sum(r4.global_mesh, r4.u);
    EXPECT_NEAR(u4 / u1, 1.0, 1e-10);
    EXPECT_NEAR(interior_sum(r4.global_mesh, r4.energy) /
                    interior_sum(r1.global_mesh, r1.energy),
                1.0, 1e-10);
  }
}

TEST(DistDriver, CommStatsPopulatedAndConsistent) {
  d::DistributedDriver driver(small_problem(4, tl::core::SolverKind::kCg),
                              reference_factory());
  const d::DistReport rep = driver.run();
  ASSERT_EQ(rep.ranks.size(), 4u);
  std::size_t total = 0;
  for (const auto& r : rep.ranks) {
    // Every tile of a 2x2 grid has two neighbours: all ranks exchange.
    EXPECT_GT(r.comm.halo_exchanges, 0u) << "rank " << r.rank;
    EXPECT_GT(r.comm.allreduces, 0u) << "rank " << r.rank;
    EXPECT_GT(r.comm.bytes, 0u) << "rank " << r.rank;
    EXPECT_GT(r.comm.comm_ns, 0.0) << "rank " << r.rank;
    EXPECT_GT(r.kernel_launches, 0u);
    total += r.comm.bytes;
  }
  EXPECT_EQ(rep.total_comm_bytes(), total);
  // Deterministic allreduce keeps every rank on the same control flow, so
  // the allreduce count must match exactly across ranks.
  for (const auto& r : rep.ranks) {
    EXPECT_EQ(r.comm.allreduces, rep.ranks[0].comm.allreduces);
  }
}

TEST(DistDriver, RankSinksSeeCommPhaseEvents) {
  d::DistributedDriver driver(small_problem(2, tl::core::SolverKind::kCg),
                              reference_factory());
  std::vector<tl::sim::RecordingSink> sinks(2);
  driver.set_rank_sinks({&sinks[0], &sinks[1]});
  const d::DistReport rep = driver.run();
  (void)rep;
  for (int rank = 0; rank < 2; ++rank) {
    std::size_t halo_events = 0, allreduce_events = 0, comm_bytes = 0;
    for (const auto& e : sinks[rank].events()) {
      if (e.phase != "comm") continue;
      if (e.name == "halo_exchange") {
        ++halo_events;
        comm_bytes += e.bytes;
      } else if (e.name == "allreduce") {
        ++allreduce_events;
      }
    }
    EXPECT_GT(halo_events, 0u) << "rank " << rank;
    EXPECT_GT(allreduce_events, 0u) << "rank " << rank;
    EXPECT_GT(comm_bytes, 0u) << "rank " << rank;
  }
}

TEST(DistDriver, TileMeshCarriesPhysicalSubExtents) {
  const Mesh global(40, 20, 2);
  const tl::comm::BlockDecomposition decomp(40, 20, 4);
  for (const auto& tile : decomp.tiles()) {
    const Mesh tm = d::tile_mesh(global, tile);
    EXPECT_EQ(tm.nx, tile.nx());
    EXPECT_EQ(tm.ny, tile.ny());
    EXPECT_EQ(tm.halo_depth, global.halo_depth);
    // Cell size is preserved and each tile spans exactly its cell range of
    // the global domain: state painting by cell centre then reproduces the
    // global initial condition on every tile.
    EXPECT_DOUBLE_EQ(tm.dx(), global.dx());
    EXPECT_DOUBLE_EQ(tm.dy(), global.dy());
    EXPECT_DOUBLE_EQ(tm.x_min, global.x_min + tile.x_begin * global.dx());
    EXPECT_DOUBLE_EQ(tm.x_max, global.x_min + tile.x_end * global.dx());
    EXPECT_DOUBLE_EQ(tm.y_min, global.y_min + tile.y_begin * global.dy());
    EXPECT_DOUBLE_EQ(tm.y_max, global.y_min + tile.y_end * global.dy());
  }
}

TEST(DistDriver, MoreRanksThanCellsThrows) {
  Settings s = small_problem(1, tl::core::SolverKind::kCg);
  s.nx = s.ny = 2;
  s.nranks = 64;
  EXPECT_THROW(d::DistributedDriver(s, reference_factory()),
               std::invalid_argument);
}

TEST(DistOverlap, OverlapMatchesBlockingBitIdentically) {
  // The overlap pipeline's exactness contract (DESIGN.md §10): with
  // tl_overlap_comm on, every solver must produce results bit-identical to
  // the blocking exchange — same iterations, same final residual, same
  // global fields to the last ulp.
  for (const auto solver :
       {tl::core::SolverKind::kCg, tl::core::SolverKind::kCheby,
        tl::core::SolverKind::kPpcg, tl::core::SolverKind::kJacobi}) {
    Settings on = small_problem(4, solver);
    on.overlap_comm = true;
    Settings off = on;
    off.overlap_comm = false;

    d::DistributedDriver overlapped(on, reference_factory());
    d::DistributedDriver blocking(off, reference_factory());
    const d::DistReport ro = overlapped.run();
    const d::DistReport rb = blocking.run();

    const auto& so = ro.run.steps.back().solve;
    const auto& sb = rb.run.steps.back().solve;
    EXPECT_EQ(so.iterations, sb.iterations);
    EXPECT_EQ(so.converged, sb.converged);
    EXPECT_EQ(so.final_rr, sb.final_rr);  // bitwise
    ASSERT_EQ(ro.u.size(), rb.u.size());
    for (std::size_t i = 0; i < ro.u.size(); ++i) {
      ASSERT_EQ(ro.u[i], rb.u[i]) << "u cell " << i;
      ASSERT_EQ(ro.energy[i], rb.energy[i]) << "energy cell " << i;
    }
  }
}

TEST(DistOverlap, StatsSplitExposedAndHidden) {
  // The overlapped run must actually take the post/complete path (solver
  // exchanges are eligible) and account hidden comm; the blocking run must
  // report none. Total exchange counts agree — overlap changes when comm
  // happens, never how much. Needs a metered port (the reference oracle's
  // clock stays at zero, leaving no compute window to hide comm behind).
  Settings on = small_problem(4, tl::core::SolverKind::kCg);
  on.overlap_comm = true;
  Settings off = on;
  off.overlap_comm = false;

  const d::DistReport ro = d::DistributedDriver(on, omp3_factory()).run();
  const d::DistReport rb = d::DistributedDriver(off, omp3_factory()).run();
  for (std::size_t r = 0; r < ro.ranks.size(); ++r) {
    const d::CommStats& co = ro.ranks[r].comm;
    const d::CommStats& cb = rb.ranks[r].comm;
    EXPECT_GT(co.overlapped_exchanges, 0u) << "rank " << r;
    EXPECT_GT(co.hidden_ns, 0.0) << "rank " << r;
    EXPECT_EQ(cb.overlapped_exchanges, 0u) << "rank " << r;
    EXPECT_EQ(cb.hidden_ns, 0.0) << "rank " << r;
    EXPECT_EQ(co.halo_exchanges, cb.halo_exchanges) << "rank " << r;
    EXPECT_EQ(co.bytes, cb.bytes) << "rank " << r;
    // Exposed + hidden can never exceed the blocking wire time, and hiding
    // comm must not slow the rank down.
    EXPECT_LE(co.comm_ns, cb.comm_ns) << "rank " << r;
    EXPECT_LE(ro.ranks[r].sim_seconds, rb.ranks[r].sim_seconds)
        << "rank " << r;
  }
}

TEST(DistOverlap, TraceCarriesOverlapPhaseEvents) {
  // Hidden comm emits a trace-only "overlap" event; requires a metered port
  // for the same reason as StatsSplitExposedAndHidden.
  Settings s = small_problem(2, tl::core::SolverKind::kCg);
  s.overlap_comm = true;
  d::DistributedDriver driver(s, omp3_factory());
  std::vector<tl::sim::RecordingSink> sinks(2);
  driver.set_rank_sinks({&sinks[0], &sinks[1]});
  driver.run();
  for (int rank = 0; rank < 2; ++rank) {
    std::size_t overlap_events = 0;
    for (const auto& e : sinks[rank].events()) {
      if (e.phase == "overlap") {
        ++overlap_events;
        EXPECT_EQ(e.name, "halo_overlap");
      }
    }
    EXPECT_GT(overlap_events, 0u) << "rank " << rank;
  }
}

TEST(DistConformance, TwoRankCellPassesAgainstSingleRankReference) {
  // The full --ranks matrix is a ctest (label "dist"); here one cheap cell
  // exercises the run_conformance ranks>1 code path end to end.
  tl::verify::VerifyOptions opt;
  opt.ranks = 2;
  opt.solvers = {tl::core::SolverKind::kCg};
  opt.only_model = tl::sim::parse_model("omp3");
  opt.only_device = tl::sim::parse_device("cpu");
  ASSERT_TRUE(opt.only_model.has_value());
  ASSERT_TRUE(opt.only_device.has_value());
  const auto report = tl::verify::run_conformance(opt);
  ASSERT_EQ(report.cells.size(), 1u);
  EXPECT_TRUE(report.all_pass());
  EXPECT_EQ(report.options.ranks, 2);
}

TEST(DistConformance, OverlapOffCellSkipsBlockingTwin) {
  // --overlap off runs the decomposed cells with the blocking exchange only
  // (no twin, no overlap==blocking metrics) and must still pass.
  tl::verify::VerifyOptions opt;
  opt.ranks = 2;
  opt.overlap = false;
  opt.solvers = {tl::core::SolverKind::kCg};
  opt.only_model = tl::sim::parse_model("omp3");
  opt.only_device = tl::sim::parse_device("cpu");
  const auto report = tl::verify::run_conformance(opt);
  ASSERT_EQ(report.cells.size(), 1u);
  EXPECT_TRUE(report.all_pass());
  for (const auto& m : report.cells[0].metrics) {
    EXPECT_EQ(m.detail.find("overlap==blocking"), std::string::npos);
  }
}
