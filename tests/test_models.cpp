// Unit tests for src/models: the programming-model API layers and the host
// execution pool.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <mutex>
#include <numeric>
#include <thread>
#include <utility>
#include <vector>

#include "models/culike/cuda.hpp"
#include "models/host_pool.hpp"
#include "models/kokkoslike/kokkos.hpp"
#include "models/launcher.hpp"
#include "models/ocllike/opencl.hpp"
#include "models/offload/offload.hpp"
#include "models/omp3/omp3.hpp"
#include "models/rajalike/raja.hpp"

namespace s = tl::sim;

namespace {
s::LaunchInfo tiny_launch(std::size_t items = 64) {
  s::LaunchInfo info;
  info.items = items;
  info.bytes_read = items * 8;
  info.bytes_written = items * 8;
  info.working_set_bytes = items * 16;
  return info;
}
}  // namespace

// ---------------------------------------------------------------------------
// HostPool
// ---------------------------------------------------------------------------

TEST(HostPool, CoversRangeExactlyOnce) {
  for (const unsigned threads : {1u, 2u, 4u, 7u}) {
    models::HostPool pool(threads);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallel_for(0, 1000, [&](std::int64_t b, std::int64_t e) {
      for (std::int64_t i = b; i < e; ++i) hits[i].fetch_add(1);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(HostPool, EmptyRangeIsNoop) {
  models::HostPool pool(4);
  bool called = false;
  pool.parallel_for(5, 5, [&](std::int64_t, std::int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(HostPool, ReduceSumDeterministicAcrossThreadCounts) {
  std::vector<double> data(10'000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = std::sin(static_cast<double>(i));
  }
  auto reduce_with = [&](unsigned threads) {
    models::HostPool pool(threads);
    return pool.parallel_reduce_sum(
        0, static_cast<std::int64_t>(data.size()),
        [&](std::int64_t b, std::int64_t e) {
          double acc = 0.0;
          for (std::int64_t i = b; i < e; ++i) acc += data[i];
          return acc;
        });
  };
  const double serial = reduce_with(1);
  // Chunk-ordered combination: identical result run-to-run per thread count.
  EXPECT_DOUBLE_EQ(reduce_with(4), reduce_with(4));
  EXPECT_NEAR(reduce_with(4), serial, 1e-9);
  EXPECT_NEAR(reduce_with(8), serial, 1e-9);
}

// The race-detector workout: rapid back-to-back dispatches reuse the pool's
// generation/pending handshake with no settling time between them, non-atomic
// writes to disjoint chunks exercise the fork/join happens-before edges, and
// an interleaved reduction reuses the same workers. Run under TSan in CI
// (the tsan preset) this is the test that would flag a broken handshake.
TEST(HostPool, StressRapidRedispatchIsRaceFree) {
  models::HostPool pool(4);
  std::vector<int> data(4096, 0);
  for (int round = 0; round < 200; ++round) {
    pool.parallel_for(0, static_cast<std::int64_t>(data.size()),
                      [&](std::int64_t b, std::int64_t e) {
                        for (std::int64_t i = b; i < e; ++i) {
                          data[static_cast<std::size_t>(i)] += 1;
                        }
                      });
    if (round % 10 == 0) {
      const double sum = pool.parallel_reduce_sum(
          0, static_cast<std::int64_t>(data.size()),
          [&](std::int64_t b, std::int64_t e) {
            double acc = 0.0;
            for (std::int64_t i = b; i < e; ++i) {
              acc += data[static_cast<std::size_t>(i)];
            }
            return acc;
          });
      EXPECT_DOUBLE_EQ(sum, static_cast<double>(data.size()) * (round + 1));
    }
  }
  for (const int v : data) EXPECT_EQ(v, 200);
}

// Independent pools on concurrent caller threads: pools share nothing, so
// this must be race-free; it exercises construction/teardown overlap.
TEST(HostPool, ConcurrentIndependentPools) {
  std::vector<std::thread> callers;
  std::array<double, 3> results{};
  for (int t = 0; t < 3; ++t) {
    callers.emplace_back([&results, t] {
      models::HostPool pool(3);
      results[static_cast<std::size_t>(t)] = pool.parallel_reduce_sum(
          0, 10'000, [](std::int64_t b, std::int64_t e) {
            double acc = 0.0;
            for (std::int64_t i = b; i < e; ++i) {
              acc += static_cast<double>(i);
            }
            return acc;
          });
    });
  }
  for (auto& c : callers) c.join();
  for (const double r : results) EXPECT_DOUBLE_EQ(r, 10'000.0 * 9'999.0 / 2);
}

TEST(HostPool, SmallRangeRunsInline) {
  models::HostPool pool(8);
  const double sum = pool.parallel_reduce_sum(
      0, 3, [](std::int64_t b, std::int64_t e) {
        double acc = 0.0;
        for (std::int64_t i = b; i < e; ++i) acc += static_cast<double>(i);
        return acc;
      });
  EXPECT_DOUBLE_EQ(sum, 3.0);
}

// An explicit grain must be honoured exactly: chunk k covers
// [begin + k*grain, min(begin + (k+1)*grain, end)), for every thread count.
TEST(HostPool, ExplicitGrainProducesExactChunks) {
  constexpr std::int64_t kBegin = 3, kEnd = 103, kGrain = 7;
  for (const unsigned threads : {1u, 2u, 8u}) {
    models::HostPool pool(threads);
    std::mutex mu;
    std::vector<std::pair<std::int64_t, std::int64_t>> chunks;
    pool.parallel_for(
        kBegin, kEnd,
        [&](std::int64_t b, std::int64_t e) {
          std::lock_guard<std::mutex> lock(mu);
          chunks.emplace_back(b, e);
        },
        kGrain);
    std::sort(chunks.begin(), chunks.end());
    const std::int64_t expected = (kEnd - kBegin + kGrain - 1) / kGrain;
    ASSERT_EQ(static_cast<std::int64_t>(chunks.size()), expected);
    for (std::size_t k = 0; k < chunks.size(); ++k) {
      const std::int64_t b = kBegin + static_cast<std::int64_t>(k) * kGrain;
      EXPECT_EQ(chunks[k].first, b);
      EXPECT_EQ(chunks[k].second, std::min(b + kGrain, kEnd));
    }
  }
}

// The default grain is a function of the range only, so chunk boundaries
// (and therefore reduction partial slots) never depend on the thread count.
TEST(HostPool, DefaultGrainIndependentOfThreadCount) {
  EXPECT_EQ(models::HostPool::effective_grain(6400, 0), 100);
  EXPECT_EQ(models::HostPool::effective_grain(10, 0), 1);   // below 64 chunks
  EXPECT_EQ(models::HostPool::effective_grain(6400, 17), 17);  // honoured

  auto chunk_starts = [](unsigned threads) {
    models::HostPool pool(threads);
    std::mutex mu;
    std::vector<std::int64_t> starts;
    pool.parallel_for(0, 1000, [&](std::int64_t b, std::int64_t) {
      std::lock_guard<std::mutex> lock(mu);
      starts.push_back(b);
    });
    std::sort(starts.begin(), starts.end());
    return starts;
  };
  EXPECT_EQ(chunk_starts(1), chunk_starts(8));
}

// Reductions with irregular data and a remainder chunk are bit-identical at
// 1, 2, and 8 threads — the fused kernels rely on exactly this property.
TEST(HostPool, ReduceSumBitIdenticalAcrossThreadCounts) {
  std::vector<double> data(9'973);  // prime: guarantees a ragged last chunk
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = std::sin(static_cast<double>(i)) * 1e3;
  }
  auto reduce_with = [&](unsigned threads, std::int64_t grain) {
    models::HostPool pool(threads);
    return pool.parallel_reduce_sum(
        0, static_cast<std::int64_t>(data.size()),
        [&](std::int64_t b, std::int64_t e) {
          double acc = 0.0;
          for (std::int64_t i = b; i < e; ++i) acc += data[i];
          return acc;
        },
        grain);
  };
  for (const std::int64_t grain : {0ll, 1ll, 64ll, 1000ll}) {
    const double at1 = reduce_with(1, grain);
    EXPECT_EQ(at1, reduce_with(2, grain)) << "grain=" << grain;
    EXPECT_EQ(at1, reduce_with(8, grain)) << "grain=" << grain;
  }
}

// The combination order is the documented pairwise tree over chunk index,
// not a running left-fold: check against a hand-rolled tree.
TEST(HostPool, ReduceSumCombinesPairwiseInChunkOrder) {
  constexpr std::int64_t kGrain = 10, kN = 100;
  std::vector<double> data(kN);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = 1.0 + std::cos(static_cast<double>(i)) * 1e-7;
  }
  models::HostPool pool(4);
  const double got = pool.parallel_reduce_sum(
      0, kN,
      [&](std::int64_t b, std::int64_t e) {
        double acc = 0.0;
        for (std::int64_t i = b; i < e; ++i) acc += data[i];
        return acc;
      },
      kGrain);

  std::vector<double> partials;
  for (std::int64_t b = 0; b < kN; b += kGrain) {
    double acc = 0.0;
    for (std::int64_t i = b; i < std::min(b + kGrain, kN); ++i) acc += data[i];
    partials.push_back(acc);
  }
  for (std::size_t width = 1; width < partials.size(); width *= 2) {
    for (std::size_t i = 0; i + width < partials.size(); i += 2 * width) {
      partials[i] += partials[i + width];
    }
  }
  EXPECT_EQ(got, partials[0]);
}

// ---------------------------------------------------------------------------
// Launcher
// ---------------------------------------------------------------------------

TEST(Launcher, MetersLaunchesAndTransfers) {
  models::Launcher l(s::Model::kCuda, s::DeviceId::kGpuK20X, 1);
  int runs = 0;
  l.run(tiny_launch(), [&] { ++runs; });
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(l.clock().launches(), 1u);
  EXPECT_GT(l.clock().elapsed_ns(), 0.0);
  l.charge_transfer({.name = "t", .bytes = 1024, .to_device = true});
  EXPECT_EQ(l.clock().transfers(), 1u);
  const double before = l.clock().elapsed_ns();
  l.begin_run(2);
  EXPECT_EQ(l.clock().elapsed_ns(), 0.0);
  EXPECT_GT(before, 0.0);
}

// ---------------------------------------------------------------------------
// omp3 layer
// ---------------------------------------------------------------------------

TEST(Omp3Layer, ParallelForAndReduce) {
  omp3::Runtime rt(s::Model::kOmp3Cpp, s::DeviceId::kCpuSandyBridge, 1, 2);
  std::vector<double> v(100, 0.0);
  rt.parallel_for(tiny_launch(), 0, 100,
                  [&](std::int64_t i) { v[static_cast<std::size_t>(i)] = 2.0; });
  const double sum = rt.parallel_reduce(
      tiny_launch(), 0, 100,
      [&](std::int64_t i, double& acc) { acc += v[static_cast<std::size_t>(i)]; });
  EXPECT_DOUBLE_EQ(sum, 200.0);
  EXPECT_EQ(rt.launcher().clock().launches(), 2u);
}

// ---------------------------------------------------------------------------
// Kokkos-like layer
// ---------------------------------------------------------------------------

TEST(KokkosLike, ViewSharedOwnership) {
  kokkoslike::View a("a", 4, 4);
  kokkoslike::View b = a;  // std::shared_ptr-style copy semantics
  a(1, 1) = 7.0;
  EXPECT_DOUBLE_EQ(b(1, 1), 7.0);
  EXPECT_EQ(b.label(), "a");
  EXPECT_EQ(b.size(), 16u);
}

TEST(KokkosLike, ParallelForWritesEveryIndex) {
  kokkoslike::Context ctx(s::Model::kKokkos, s::DeviceId::kCpuSandyBridge);
  kokkoslike::View v("v", 8, 8);
  ctx.parallel_for(tiny_launch(), {0, 64},
                   [=](std::int64_t i) { v[static_cast<std::size_t>(i)] = 1.0; });
  double sum = 0.0;
  ctx.parallel_reduce(tiny_launch(), {0, 64},
                      [=](std::int64_t i, double& acc) {
                        acc += v[static_cast<std::size_t>(i)];
                      },
                      sum);
  EXPECT_DOUBLE_EQ(sum, 64.0);
}

TEST(KokkosLike, CustomJoinReduction) {
  struct MinMax {
    double min = 1e300, max = -1e300;
  };
  struct Functor {
    void init(MinMax& v) const { v = MinMax{}; }
    void join(MinMax& dst, const MinMax& src) const {
      dst.min = std::min(dst.min, src.min);
      dst.max = std::max(dst.max, src.max);
    }
    void operator()(std::int64_t i, MinMax& v) const {
      const double x = static_cast<double>((i * 7) % 13);
      v.min = std::min(v.min, x);
      v.max = std::max(v.max, x);
    }
  };
  kokkoslike::Context ctx(s::Model::kKokkos, s::DeviceId::kCpuSandyBridge);
  MinMax result;
  result.min = 1e300;
  result.max = -1e300;
  ctx.parallel_reduce(tiny_launch(), {0, 100}, Functor{}, result);
  EXPECT_DOUBLE_EQ(result.min, 0.0);
  EXPECT_DOUBLE_EQ(result.max, 12.0);
}

TEST(KokkosLike, TeamPolicyCoversLeagueAndReduces) {
  kokkoslike::Context ctx(s::Model::kKokkosHp, s::DeviceId::kCpuSandyBridge);
  std::vector<int> rows(10, 0);
  ctx.parallel_for_team(tiny_launch(), {10, 4},
                        [&](const kokkoslike::TeamMember& t) {
                          kokkoslike::team_thread_range(t, 3, [&](int) {
                            ++rows[static_cast<std::size_t>(t.league_rank())];
                          });
                        });
  for (const int r : rows) EXPECT_EQ(r, 3);

  double total = 0.0;
  ctx.parallel_reduce_team(tiny_launch(), {10, 4},
                           [&](const kokkoslike::TeamMember& t, double& acc) {
                             kokkoslike::team_thread_range(
                                 t, 5, [&](int i) { acc += i; });
                           },
                           total);
  EXPECT_DOUBLE_EQ(total, 100.0);  // 10 teams x (0+1+2+3+4)
}

TEST(KokkosLike, DeepCopyChargesOnlyOnOffloadDevices) {
  kokkoslike::View v("v", 32, 32);
  kokkoslike::Context host(s::Model::kKokkos, s::DeviceId::kCpuSandyBridge);
  host.deep_copy_to_device(v);
  EXPECT_DOUBLE_EQ(host.launcher().clock().elapsed_ns(), 0.0);
  kokkoslike::Context gpu(s::Model::kKokkos, s::DeviceId::kGpuK20X);
  gpu.deep_copy_to_device(v);
  EXPECT_GT(gpu.launcher().clock().elapsed_ns(), 0.0);
  EXPECT_EQ(gpu.launcher().clock().transfer_bytes(), v.size_bytes());
}

// ---------------------------------------------------------------------------
// RAJA-like layer
// ---------------------------------------------------------------------------

TEST(RajaLike, InteriorIndexSetMatchesRangeSet) {
  const auto list = rajalike::make_interior_index_set(7, 5, 2);
  const auto range = rajalike::make_interior_range_set(7, 5, 2);
  EXPECT_TRUE(list.has_indirection());
  EXPECT_FALSE(range.has_indirection());
  EXPECT_EQ(list.total_length(), 35);
  EXPECT_EQ(list.total_length(), range.total_length());

  rajalike::Context ctx(s::Model::kRaja, s::DeviceId::kCpuSandyBridge);
  std::vector<int> a(11 * 9, 0), b(11 * 9, 0);
  ctx.forall<rajalike::seq_exec>(tiny_launch(), list, [&](std::int64_t i) {
    ++a[static_cast<std::size_t>(i)];
  });
  ctx.forall<rajalike::seq_exec>(tiny_launch(), range, [&](std::int64_t i) {
    ++b[static_cast<std::size_t>(i)];
  });
  EXPECT_EQ(a, b);
  EXPECT_EQ(std::accumulate(a.begin(), a.end(), 0), 35);
}

TEST(RajaLike, PadExcludesBoundaryCells) {
  const auto padded = rajalike::make_interior_index_set(6, 6, 2, 1);
  EXPECT_EQ(padded.total_length(), 16);  // (6-2)^2
}

TEST(RajaLike, ReduceSumThroughLambda) {
  rajalike::Context ctx(s::Model::kRaja, s::DeviceId::kCpuSandyBridge);
  rajalike::ReduceSum sum;
  ctx.forall<rajalike::omp_parallel_for_exec>(
      tiny_launch(), rajalike::RangeSegment{0, 100},
      [&](std::int64_t i) { sum += static_cast<double>(i); });
  EXPECT_DOUBLE_EQ(sum.get(), 4950.0);
}

TEST(RajaLike, BadGeometryThrows) {
  EXPECT_THROW(rajalike::make_interior_index_set(0, 4, 2),
               std::invalid_argument);
  EXPECT_THROW(rajalike::make_interior_index_set(4, 4, 2, 2),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Offload layer
// ---------------------------------------------------------------------------

TEST(Offload, DataScopeChargesMapsByDirection) {
  offload::Runtime rt(s::Model::kOmp4, s::DeviceId::kMicKnc);
  std::vector<double> a(1024, 1.0), b(1024, 2.0);
  {
    offload::DataScope scope(
        rt, {offload::map(std::span<double>(a), offload::MapDir::kTo),
             offload::map(std::span<double>(b), offload::MapDir::kAlloc)});
    EXPECT_TRUE(rt.is_present(a.data()));
    EXPECT_TRUE(rt.is_present(b.data()));
    // One `to` copy so far.
    EXPECT_EQ(rt.launcher().clock().transfers(), 1u);
  }
  // alloc and to don't copy back on exit.
  EXPECT_EQ(rt.launcher().clock().transfers(), 1u);
  EXPECT_FALSE(rt.is_present(a.data()));
}

TEST(Offload, FromDirectionCopiesBackOnExit) {
  offload::Runtime rt(s::Model::kOmp4, s::DeviceId::kMicKnc);
  std::vector<double> a(64, 0.0);
  {
    offload::DataScope scope(
        rt, {offload::map(std::span<double>(a), offload::MapDir::kToFrom)});
    EXPECT_EQ(rt.launcher().clock().transfers(), 1u);
  }
  EXPECT_EQ(rt.launcher().clock().transfers(), 2u);
}

TEST(Offload, NestedScopesRefCount) {
  offload::Runtime rt(s::Model::kOmp4, s::DeviceId::kMicKnc);
  std::vector<double> a(64, 0.0);
  const auto spec = offload::map(std::span<double>(a), offload::MapDir::kTo);
  {
    offload::DataScope outer(rt, {spec});
    {
      offload::DataScope inner(rt, {spec});
      EXPECT_EQ(rt.launcher().clock().transfers(), 1u);  // mapped once
    }
    EXPECT_TRUE(rt.is_present(a.data()));
  }
  EXPECT_FALSE(rt.is_present(a.data()));
}

TEST(Offload, UpdateWithoutMapThrows) {
  offload::Runtime rt(s::Model::kOmp4, s::DeviceId::kMicKnc);
  std::vector<double> a(8, 0.0);
  EXPECT_THROW(rt.update_from(a.data(), 64), std::logic_error);
}

TEST(Offload, HostTargetsSkipMapping) {
  offload::Runtime rt(s::Model::kOmp4, s::DeviceId::kCpuSandyBridge);
  std::vector<double> a(8, 0.0);
  offload::DataScope scope(
      rt, {offload::map(std::span<double>(a), offload::MapDir::kToFrom)});
  EXPECT_EQ(rt.launcher().clock().transfers(), 0u);
  EXPECT_NO_THROW(rt.update_from(a.data(), 64));
}

TEST(Offload, TargetRegionRunsBodyAndCharges) {
  offload::Runtime rt(s::Model::kOmp4, s::DeviceId::kMicKnc);
  double x = 0.0;
  const double sum = omp4::target_parallel_reduce(
      rt, tiny_launch(), 0, 10,
      [&](std::int64_t i, double& acc) { acc += static_cast<double>(i); });
  EXPECT_DOUBLE_EQ(sum, 45.0);
  omp4::target_parallel_for(rt, tiny_launch(), 0, 4,
                            [&](std::int64_t) { x += 1.0; });
  EXPECT_DOUBLE_EQ(x, 4.0);
  EXPECT_EQ(rt.launcher().clock().launches(), 2u);
}

// ---------------------------------------------------------------------------
// OpenCL-like layer
// ---------------------------------------------------------------------------

TEST(OclLike, PlatformListsCatalogue) {
  const auto devices = ocllike::get_platform_devices();
  EXPECT_EQ(devices.size(), s::kAllDevices.size());
}

TEST(OclLike, BufferReadWriteRoundTrip) {
  ocllike::Context ctx(s::Model::kOpenCl, s::DeviceId::kGpuK20X);
  ocllike::CommandQueue queue(ctx);
  ocllike::Buffer buf(ctx, 128);
  std::vector<double> in(128), out(128, 0.0);
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = static_cast<double>(i);
  queue.enqueue_write(buf, in);
  queue.enqueue_read(buf, out);
  EXPECT_EQ(in, out);
  EXPECT_EQ(ctx.launcher().clock().transfers(), 2u);
}

TEST(OclLike, NDRangeKernelSeesCorrectGeometry) {
  ocllike::Context ctx(s::Model::kOpenCl, s::DeviceId::kCpuSandyBridge);
  ocllike::CommandQueue queue(ctx);
  ocllike::Buffer out(ctx, 64);
  auto program = ocllike::Program::build(
      ctx, {{"ids", [](const ocllike::NDItem& item,
                       const std::vector<ocllike::KernelArg>& args) {
               ocllike::Buffer& o = *std::get<ocllike::Buffer*>(args[0]);
               o[item.global_id] =
                   static_cast<double>(item.group_id * 1000 + item.local_id);
             }}});
  ocllike::Kernel k(program, "ids");
  k.set_arg(0, &out);
  queue.enqueue_nd_range(k, tiny_launch(), 64, 16);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[17], 1001.0);
  EXPECT_DOUBLE_EQ(out[63], 3015.0);
}

TEST(OclLike, WorkGroupLocalMemoryIsolatedPerGroup) {
  ocllike::Context ctx(s::Model::kOpenCl, s::DeviceId::kCpuSandyBridge);
  ocllike::CommandQueue queue(ctx);
  ocllike::Buffer partials(ctx, 4);
  auto program = ocllike::Program::build(
      ctx, {{"reduce", [](const ocllike::NDItem& item,
                          const std::vector<ocllike::KernelArg>& args) {
               ocllike::Buffer& p = *std::get<ocllike::Buffer*>(args[0]);
               item.local_mem[item.local_id] =
                   static_cast<double>(item.global_id);
               if (item.local_id + 1 == item.local_size) {
                 double sum = 0.0;
                 for (std::size_t l = 0; l < item.local_size; ++l) {
                   sum += item.local_mem[l];
                 }
                 p[item.group_id] = sum;
               }
             }}});
  ocllike::Kernel k(program, "reduce");
  k.set_arg(0, &partials);
  queue.enqueue_nd_range(k, tiny_launch(), 32, 8);
  EXPECT_DOUBLE_EQ(partials[0], 0 + 1 + 2 + 3 + 4 + 5 + 6 + 7);
  EXPECT_DOUBLE_EQ(partials[3], 24 + 25 + 26 + 27 + 28 + 29 + 30 + 31);
}

TEST(OclLike, ErrorsThrow) {
  ocllike::Context ctx(s::Model::kOpenCl, s::DeviceId::kCpuSandyBridge);
  ocllike::CommandQueue queue(ctx);
  auto program = ocllike::Program::build(ctx, {});
  EXPECT_THROW(ocllike::Kernel(program, "missing"), std::invalid_argument);
  ocllike::Buffer buf(ctx, 8);
  std::vector<double> wrong(9);
  EXPECT_THROW(queue.enqueue_write(buf, wrong), std::invalid_argument);
}

TEST(OclLike, GlobalMustBeMultipleOfLocal) {
  ocllike::Context ctx(s::Model::kOpenCl, s::DeviceId::kCpuSandyBridge);
  ocllike::CommandQueue queue(ctx);
  auto program = ocllike::Program::build(
      ctx,
      {{"nop", [](const ocllike::NDItem&,
                  const std::vector<ocllike::KernelArg>&) {}}});
  ocllike::Kernel k(program, "nop");
  EXPECT_THROW(queue.enqueue_nd_range(k, tiny_launch(), 60, 16),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// CUDA-like layer
// ---------------------------------------------------------------------------

TEST(CuLike, LaunchGeometryAndOverspillGuard) {
  culike::Runtime rt(s::Model::kCuda, s::DeviceId::kGpuK20X);
  culike::DeviceBuffer out(100);
  const unsigned blocks = culike::Runtime::blocks_for(100, 32);
  EXPECT_EQ(blocks, 4u);
  rt.launch(tiny_launch(), culike::Dim3(blocks), culike::Dim3(32), 0,
            [&](const culike::ThreadCtx& ctx) {
              const std::size_t i = ctx.global_thread();
              if (i >= 100) return;
              out[i] = static_cast<double>(ctx.block_idx);
            });
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[33], 1.0);
  EXPECT_DOUBLE_EQ(out[99], 3.0);
}

TEST(CuLike, SharedMemoryBlockReduction) {
  culike::Runtime rt(s::Model::kCuda, s::DeviceId::kGpuK20X);
  culike::DeviceBuffer partials(4);
  rt.launch(tiny_launch(), culike::Dim3(4), culike::Dim3(8), 8,
            [&](const culike::ThreadCtx& ctx) {
              ctx.shared[ctx.thread_idx] =
                  static_cast<double>(ctx.global_thread());
              if (ctx.is_last_in_block()) {
                double sum = 0.0;
                for (unsigned t = 0; t < ctx.block_dim; ++t) {
                  sum += ctx.shared[t];
                }
                partials[ctx.block_idx] = sum;
              }
            });
  EXPECT_DOUBLE_EQ(partials[0], 28.0);   // 0..7
  EXPECT_DOUBLE_EQ(partials[3], 220.0);  // 24..31
}

TEST(CuLike, MemcpyRoundTripAndErrors) {
  culike::Runtime rt(s::Model::kCuda, s::DeviceId::kGpuK20X);
  culike::DeviceBuffer buf(16);
  std::vector<double> in(16, 3.0), out(16, 0.0);
  rt.memcpy_htod(buf, in);
  rt.memcpy_dtoh(out, buf);
  EXPECT_EQ(in, out);
  EXPECT_EQ(rt.launcher().clock().transfers(), 2u);
  std::vector<double> wrong(8);
  EXPECT_THROW(rt.memcpy_htod(buf, wrong), std::invalid_argument);
  EXPECT_THROW(rt.launch(tiny_launch(), culike::Dim3(0), culike::Dim3(8), 0,
                         [](const culike::ThreadCtx&) {}),
               std::invalid_argument);
}
