// Property-based sweeps: randomised/parameterised invariants across the
// decomposition, halo, eigenvalue, and performance-model subsystems.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "comm/decomposition.hpp"
#include "comm/halo.hpp"
#include "core/eigen.hpp"
#include "core/kernel_catalog.hpp"
#include "core/model_traits.hpp"
#include "ports/registry.hpp"
#include "sim/perf_model.hpp"
#include "util/buffer.hpp"
#include "util/rng.hpp"

using namespace tl;

// ---------------------------------------------------------------------------
// Decomposition properties over many shapes
// ---------------------------------------------------------------------------

class DecompositionSweep
    : public testing::TestWithParam<std::tuple<int, int, int>> {};

INSTANTIATE_TEST_SUITE_P(
    Shapes, DecompositionSweep,
    testing::Values(std::tuple{16, 16, 2}, std::tuple{16, 16, 3},
                    std::tuple{100, 40, 5}, std::tuple{40, 100, 5},
                    std::tuple{63, 17, 7}, std::tuple{128, 128, 16},
                    std::tuple{9, 9, 9}, std::tuple{33, 65, 12},
                    std::tuple{1024, 8, 8}, std::tuple{8, 1024, 8}));

TEST_P(DecompositionSweep, PartitionIsExactAndBalanced) {
  const auto [nx, ny, ranks] = GetParam();
  const comm::BlockDecomposition d(nx, ny, ranks);

  // Exact cover.
  long long covered = 0;
  int min_cells = INT32_MAX, max_cells = 0;
  for (const auto& t : d.tiles()) {
    EXPECT_GT(t.nx(), 0);
    EXPECT_GT(t.ny(), 0);
    covered += static_cast<long long>(t.nx()) * t.ny();
    min_cells = std::min(min_cells, t.nx() * t.ny());
    max_cells = std::max(max_cells, t.nx() * t.ny());
  }
  EXPECT_EQ(covered, static_cast<long long>(nx) * ny);

  // Balance: largest tile within one row+column of the smallest.
  const auto& t0 = d.tile(0);
  EXPECT_LE(max_cells - min_cells, t0.nx() + t0.ny() + 1);

  // Mutual neighbours, consistent edges.
  for (const auto& t : d.tiles()) {
    for (const auto f : comm::kAllFaces) {
      if (!t.has_neighbour(f)) continue;
      const auto& n = d.tile(t.neighbour_of(f));
      switch (f) {
        case comm::Face::kLeft:
          EXPECT_EQ(n.x_end, t.x_begin);
          EXPECT_EQ(n.neighbour_of(comm::Face::kRight), t.rank);
          break;
        case comm::Face::kRight:
          EXPECT_EQ(n.x_begin, t.x_end);
          EXPECT_EQ(n.neighbour_of(comm::Face::kLeft), t.rank);
          break;
        case comm::Face::kBottom:
          EXPECT_EQ(n.y_end, t.y_begin);
          EXPECT_EQ(n.neighbour_of(comm::Face::kTop), t.rank);
          break;
        case comm::Face::kTop:
          EXPECT_EQ(n.y_begin, t.y_end);
          EXPECT_EQ(n.neighbour_of(comm::Face::kBottom), t.rank);
          break;
      }
      // Shared extent matches in the orthogonal dimension.
      if (f == comm::Face::kLeft || f == comm::Face::kRight) {
        EXPECT_EQ(n.y_begin, t.y_begin);
        EXPECT_EQ(n.y_end, t.y_end);
      } else {
        EXPECT_EQ(n.x_begin, t.x_begin);
        EXPECT_EQ(n.x_end, t.x_end);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Halo reflection properties over geometries
// ---------------------------------------------------------------------------

class ReflectSweep : public testing::TestWithParam<std::tuple<int, int, int>> {};

INSTANTIATE_TEST_SUITE_P(Geometries, ReflectSweep,
                         testing::Values(std::tuple{5, 5, 1},
                                         std::tuple{5, 5, 2},
                                         std::tuple{3, 9, 2},
                                         std::tuple{9, 3, 2},
                                         std::tuple{17, 11, 3},
                                         std::tuple{64, 64, 2}));

TEST_P(ReflectSweep, ReflectionIsIdempotentAndPreservesInterior) {
  const auto [nx, ny, h] = GetParam();
  const int w = nx + 2 * h, ht = ny + 2 * h;
  util::Buffer<double> buf(static_cast<std::size_t>(w) * ht);
  util::Rng rng(static_cast<std::uint64_t>(nx * 1000 + ny * 10 + h));
  auto s = buf.view2d(w, ht);
  std::vector<double> interior;
  for (int y = h; y < h + ny; ++y) {
    for (int x = h; x < h + nx; ++x) {
      s(x, y) = rng.next_normal();
      interior.push_back(s(x, y));
    }
  }

  comm::reflect_boundary(s, h, comm::kAllFaces);
  util::Buffer<double> once = buf;
  comm::reflect_boundary(s, h, comm::kAllFaces);

  // Idempotent: reflecting twice changes nothing.
  for (std::size_t i = 0; i < buf.size(); ++i) EXPECT_EQ(buf[i], once[i]);

  // Interior untouched.
  std::size_t idx = 0;
  for (int y = h; y < h + ny; ++y) {
    for (int x = h; x < h + nx; ++x) EXPECT_EQ(s(x, y), interior[idx++]);
  }

  // Reflective boundary means zero normal flux: the halo layer adjacent to
  // each face equals the first interior layer.
  for (int y = h; y < h + ny; ++y) {
    EXPECT_EQ(s(h - 1, y), s(h, y));
    EXPECT_EQ(s(h + nx, y), s(h + nx - 1, y));
  }
  for (int x = h; x < h + nx; ++x) {
    EXPECT_EQ(s(x, h - 1), s(x, h));
    EXPECT_EQ(s(x, h + ny), s(x, h + ny - 1));
  }
}

// ---------------------------------------------------------------------------
// Eigen machinery on randomised SPD tridiagonals
// ---------------------------------------------------------------------------

class EigenSweep : public testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Seeds, EigenSweep, testing::Range(1, 11));

TEST_P(EigenSweep, ExtremalEigenvaluesRespectSturmAndGershgorin) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 5 + rng.next_below(20);
  core::Tridiagonal t;
  t.diag.resize(n);
  t.off.resize(n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    t.diag[k] = 2.0 + 3.0 * rng.next_double();
    if (k > 0) t.off[k] = rng.next_double();
  }

  const auto e = core::extremal_eigenvalues(t);
  ASSERT_TRUE(e.valid);
  EXPECT_LE(e.min, e.max);

  // No eigenvalue below min, all below max (within bisection tolerance).
  EXPECT_EQ(core::sturm_count(t, e.min - 1e-6), 0);
  EXPECT_EQ(core::sturm_count(t, e.max + 1e-6), static_cast<int>(n));

  // Gershgorin bounds contain both.
  double lo = 1e300, hi = -1e300;
  for (std::size_t k = 0; k < n; ++k) {
    const double l = (k == 0) ? 0.0 : std::abs(t.off[k]);
    const double r = (k + 1 == n) ? 0.0 : std::abs(t.off[k + 1]);
    lo = std::min(lo, t.diag[k] - l - r);
    hi = std::max(hi, t.diag[k] + l + r);
  }
  EXPECT_GE(e.min, lo - 1e-9);
  EXPECT_LE(e.max, hi + 1e-9);
}

TEST_P(EigenSweep, ChebyCoefficientsConvergeToFixedPoint) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 77);
  const double mn = 0.5 + rng.next_double();
  const double mx = mn * (2.0 + 50.0 * rng.next_double());
  const auto c = core::cheby_coefficients(mn, mx, 200);
  // alphas/betas are positive and converge (the rho recurrence contracts).
  for (std::size_t k = 0; k < c.alphas.size(); ++k) {
    EXPECT_GT(c.alphas[k], 0.0);
    EXPECT_GT(c.betas[k], 0.0);
  }
  const double tail = std::abs(c.alphas[199] - c.alphas[198]);
  const double head = std::abs(c.alphas[1] - c.alphas[0]) + 1e-30;
  EXPECT_LT(tail, head + 1e-12);
  // The fixed point of rho is the classic root expression.
  const double sigma = c.sigma;
  const double rho_fp = sigma - std::sqrt(sigma * sigma - 1.0);
  EXPECT_NEAR(c.alphas[199], rho_fp * rho_fp, 1e-6);
}

// ---------------------------------------------------------------------------
// Performance-model properties across every supported (model, device)
// ---------------------------------------------------------------------------

namespace {
struct Pair {
  sim::Model model;
  sim::DeviceId device;
};
std::vector<Pair> supported_pairs() {
  std::vector<Pair> out;
  for (const auto m : sim::kAllModels) {
    for (const auto d : sim::kAllDevices) {
      if (ports::is_supported(m, d)) out.push_back({m, d});
    }
  }
  return out;
}
std::string pair_name(const testing::TestParamInfo<Pair>& info) {
  std::string name = std::string(sim::model_id(info.param.model)) + "_" +
                     std::string(sim::device_short_name(info.param.device));
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}
}  // namespace

class PerfModelSweep : public testing::TestWithParam<Pair> {};

INSTANTIATE_TEST_SUITE_P(AllSupported, PerfModelSweep,
                         testing::ValuesIn(supported_pairs()), pair_name);

TEST_P(PerfModelSweep, TimeMonotoneInBytes) {
  sim::PerfModel pm(GetParam().model, GetParam().device);
  double last = 0.0;
  for (const std::size_t cells : {1u << 10, 1u << 14, 1u << 18, 1u << 22}) {
    const auto info =
        core::make_launch_info(GetParam().model, core::KernelId::kCgCalcW,
                               cells);
    const double ns = pm.launch_ns(info);
    EXPECT_GT(ns, last);
    last = ns;
  }
}

TEST_P(PerfModelSweep, OverheadDominatesSmallLaunches) {
  sim::PerfModel pm(GetParam().model, GetParam().device);
  const auto tiny =
      core::make_launch_info(GetParam().model, core::KernelId::kCgCalcP, 16);
  // A 16-cell launch is essentially pure overhead.
  EXPECT_LT(pm.launch_ns(tiny), 2.5 * pm.profile().launch_overhead_ns +
                                    pm.profile().reduction_overhead_ns + 1e4);
  EXPECT_GE(pm.launch_ns(tiny), pm.profile().launch_overhead_ns * 0.9);
}

TEST_P(PerfModelSweep, ReductionNeverCheaperThanStreaming) {
  sim::PerfModel pm(GetParam().model, GetParam().device);
  auto info =
      core::make_launch_info(GetParam().model, core::KernelId::kCgCalcW,
                             1u << 20);
  auto plain = info;
  plain.traits.reduction = false;
  EXPECT_GE(pm.launch_ns(info), pm.launch_ns(plain));
}

TEST_P(PerfModelSweep, EveryKernelHasPositiveFiniteCost) {
  sim::PerfModel pm(GetParam().model, GetParam().device);
  for (int k = 0; k <= static_cast<int>(core::KernelId::kHaloUpdate); ++k) {
    const auto info = core::make_launch_info(
        GetParam().model, static_cast<core::KernelId>(k), 1u << 16);
    const double ns = pm.launch_ns(info);
    EXPECT_GT(ns, 0.0);
    EXPECT_TRUE(std::isfinite(ns));
  }
}

TEST_P(PerfModelSweep, EffectiveBandwidthNeverExceedsBoostedCeiling) {
  sim::PerfModel pm(GetParam().model, GetParam().device);
  const auto& dev = pm.device();
  for (const std::size_t ws : {1u << 12, 1u << 20, 1u << 26, 1u << 30}) {
    const auto info = core::make_launch_info(
        GetParam().model, core::KernelId::kCgCalcW, 1u << 16);
    const double bw = pm.effective_bandwidth_gbs(info.traits, ws);
    EXPECT_GT(bw, 0.0);
    EXPECT_LE(bw, dev.stream_bw_gbs * dev.cache_bw_boost + 1e-9);
  }
}

// ---------------------------------------------------------------------------
// Kernel catalogue properties
// ---------------------------------------------------------------------------

TEST(CatalogProperties, AllKernelsHaveStreamsAndNames) {
  for (int k = 0; k <= static_cast<int>(core::KernelId::kHaloUpdate); ++k) {
    const auto& cost = core::kernel_cost(static_cast<core::KernelId>(k));
    EXPECT_FALSE(cost.name.empty());
    EXPECT_GT(cost.reads + cost.writes, 0);
    EXPECT_GE(cost.vector_sensitivity, 0.0);
    EXPECT_LE(cost.vector_sensitivity, 1.0);
  }
}

TEST(CatalogProperties, CgIterationMovesThirteenStreams) {
  // The CG iteration's traffic (w + ur + p kernels) is 13 field streams —
  // the figure the bandwidth analysis in EXPERIMENTS.md relies on.
  int streams = 0;
  for (const auto id : {core::KernelId::kCgCalcW, core::KernelId::kCgCalcUr,
                        core::KernelId::kCgCalcP}) {
    const auto& c = core::kernel_cost(id);
    streams += c.reads + c.writes;
  }
  EXPECT_EQ(streams, 13);
}

TEST(CatalogProperties, LaunchInfoScalesLinearly) {
  for (const auto m : {sim::Model::kFortran, sim::Model::kKokkos}) {
    const auto small = core::make_launch_info(m, core::KernelId::kCgInit, 100);
    const auto large = core::make_launch_info(m, core::KernelId::kCgInit, 1000);
    EXPECT_EQ(10 * small.bytes_read, large.bytes_read);
    EXPECT_EQ(10 * small.bytes_written, large.bytes_written);
    EXPECT_EQ(10 * small.flops, large.flops);
  }
}
