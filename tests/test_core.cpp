// Unit tests for src/core: geometry, settings, state painting, kernel
// catalogue, eigenvalue machinery, reference kernels, solvers, driver.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/driver.hpp"
#include "core/eigen.hpp"
#include "core/iteration_model.hpp"
#include "core/kernel_catalog.hpp"
#include "core/model_traits.hpp"
#include "core/reference_kernels.hpp"
#include "core/settings.hpp"
#include "core/state_init.hpp"

using namespace tl::core;
namespace s = tl::sim;

// ---------------------------------------------------------------------------
// Mesh
// ---------------------------------------------------------------------------

TEST(Mesh, GeometryDerivedQuantities) {
  Mesh m(10, 20, 2);
  m.x_min = 0.0;
  m.x_max = 10.0;
  m.y_min = 0.0;
  m.y_max = 10.0;
  EXPECT_EQ(m.padded_nx(), 14);
  EXPECT_EQ(m.padded_ny(), 24);
  EXPECT_EQ(m.interior_cells(), 200u);
  EXPECT_DOUBLE_EQ(m.dx(), 1.0);
  EXPECT_DOUBLE_EQ(m.dy(), 0.5);
  EXPECT_DOUBLE_EQ(m.cell_centre_x(2), 0.5);  // first interior cell
  EXPECT_TRUE(m.is_interior(2, 2));
  EXPECT_FALSE(m.is_interior(1, 2));
  EXPECT_FALSE(m.is_interior(12, 2));
}

TEST(Mesh, InvalidGeometryThrows) {
  EXPECT_THROW(Mesh(0, 4), std::invalid_argument);
  EXPECT_THROW(Mesh(4, 4, 0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Settings
// ---------------------------------------------------------------------------

TEST(Settings, DefaultProblemIsValid) {
  const Settings s = Settings::default_problem();
  EXPECT_NO_THROW(s.validate());
  EXPECT_EQ(s.states.size(), 3u);
  EXPECT_DOUBLE_EQ(s.states[0].density, 100.0);
}

TEST(Settings, FromConfigParsesDeck) {
  const auto cfg = tl::util::IniConfig::parse(
      "x_cells=256\n"
      "y_cells=128\n"
      "tl_use_ppcg\n"
      "tl_eps=1e-12\n"
      "tl_coefficient=recip_conductivity\n"
      "state 1 density=10 energy=1\n"
      "state 2 density=0.5 energy=3 xmin=1 xmax=2 ymin=1 ymax=2\n");
  const Settings s = Settings::from_config(cfg);
  EXPECT_EQ(s.nx, 256);
  EXPECT_EQ(s.ny, 128);
  EXPECT_EQ(s.solver, SolverKind::kPpcg);
  EXPECT_EQ(s.coefficient, Coefficient::kRecipConductivity);
  ASSERT_EQ(s.states.size(), 2u);
  EXPECT_DOUBLE_EQ(s.states[1].energy, 3.0);
}

TEST(Settings, ValidationCatchesNonsense) {
  Settings s = Settings::default_problem();
  s.eps = -1.0;
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s = Settings::default_problem();
  s.states.clear();
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s = Settings::default_problem();
  s.cg_prep_iters = 1;
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// State painting
// ---------------------------------------------------------------------------

TEST(StateInit, PaintsBackgroundAndRegions) {
  Settings s = Settings::default_problem();
  s.nx = s.ny = 20;
  Mesh mesh(20, 20, 2);
  Chunk chunk(mesh);
  apply_initial_states(chunk, s);
  const auto density = chunk.field(FieldId::kDensity);
  const auto energy = chunk.field(FieldId::kEnergy0);
  // Cell (2,2) is (0.25, 0.25): inside state 2's rectangle [0,5]x[0,2].
  EXPECT_DOUBLE_EQ(density(2, 2), 0.1);
  EXPECT_DOUBLE_EQ(energy(2, 2), 25.0);
  // Top-right corner is background.
  EXPECT_DOUBLE_EQ(density(21, 21), 100.0);
  EXPECT_DOUBLE_EQ(energy(21, 21), 0.0001);
}

TEST(StateInit, LaterStatesOverwriteEarlier) {
  Settings s = Settings::default_problem();
  s.nx = s.ny = 16;
  s.states.push_back(StateRegion{.density = 7.0, .energy = 9.0,
                                 .x_min = 0.0, .x_max = 10.0,
                                 .y_min = 0.0, .y_max = 10.0});
  Mesh mesh(16, 16, 2);
  Chunk chunk(mesh);
  apply_initial_states(chunk, s);
  EXPECT_DOUBLE_EQ(chunk.field(FieldId::kDensity)(8, 8), 7.0);
}

// ---------------------------------------------------------------------------
// Kernel catalogue + model traits
// ---------------------------------------------------------------------------

TEST(KernelCatalog, BytesScaleWithStreams) {
  const std::size_t n = 1000;
  const auto info = base_launch_info(KernelId::kCgCalcW, n);
  EXPECT_EQ(info.bytes_read, 3 * n * 8);
  EXPECT_EQ(info.bytes_written, 1 * n * 8);
  EXPECT_TRUE(info.traits.reduction);
  EXPECT_EQ(info.items, n);
}

TEST(KernelCatalog, ChebyIterateIsVectorCritical) {
  const auto cheby = base_launch_info(KernelId::kChebyIterate, 100);
  const auto cg = base_launch_info(KernelId::kCgCalcW, 100);
  EXPECT_GT(cheby.traits.vector_sensitivity, cg.traits.vector_sensitivity);
  EXPECT_FALSE(cheby.traits.reduction);
}

TEST(KernelCatalog, HaloBytesArePerimeter) {
  const auto info = halo_launch_info(100, 50, 2, 1);
  const std::size_t perimeter = 2 * (100 + 50);
  EXPECT_EQ(info.bytes_read, perimeter * 2 * 8);
  EXPECT_FALSE(info.traits.reduction);
}

TEST(ModelTraits, DecorationPerModel) {
  const std::size_t n = 64;
  EXPECT_TRUE(make_launch_info(s::Model::kKokkos, KernelId::kCgCalcW, n)
                  .traits.interior_branch);
  EXPECT_FALSE(make_launch_info(s::Model::kKokkosHp, KernelId::kCgCalcW, n)
                   .traits.interior_branch);
  EXPECT_TRUE(make_launch_info(s::Model::kKokkosHp, KernelId::kCgCalcW, n)
                  .traits.hierarchical);
  EXPECT_TRUE(make_launch_info(s::Model::kRaja, KernelId::kCgCalcW, n)
                  .traits.indirection);
  EXPECT_TRUE(make_launch_info(s::Model::kRajaSimd, KernelId::kChebyIterate, n)
                  .traits.indirection);
  EXPECT_FALSE(make_launch_info(s::Model::kCuda, KernelId::kCgCalcW, n)
                   .traits.indirection);
  EXPECT_FALSE(make_launch_info(s::Model::kKokkos, KernelId::kHaloUpdate, n)
                   .traits.interior_branch);
}

// ---------------------------------------------------------------------------
// Eigen machinery
// ---------------------------------------------------------------------------

TEST(Eigen, LanczosTridiagonalFromCgScalars) {
  const double alphas[] = {0.5, 0.25};
  const double betas[] = {0.1};
  const auto t = lanczos_tridiagonal(alphas, betas);
  ASSERT_EQ(t.diag.size(), 2u);
  EXPECT_DOUBLE_EQ(t.diag[0], 2.0);
  EXPECT_DOUBLE_EQ(t.diag[1], 4.0 + 0.1 / 0.5);
  EXPECT_DOUBLE_EQ(t.off[1], std::sqrt(0.1) / 0.5);
}

TEST(Eigen, LanczosRejectsBadInput) {
  const double one_alpha[] = {0.5};
  const double no_beta[] = {0.0};
  EXPECT_THROW(lanczos_tridiagonal(one_alpha, {}), std::invalid_argument);
  const double bad_alphas[] = {0.5, -0.1};
  EXPECT_THROW(lanczos_tridiagonal(bad_alphas, no_beta), std::invalid_argument);
}

TEST(Eigen, SturmCountsAndExtremalEigenvalues) {
  // T = tridiag(diag=2, off=1), n=4: eigenvalues 2 - 2 cos(k pi / 5).
  Tridiagonal t;
  t.diag = {2, 2, 2, 2};
  t.off = {0, 1, 1, 1};
  EXPECT_EQ(sturm_count(t, 0.0), 0);
  EXPECT_EQ(sturm_count(t, 2.0), 2);
  EXPECT_EQ(sturm_count(t, 4.1), 4);
  const auto e = extremal_eigenvalues(t);
  ASSERT_TRUE(e.valid);
  const double expected_min = 2.0 - 2.0 * std::cos(M_PI / 5.0);
  const double expected_max = 2.0 - 2.0 * std::cos(4.0 * M_PI / 5.0);
  EXPECT_NEAR(e.min, expected_min, 1e-9);
  EXPECT_NEAR(e.max, expected_max, 1e-9);
}

TEST(Eigen, SafetyWidensTheSpectrum) {
  const double alphas[] = {1.0, 1.0, 1.0};
  const double betas[] = {0.5, 0.5};
  const auto tight = estimate_spectrum(alphas, betas, 0.0);
  const auto wide = estimate_spectrum(alphas, betas, 0.2);
  ASSERT_TRUE(tight.valid);
  ASSERT_TRUE(wide.valid);
  EXPECT_LT(wide.min, tight.min);
  EXPECT_GT(wide.max, tight.max);
}

TEST(Eigen, ChebyCoefficientsRecurrence) {
  const auto c = cheby_coefficients(1.0, 9.0, 5);
  EXPECT_DOUBLE_EQ(c.theta, 5.0);
  EXPECT_DOUBLE_EQ(c.delta, 4.0);
  EXPECT_DOUBLE_EQ(c.sigma, 1.25);
  ASSERT_EQ(c.alphas.size(), 5u);
  // First step: rho_new = 1/(2 sigma - 1/sigma).
  const double rho1 = 1.0 / (2.5 - 0.8);
  EXPECT_NEAR(c.alphas[0], rho1 * 0.8, 1e-12);
  EXPECT_NEAR(c.betas[0], 2.0 * rho1 / 4.0, 1e-12);
  EXPECT_THROW(cheby_coefficients(2.0, 1.0, 3), std::invalid_argument);
}

TEST(Eigen, IterationEstimateGrowsWithConditionNumber) {
  const int well = cheby_iteration_estimate(1.0, 4.0, 1e-10);
  const int ill = cheby_iteration_estimate(1.0, 400.0, 1e-10);
  EXPECT_GT(ill, well);
  EXPECT_GT(well, 1);
  EXPECT_THROW(cheby_iteration_estimate(0.0, 1.0, 0.5), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Reference kernels: local properties
// ---------------------------------------------------------------------------

namespace {
std::unique_ptr<ReferenceKernels> prepared_reference(const Settings& s) {
  Mesh mesh(s.nx, s.ny, s.halo_depth);
  Chunk chunk(mesh);
  apply_initial_states(chunk, s);
  auto k = std::make_unique<ReferenceKernels>(mesh);
  k->upload_state(chunk);
  k->halo_update(kMaskDensity | kMaskEnergy0, mesh.halo_depth);
  k->init_u();
  const double rx = s.dt_init / (mesh.dx() * mesh.dx());
  k->init_coefficients(s.coefficient, rx, rx);
  k->halo_update(kMaskU, 1);
  return k;
}
}  // namespace

TEST(ReferenceKernels, MatrixRowSumsAreOne) {
  // A has row sum 1 (Neumann boundaries): A applied to a constant vector
  // returns the constant.
  Settings s = Settings::default_problem();
  s.nx = s.ny = 12;
  auto k = prepared_reference(s);
  auto u = k->field(FieldId::kU);
  for (std::size_t i = 0; i < u.size(); ++i) u[i] = 3.25;
  k->calc_residual();  // r = u0 - A u
  auto r = k->field(FieldId::kR);
  auto u0 = k->field(FieldId::kU0);
  const int h = 2;
  for (int y = h; y < h + s.ny; ++y) {
    for (int x = h; x < h + s.nx; ++x) {
      EXPECT_NEAR(r(x, y), u0(x, y) - 3.25, 1e-10);
    }
  }
}

TEST(ReferenceKernels, CgInitResidualEqualsCalcResidual) {
  Settings s = Settings::default_problem();
  s.nx = s.ny = 16;
  auto k = prepared_reference(s);
  const double rro = k->cg_init();
  EXPECT_GT(rro, 0.0);
  // r from cg_init must equal u0 - A u computed independently.
  std::vector<double> r_cg(k->field(FieldId::kR).size());
  for (std::size_t i = 0; i < r_cg.size(); ++i) {
    r_cg[i] = k->field(FieldId::kR)[i];
  }
  k->calc_residual();
  for (std::size_t i = 0; i < r_cg.size(); ++i) {
    EXPECT_DOUBLE_EQ(r_cg[i], k->field(FieldId::kR)[i]);
  }
  EXPECT_NEAR(k->calc_2norm(NormTarget::kResidual), rro, rro * 1e-12);
}

TEST(ReferenceKernels, FieldSummaryMatchesAnalyticInitialState) {
  Settings s = Settings::default_problem();
  s.nx = s.ny = 40;  // divides the state rectangles exactly
  auto k = prepared_reference(s);
  const FieldSummary sum = k->field_summary();
  EXPECT_NEAR(sum.volume, 100.0, 1e-9);
  // mass = 100*(100 - 10 - 12) + 0.1*(10 + 12) per unit cell area:
  // state2 covers [0,5]x[0,2] (area 10), state3 [3,7]x[5,8] (area 12).
  const double expected_mass = 100.0 * (100.0 - 22.0) + 0.1 * 22.0;
  EXPECT_NEAR(sum.mass, expected_mass, 1e-9);
  const double expected_ie =
      100.0 * 0.0001 * (100.0 - 22.0) + 0.1 * (25.0 * 10.0 + 0.1 * 12.0);
  EXPECT_NEAR(sum.internal_energy, expected_ie, 1e-9);
}

// ---------------------------------------------------------------------------
// Solvers on the reference kernels
// ---------------------------------------------------------------------------

namespace {
RunReport run_reference(SolverKind solver, int n, int steps = 1,
                        double eps = 1e-15) {
  Settings s = Settings::default_problem();
  s.nx = s.ny = n;
  s.solver = solver;
  s.end_step = steps;
  s.eps = eps;
  Driver driver(s, std::make_unique<ReferenceKernels>(Mesh(n, n, s.halo_depth)));
  return driver.run();
}
}  // namespace

TEST(Solvers, AllConvergeOnDefaultProblem) {
  for (const SolverKind solver : kAllSolvers) {
    const RunReport r = run_reference(solver, 64);
    ASSERT_EQ(r.steps.size(), 1u);
    EXPECT_TRUE(r.steps[0].solve.converged) << solver_name(solver);
    EXPECT_LT(r.steps[0].solve.final_rr, 1e-15);
    EXPECT_GT(r.steps[0].solve.iterations, 5);
  }
}

TEST(Solvers, JacobiConvergesAndAgreesWithCg) {
  // TeaLeaf's explicit baseline: far more iterations than CG, same answer.
  const RunReport jacobi = run_reference(SolverKind::kJacobi, 48, 1, 1e-12);
  const RunReport cg = run_reference(SolverKind::kCg, 48, 1, 1e-12);
  ASSERT_TRUE(jacobi.steps[0].solve.converged);
  EXPECT_GT(jacobi.steps[0].solve.iterations,
            2 * cg.steps[0].solve.iterations);
  const double t = cg.steps[0].summary.temperature;
  EXPECT_NEAR(jacobi.steps[0].summary.temperature, t, std::abs(t) * 1e-5);
}

TEST(Solvers, SolversAgreeOnTheAnswer) {
  const RunReport cg = run_reference(SolverKind::kCg, 48);
  const RunReport cheby = run_reference(SolverKind::kCheby, 48);
  const RunReport ppcg = run_reference(SolverKind::kPpcg, 48);
  const double t = cg.steps[0].summary.temperature;
  EXPECT_NEAR(cheby.steps[0].summary.temperature, t, std::abs(t) * 1e-9);
  EXPECT_NEAR(ppcg.steps[0].summary.temperature, t, std::abs(t) * 1e-9);
}

TEST(Solvers, EnergyIsConservedByTheSolve) {
  // Heat conduction with reflective boundaries conserves density*energy
  // integral: temperature (volume-weighted u) equals the initial internal
  // energy integral.
  const RunReport r = run_reference(SolverKind::kCg, 40);
  const auto& sum = r.steps[0].summary;
  const double expected_ie =
      100.0 * 0.0001 * (100.0 - 22.0) + 0.1 * (25.0 * 10.0 + 0.1 * 12.0);
  EXPECT_NEAR(sum.temperature, expected_ie, std::abs(expected_ie) * 1e-8);
}

TEST(Solvers, PpcgUsesFewerOuterIterationsThanCg) {
  const RunReport cg = run_reference(SolverKind::kCg, 96);
  const RunReport ppcg = run_reference(SolverKind::kPpcg, 96);
  EXPECT_LT(ppcg.steps[0].solve.iterations, cg.steps[0].solve.iterations);
  EXPECT_GT(ppcg.steps[0].solve.inner_iterations, 0);
}

TEST(Solvers, ChebyRecordsSpectrum) {
  const RunReport r = run_reference(SolverKind::kCheby, 64);
  const auto& spec = r.steps[0].solve.spectrum;
  EXPECT_TRUE(spec.valid);
  EXPECT_GT(spec.min, 0.0);
  EXPECT_GT(spec.max, spec.min);
  // The operator's spectrum sits in (0, 1 + 8 rx]-ish; min close to 1.
  EXPECT_LT(spec.max / spec.min, 1e4);
}

TEST(Solvers, TighterToleranceNeedsMoreIterations) {
  const RunReport loose = run_reference(SolverKind::kCg, 64, 1, 1e-8);
  const RunReport tight = run_reference(SolverKind::kCg, 64, 1, 1e-18);
  EXPECT_LT(loose.steps[0].solve.iterations, tight.steps[0].solve.iterations);
}

TEST(Driver, MultiStepDiffusionFlattensTemperatureField) {
  const RunReport r = run_reference(SolverKind::kCg, 32, 4);
  ASSERT_EQ(r.steps.size(), 4u);
  // Total heat is conserved across steps...
  EXPECT_NEAR(r.steps[3].summary.temperature, r.steps[0].summary.temperature,
              std::abs(r.steps[0].summary.temperature) * 1e-7);
  // ...while successive solves start closer to equilibrium (fewer iters).
  EXPECT_LE(r.steps[3].solve.iterations, r.steps[0].solve.iterations);
}

TEST(Driver, ReportsAggregates) {
  const RunReport r = run_reference(SolverKind::kCg, 32, 2);
  EXPECT_EQ(r.total_iterations(),
            r.steps[0].solve.iterations + r.steps[1].solve.iterations);
  // Reference kernels do not meter simulated time.
  EXPECT_DOUBLE_EQ(r.sim_total_seconds, 0.0);
}

// ---------------------------------------------------------------------------
// Iteration model
// ---------------------------------------------------------------------------

TEST(IterationModel, FitsGrowingIterationCounts) {
  Settings proto = Settings::default_problem();
  const std::vector<int> ladder = {32, 48, 64, 96};
  const IterationModel m =
      calibrate_iteration_model(SolverKind::kCg, proto, ladder);
  ASSERT_EQ(m.points.size(), 4u);
  for (const auto& p : m.points) EXPECT_TRUE(p.converged);
  EXPECT_GT(m.outer_fit.exponent, 0.2);  // grows with mesh size
  EXPECT_LT(m.outer_fit.exponent, 2.0);
  EXPECT_GT(m.outer_fit.r2, 0.9);
  // Prediction is monotone and plausible at the calibration points.
  EXPECT_GT(m.predict_outer(512), m.predict_outer(128));
  EXPECT_NEAR(m.predict_outer(96), m.points[3].outer_iterations,
              0.35 * m.points[3].outer_iterations);
}

TEST(IterationModel, PpcgTracksInnerIterations) {
  Settings proto = Settings::default_problem();
  const std::vector<int> ladder = {32, 64};
  const IterationModel m =
      calibrate_iteration_model(SolverKind::kPpcg, proto, ladder);
  EXPECT_GT(m.inner_per_outer, 0.0);
}

TEST(IterationModel, RejectsTinyLadder) {
  Settings proto = Settings::default_problem();
  const std::vector<int> ladder = {32};
  EXPECT_THROW(calibrate_iteration_model(SolverKind::kCg, proto, ladder),
               std::invalid_argument);
}
