// Solve-service battery: JobQueue scheduling semantics (FIFO, priority,
// aging, bounded blocking, close/drain), tenant-pure batching, worker-pool
// drain-on-shutdown, and the service's core promise — results bit-identical
// to standalone DistributedDriver runs for every solver, including
// multi-rank scenarios. The mini-soak at the end is sized to be meaningful
// under TSan (the CI TSan leg runs this binary).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ports/registry.hpp"
#include "service/entry.hpp"
#include "service/job.hpp"
#include "service/pool.hpp"
#include "service/queue.hpp"
#include "service/report.hpp"
#include "service/session.hpp"
#include "util/json.hpp"

namespace {

using namespace tl;
using service::Dispatch;
using service::Job;
using service::JobQueue;
using service::JobResult;
using service::Priority;
using service::Scenario;
using service::ServiceConfig;
using service::ServiceReport;
using service::SolveService;

Scenario tiny_scenario(core::SolverKind solver = core::SolverKind::kCg,
                       int nx = 16, int nranks = 1) {
  Scenario s;
  s.settings = core::Settings::default_problem();
  s.settings.nx = nx;
  s.settings.ny = nx;
  s.settings.nranks = nranks;
  s.settings.solver = solver;
  s.settings.eps = 1e-6;
  s.settings.max_iters = 200;
  s.settings.end_step = 1;
  return s;
}

Job make_job(std::string tenant, Priority p,
             Scenario scenario = tiny_scenario()) {
  Job job;
  job.tenant = std::move(tenant);
  job.priority = p;
  job.scenario = std::move(scenario);
  return job;
}

bool checksums_equal(const verify::FieldChecksum& a,
                     const verify::FieldChecksum& b) {
  return a.sum == b.sum && a.l2 == b.l2 && a.min == b.min && a.max == b.max;
}

// -- Job ---------------------------------------------------------------------

TEST(ServiceJob, PriorityNamesRoundTrip) {
  for (Priority p :
       {Priority::kHigh, Priority::kNormal, Priority::kLow}) {
    const auto parsed = service::parse_priority(service::priority_name(p));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, p);
  }
  EXPECT_FALSE(service::parse_priority("urgent").has_value());
}

TEST(ServiceJob, ScenarioKeyEncodesIdentity) {
  const Scenario a = tiny_scenario(core::SolverKind::kCg, 16, 1);
  Scenario b = a;
  EXPECT_EQ(a.key(), b.key());
  b.settings.nranks = 4;
  EXPECT_NE(a.key(), b.key());
  Scenario c = a;
  c.settings.solver = core::SolverKind::kPpcg;
  EXPECT_NE(a.key(), c.key());
}

// -- JobQueue ----------------------------------------------------------------

TEST(ServiceQueue, RejectsZeroCapacityOrAging) {
  EXPECT_THROW(JobQueue(0), std::invalid_argument);
  EXPECT_THROW(JobQueue(4, 0), std::invalid_argument);
}

TEST(ServiceQueue, FifoWithinOnePriorityClass) {
  JobQueue q(8);
  for (int i = 0; i < 4; ++i) {
    Job job = make_job("acme", Priority::kNormal);
    job.id = static_cast<std::uint64_t>(i + 1);
    ASSERT_TRUE(q.try_push(std::move(job)));
  }
  for (int i = 0; i < 4; ++i) {
    const auto d = q.pop();
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->job.id, static_cast<std::uint64_t>(i + 1));
  }
}

TEST(ServiceQueue, HigherPriorityServedFirst) {
  JobQueue q(8);
  Job low = make_job("acme", Priority::kLow);
  low.id = 1;
  Job normal = make_job("acme", Priority::kNormal);
  normal.id = 2;
  Job high = make_job("acme", Priority::kHigh);
  high.id = 3;
  ASSERT_TRUE(q.try_push(std::move(low)));
  ASSERT_TRUE(q.try_push(std::move(normal)));
  ASSERT_TRUE(q.try_push(std::move(high)));
  EXPECT_EQ(q.pop()->job.id, 3u);  // high
  EXPECT_EQ(q.pop()->job.id, 2u);  // normal
  EXPECT_EQ(q.pop()->job.id, 1u);  // low
}

TEST(ServiceQueue, AgingPromotesStarvedLowJob) {
  // aging_interval = 2: the low job reaches effective priority 0 after 4
  // dispatches and must then beat high jobs submitted after it.
  JobQueue q(64, 2);
  Job low = make_job("tortoise", Priority::kLow);
  low.id = 999;
  ASSERT_TRUE(q.try_push(std::move(low)));
  bool low_seen = false;
  std::uint64_t pops = 0;
  for (std::uint64_t i = 0; i < 16 && !low_seen; ++i) {
    Job high = make_job("hare", Priority::kHigh);
    high.id = i + 1;
    ASSERT_TRUE(q.try_push(std::move(high)));
    const auto d = q.pop();
    ASSERT_TRUE(d.has_value());
    ++pops;
    if (d->job.id == 999u) {
      low_seen = true;
      EXPECT_LE(d->wait_pops, q.fairness_bound(1));
    }
  }
  EXPECT_TRUE(low_seen) << "low-priority job starved past the aging bound";
  EXPECT_LE(pops, q.fairness_bound(1));
}

TEST(ServiceQueue, FairnessBoundFormula) {
  JobQueue q(32, 4);
  // (kPriorityLevels - 1) * aging + capacity, scaled by the batch width.
  EXPECT_EQ(q.fairness_bound(1), (2u * 4u + 32u));
  EXPECT_EQ(q.fairness_bound(8), 8u * (2u * 4u + 32u));
}

TEST(ServiceQueue, TryPushFullAndBlockedPushUnblocks) {
  JobQueue q(2);
  ASSERT_TRUE(q.try_push(make_job("a", Priority::kNormal)));
  ASSERT_TRUE(q.try_push(make_job("a", Priority::kNormal)));
  EXPECT_FALSE(q.try_push(make_job("a", Priority::kNormal)));  // full

  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.push(make_job("a", Priority::kNormal)));  // blocks
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());  // still waiting for space
  ASSERT_TRUE(q.pop().has_value());
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_GE(q.stats().blocked_pushes, 1u);
}

TEST(ServiceQueue, CloseDrainsThenSignalsExit) {
  JobQueue q(8);
  ASSERT_TRUE(q.try_push(make_job("a", Priority::kNormal)));
  ASSERT_TRUE(q.try_push(make_job("a", Priority::kLow)));
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.try_push(make_job("a", Priority::kNormal)));
  EXPECT_FALSE(q.push(make_job("a", Priority::kNormal)));
  EXPECT_TRUE(q.pop().has_value());   // drains...
  EXPECT_TRUE(q.pop().has_value());
  EXPECT_FALSE(q.pop().has_value());  // ...then exit signal
  EXPECT_TRUE(q.pop_batch(4).empty());
}

TEST(ServiceQueue, CloseWakesBlockedPop) {
  JobQueue q(4);
  std::thread consumer([&] { EXPECT_FALSE(q.pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  consumer.join();
}

TEST(ServiceQueue, BatchIsTenantPureAndFifo) {
  JobQueue q(16);
  const char* tenants[] = {"acme", "acme", "burl", "acme", "acme"};
  for (int i = 0; i < 5; ++i) {
    Job job = make_job(tenants[i], Priority::kNormal);
    job.id = static_cast<std::uint64_t>(i + 1);
    ASSERT_TRUE(q.try_push(std::move(job)));
  }
  // Head is acme#1; the extension takes acme jobs in their FIFO order,
  // skipping past burl#3 — which then heads the next scheduling decision.
  const auto batch = q.pop_batch(4);
  ASSERT_EQ(batch.size(), 4u);
  EXPECT_EQ(batch[0].job.id, 1u);
  EXPECT_EQ(batch[1].job.id, 2u);
  EXPECT_EQ(batch[2].job.id, 4u);
  EXPECT_EQ(batch[3].job.id, 5u);
  for (const Dispatch& d : batch) EXPECT_EQ(d.job.tenant, "acme");
  const auto next = q.pop_batch(4);
  ASSERT_EQ(next.size(), 1u);
  EXPECT_EQ(next.front().job.tenant, "burl");
}

TEST(ServiceQueue, BatchNeverCrossesPriorityClass) {
  JobQueue q(16);
  Job high = make_job("acme", Priority::kHigh);
  high.id = 1;
  Job normal = make_job("acme", Priority::kNormal);
  normal.id = 2;
  ASSERT_TRUE(q.try_push(std::move(high)));
  ASSERT_TRUE(q.try_push(std::move(normal)));
  // Same tenant, but the normal-class job must not ride the high batch.
  const auto batch = q.pop_batch(8);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].job.id, 1u);
}

// -- Session -----------------------------------------------------------------

TEST(ServiceSession, RunsAJobAndMetersIt) {
  service::Session session;
  Job job = make_job("acme", Priority::kNormal);
  job.id = 7;
  const JobResult r = session.run(job);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.iterations, 0);
  EXPECT_GT(r.sim_seconds, 0.0);
  EXPECT_GT(r.kernel_launches, 0u);
  session.meter(r);
  const auto& counters = session.registry().counters();
  const auto it = counters.find("tl_service_jobs{tenant=\"acme\"}");
  ASSERT_NE(it, counters.end());
  EXPECT_EQ(it->second, 1.0);
}

TEST(ServiceSession, UnsupportedPairFailsSoft) {
  // Table 1: CUDA does not target the CPU. If that ever changes, find any
  // unsupported pair; the service must soft-fail it either way.
  Scenario scenario = tiny_scenario();
  scenario.model = sim::Model::kCuda;
  scenario.device = sim::DeviceId::kCpuSandyBridge;
  ASSERT_FALSE(ports::is_supported(scenario.model, scenario.device));
  service::Session session;
  const JobResult r = session.run(make_job("acme", Priority::kNormal,
                                           scenario));
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.error.empty());
  EXPECT_EQ(r.iterations, 0);
  session.meter(r);
  const auto& counters = session.registry().counters();
  const auto it = counters.find("tl_service_failures{tenant=\"acme\"}");
  ASSERT_NE(it, counters.end());
  EXPECT_EQ(it->second, 1.0);
}

TEST(ServiceSession, DecompositionCacheHitsOnRepeatedShape) {
  service::Session session;
  const Scenario s = tiny_scenario(core::SolverKind::kCg, 16, 2);
  EXPECT_TRUE(session.run(make_job("a", Priority::kNormal, s)).ok);
  EXPECT_TRUE(session.run(make_job("a", Priority::kNormal, s)).ok);
  EXPECT_EQ(session.cached_decompositions(), 1u);
  EXPECT_EQ(session.jobs_run(), 2u);
}

// -- ServiceConfig -----------------------------------------------------------

TEST(ServiceConfig, ValidateRejectsNonsense) {
  ServiceConfig bad;
  bad.small_workers = 0;
  bad.large_workers = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ServiceConfig{};
  bad.queue_capacity = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ServiceConfig{};
  bad.batch_max = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ServiceConfig{};
  bad.aging_interval = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  EXPECT_NO_THROW(ServiceConfig{}.validate());
}

// -- SolveService ------------------------------------------------------------

ServiceConfig test_config() {
  ServiceConfig config;
  config.small_workers = 2;
  config.large_workers = 1;
  config.queue_capacity = 64;
  config.batch_max = 4;
  config.large_cells_threshold = 96 * 96;
  return config;
}

TEST(SolveService, DrainsEverySubmittedJobOnFinish) {
  SolveService svc(test_config());
  const char* tenants[] = {"acme", "burl", "acme", "cato", "burl", "acme"};
  for (int i = 0; i < 6; ++i) {
    svc.submit(make_job(tenants[i],
                        i % 2 == 0 ? Priority::kNormal : Priority::kLow));
  }
  EXPECT_EQ(svc.submitted(), 6u);
  const ServiceReport report = svc.finish();
  ASSERT_EQ(report.results.size(), 6u);
  EXPECT_TRUE(report.all_ok());
  // Results come back sorted by id, ids are 1..N.
  for (std::size_t i = 0; i < report.results.size(); ++i) {
    EXPECT_EQ(report.results[i].id, i + 1);
  }
  EXPECT_THROW(svc.submit(make_job("late", Priority::kHigh)),
               std::logic_error);
  EXPECT_THROW(svc.finish(), std::logic_error);
}

TEST(SolveService, BatchesNeverMixTenants) {
  ServiceConfig config = test_config();
  config.small_workers = 1;  // force everything through one batching worker
  SolveService svc(config);
  for (int i = 0; i < 24; ++i) {
    svc.submit(make_job(i % 3 == 0 ? "acme" : (i % 3 == 1 ? "burl" : "cato"),
                        Priority::kNormal));
  }
  const ServiceReport report = svc.finish();
  ASSERT_EQ(report.results.size(), 24u);
  std::map<std::uint64_t, std::set<std::string>> tenants_by_batch;
  for (const JobResult& r : report.results) {
    ASSERT_GT(r.batch, 0u);
    tenants_by_batch[r.batch].insert(r.tenant);
  }
  for (const auto& [batch, tenants] : tenants_by_batch) {
    EXPECT_EQ(tenants.size(), 1u)
        << "batch " << batch << " mixed " << tenants.size() << " tenants";
  }
}

TEST(SolveService, LargeJobsLandOnDedicatedWorkers) {
  ServiceConfig config = test_config();
  config.large_cells_threshold = 32 * 32;
  SolveService svc(config);
  svc.submit(make_job("small", Priority::kNormal,
                      tiny_scenario(core::SolverKind::kCg, 16)));
  svc.submit(make_job("large", Priority::kNormal,
                      tiny_scenario(core::SolverKind::kCg, 32)));
  const ServiceReport report = svc.finish();
  ASSERT_EQ(report.results.size(), 2u);
  EXPECT_TRUE(report.all_ok());
  int small_worker = -1, large_worker = -1;
  for (const JobResult& r : report.results) {
    (r.tenant == "small" ? small_worker : large_worker) = r.worker;
  }
  // Worker indices are global: small lane first, then the large lane.
  EXPECT_LT(small_worker, config.small_workers);
  EXPECT_GE(large_worker, config.small_workers);
}

TEST(SolveService, TenantSummariesFoldDeterministically) {
  SolveService svc(test_config());
  for (int i = 0; i < 8; ++i) {
    svc.submit(make_job(i < 5 ? "acme" : "burl", Priority::kNormal));
  }
  const ServiceReport report = svc.finish();
  ASSERT_EQ(report.tenants.size(), 2u);
  EXPECT_EQ(report.tenants[0].tenant, "acme");  // sorted by name
  EXPECT_EQ(report.tenants[0].jobs, 5u);
  EXPECT_EQ(report.tenants[1].tenant, "burl");
  EXPECT_EQ(report.tenants[1].jobs, 3u);
  // The independent fold agrees with the report's.
  const auto again = service::summarize_tenants(report.results);
  ASSERT_EQ(again.size(), 2u);
  EXPECT_EQ(again[0].iterations, report.tenants[0].iterations);
  EXPECT_EQ(again[1].kernel_launches, report.tenants[1].kernel_launches);
  // Per-tenant counters landed in the merged registry slice.
  const auto& counters = report.metrics.counters();
  const auto it = counters.find("tl_service_jobs{tenant=\"acme\"}");
  ASSERT_NE(it, counters.end());
  EXPECT_EQ(it->second, 5.0);
}

TEST(SolveService, ResultsBitIdenticalToStandaloneAllSolvers) {
  // The core promise: a job through the queue/pool produces byte-identical
  // checksums to a standalone run of the same scenario — every solver, both
  // single-chunk and decomposed.
  std::vector<Scenario> scenarios;
  for (core::SolverKind solver :
       {core::SolverKind::kCg, core::SolverKind::kCheby,
        core::SolverKind::kPpcg, core::SolverKind::kJacobi}) {
    scenarios.push_back(tiny_scenario(solver, 16, 1));
    scenarios.push_back(tiny_scenario(solver, 24, 2));
  }
  SolveService svc(test_config());
  for (const Scenario& s : scenarios) {
    svc.submit(make_job("verify", Priority::kNormal, s));
  }
  const ServiceReport report = svc.finish();
  ASSERT_EQ(report.results.size(), scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const JobResult& r = report.results[i];
    ASSERT_TRUE(r.ok) << r.error;
    const service::ScenarioOutcome twin =
        service::run_scenario(scenarios[i]);
    EXPECT_TRUE(checksums_equal(r.u_checksum, twin.u_checksum))
        << "u checksum diverged: " << scenarios[i].key();
    EXPECT_TRUE(checksums_equal(r.energy_checksum, twin.energy_checksum))
        << "energy checksum diverged: " << scenarios[i].key();
    EXPECT_EQ(r.iterations, twin.run.total_iterations());
    EXPECT_EQ(r.sim_seconds, twin.run.sim_total_seconds);
  }
}

TEST(SolveService, MiniSoakRespectsFairnessBound) {
  // Concurrent submitters + mixed priorities under a small queue: meaningful
  // contention for the TSan leg, and every job's measured wait must respect
  // the advertised bound.
  ServiceConfig config = test_config();
  config.queue_capacity = 16;
  config.batch_max = 4;
  SolveService svc(config);
  constexpr int kPerTenant = 30;
  const char* tenants[] = {"t0", "t1", "t2"};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 3; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerTenant; ++i) {
        svc.submit(make_job(
            tenants[t], static_cast<Priority>((t + i) % 3),
            tiny_scenario(core::SolverKind::kCg, 16, 1)));
      }
    });
  }
  for (std::thread& s : submitters) s.join();
  const ServiceReport report = svc.finish();
  ASSERT_EQ(report.results.size(), 3u * kPerTenant);
  EXPECT_TRUE(report.all_ok());
  EXPECT_LE(report.max_wait_pops(), report.fairness_bound);
  // Every tenant finished every job — nobody starved.
  ASSERT_EQ(report.tenants.size(), 3u);
  for (const auto& tenant : report.tenants) {
    EXPECT_EQ(tenant.jobs, static_cast<std::uint64_t>(kPerTenant));
    EXPECT_EQ(tenant.failures, 0u);
  }
}

TEST(SolveService, DestructorWithoutFinishJoinsCleanly) {
  SolveService svc(test_config());
  for (int i = 0; i < 4; ++i) svc.submit(make_job("acme", Priority::kLow));
  // Destructor must close lanes and join workers without finish().
}

// -- Artifact ----------------------------------------------------------------

TEST(ServiceArtifact, EmitsParseableServiceBenchJson) {
  SolveService svc(test_config());
  svc.submit(make_job("acme", Priority::kNormal));
  svc.submit(make_job("burl", Priority::kHigh));
  const ServiceReport report = svc.finish();
  service::ArtifactInfo info;
  info.scenarios = 1;
  info.verified = 2;
  info.bit_identical = 2;
  const std::string json =
      service::service_artifact_json(svc.config(), report, info);
  const util::JsonValue doc = util::parse_json(json);
  ASSERT_TRUE(doc.is_object()) << json;
  EXPECT_EQ(doc.get_string_or("bench", ""), "service");
  const util::JsonValue* totals = doc.find("totals");
  ASSERT_NE(totals, nullptr);
  EXPECT_EQ(totals->get_number_or("jobs", 0.0), 2.0);
  const util::JsonValue* tenants = doc.find("tenants");
  ASSERT_NE(tenants, nullptr);
  ASSERT_TRUE(tenants->is_array());
  EXPECT_EQ(tenants->as_array().size(), 2u);
}

}  // namespace
