// Unit tests for src/comm: the in-process message-passing substrate, block
// decomposition, and halo exchange.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <numeric>

#include "comm/decomposition.hpp"
#include "comm/halo.hpp"
#include "comm/minimpi.hpp"
#include "util/buffer.hpp"
#include "util/rng.hpp"

namespace c = tl::comm;
using tl::util::Buffer;
using tl::util::Span2D;

// ---------------------------------------------------------------------------
// MiniComm
// ---------------------------------------------------------------------------

TEST(MiniComm, SendRecvDeliversInOrder) {
  c::run_ranks(2, [](c::Communicator& comm) {
    if (comm.rank() == 0) {
      const double a[2] = {1.0, 2.0};
      const double b[2] = {3.0, 4.0};
      comm.send(a, 1, 7);
      comm.send(b, 1, 7);
    } else {
      double buf[2];
      comm.recv(buf, 0, 7);
      EXPECT_EQ(buf[0], 1.0);
      comm.recv(buf, 0, 7);
      EXPECT_EQ(buf[0], 3.0);
    }
  });
}

TEST(MiniComm, TagsSelectMessages) {
  c::run_ranks(2, [](c::Communicator& comm) {
    if (comm.rank() == 0) {
      const double a[1] = {10.0};
      const double b[1] = {20.0};
      comm.send(a, 1, 1);
      comm.send(b, 1, 2);
    } else {
      double buf[1];
      comm.recv(buf, 0, 2);  // out of arrival order
      EXPECT_EQ(buf[0], 20.0);
      comm.recv(buf, 0, 1);
      EXPECT_EQ(buf[0], 10.0);
    }
  });
}

TEST(MiniComm, SizeMismatchThrows) {
  EXPECT_THROW(c::run_ranks(2,
                            [](c::Communicator& comm) {
                              if (comm.rank() == 0) {
                                const double a[2] = {1, 2};
                                comm.send(a, 1, 0);
                              } else {
                                double buf[3];
                                comm.recv(buf, 0, 0);
                              }
                            }),
               std::runtime_error);
}

TEST(MiniComm, AllreduceSumMinMax) {
  c::run_ranks(4, [](c::Communicator& comm) {
    const double v = static_cast<double>(comm.rank() + 1);
    EXPECT_DOUBLE_EQ(comm.allreduce(v, c::Communicator::ReduceOp::kSum), 10.0);
    EXPECT_DOUBLE_EQ(comm.allreduce(v, c::Communicator::ReduceOp::kMin), 1.0);
    EXPECT_DOUBLE_EQ(comm.allreduce(v, c::Communicator::ReduceOp::kMax), 4.0);
  });
}

TEST(MiniComm, AllreduceVector) {
  c::run_ranks(3, [](c::Communicator& comm) {
    double vals[2] = {1.0, static_cast<double>(comm.rank())};
    comm.allreduce(vals, c::Communicator::ReduceOp::kSum);
    EXPECT_DOUBLE_EQ(vals[0], 3.0);
    EXPECT_DOUBLE_EQ(vals[1], 3.0);  // 0+1+2
  });
}

TEST(MiniComm, BroadcastFromNonZeroRoot) {
  c::run_ranks(3, [](c::Communicator& comm) {
    double data[2] = {0.0, 0.0};
    if (comm.rank() == 2) {
      data[0] = 5.0;
      data[1] = 6.0;
    }
    comm.broadcast(data, 2);
    EXPECT_DOUBLE_EQ(data[0], 5.0);
    EXPECT_DOUBLE_EQ(data[1], 6.0);
  });
}

TEST(MiniComm, GatherToRoot) {
  c::run_ranks(4, [](c::Communicator& comm) {
    const auto out = comm.gather(static_cast<double>(comm.rank() * 2), 1);
    if (comm.rank() == 1) {
      ASSERT_EQ(out.size(), 4u);
      for (int r = 0; r < 4; ++r) EXPECT_DOUBLE_EQ(out[r], 2.0 * r);
    } else {
      EXPECT_TRUE(out.empty());
    }
  });
}

TEST(MiniComm, BarrierSynchronises) {
  std::atomic<int> before{0};
  std::atomic<bool> ok{true};
  c::run_ranks(4, [&](c::Communicator& comm) {
    before.fetch_add(1);
    comm.barrier();
    if (before.load() != 4) ok = false;
    comm.barrier();
  });
  EXPECT_TRUE(ok.load());
}

TEST(MiniComm, RankExceptionPropagates) {
  EXPECT_THROW(c::run_ranks(2,
                            [](c::Communicator& comm) {
                              if (comm.rank() == 1) {
                                throw std::runtime_error("boom");
                              }
                            }),
               std::runtime_error);
}

TEST(MiniComm, ManyRanksStress) {
  // Ring pass-around with 8 ranks, several laps.
  c::run_ranks(8, [](c::Communicator& comm) {
    const int n = comm.size();
    double token[1] = {static_cast<double>(comm.rank())};
    for (int lap = 0; lap < 5; ++lap) {
      comm.sendrecv(token, (comm.rank() + 1) % n, token,
                    (comm.rank() + n - 1) % n, lap);
    }
    // After 5 laps the token originated 5 ranks upstream.
    EXPECT_DOUBLE_EQ(token[0],
                     static_cast<double>((comm.rank() + n - 5) % n));
  });
}

TEST(MiniComm, OrderPreservedPerSourceUnderInterleaving) {
  // FIFO holds per (source, dest, tag) even when two senders race: rank 2
  // drains each source in turn and must see each source's sequence in order,
  // whatever the arrival interleaving was.
  constexpr int kMessages = 32;
  c::run_ranks(3, [](c::Communicator& comm) {
    if (comm.rank() < 2) {
      for (int i = 0; i < kMessages; ++i) {
        const double v[1] = {100.0 * comm.rank() + i};
        comm.send(v, 2, 9);
      }
    } else {
      for (int src = 0; src < 2; ++src) {
        for (int i = 0; i < kMessages; ++i) {
          double v[1];
          comm.recv(v, src, 9);
          EXPECT_DOUBLE_EQ(v[0], 100.0 * src + i)
              << "source " << src << " message " << i;
        }
      }
    }
  });
}

TEST(MiniComm, MismatchedTagsTimeOutInsteadOfDeadlocking) {
  // A sendrecv pair that disagrees on the tag would block forever in a real
  // MPI run. The World's recv-timeout deadlock guard turns it into a thrown
  // std::runtime_error naming the stuck (source, tag) wait.
  try {
    c::run_ranks(
        2,
        [](c::Communicator& comm) {
          double buf[1] = {static_cast<double>(comm.rank())};
          const int tag = comm.rank() == 0 ? 1 : 2;  // the bug under test
          comm.sendrecv(buf, 1 - comm.rank(), buf, 1 - comm.rank(), tag);
        },
        std::chrono::milliseconds{250});
    FAIL() << "mismatched tags should have timed out";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("timed out"), std::string::npos)
        << "unexpected error: " << e.what();
  }
}

TEST(MiniComm, AllreduceMatchesSerialReduction) {
  // The reduction is deterministic (accumulated in rank order 0..P-1), so a
  // serial fold over the same values must agree bit-for-bit — this is what
  // makes R-rank vs 1-rank solver comparisons meaningful.
  constexpr int kRanks = 5;
  tl::util::Rng rng(20260806);
  double vals[kRanks];
  for (double& v : vals) v = rng.uniform(-10.0, 10.0);

  double sum = vals[0], mn = vals[0], mx = vals[0];
  for (int r = 1; r < kRanks; ++r) {
    sum += vals[r];
    mn = std::min(mn, vals[r]);
    mx = std::max(mx, vals[r]);
  }

  c::run_ranks(kRanks, [&](c::Communicator& comm) {
    const double v = vals[comm.rank()];
    EXPECT_EQ(comm.allreduce(v, c::Communicator::ReduceOp::kSum), sum);
    EXPECT_EQ(comm.allreduce(v, c::Communicator::ReduceOp::kMin), mn);
    EXPECT_EQ(comm.allreduce(v, c::Communicator::ReduceOp::kMax), mx);
  });
}

TEST(MiniComm, BarrierUnderContention) {
  // Many rounds of increment-barrier-check with all ranks hammering the same
  // counters. Runs under the TSan CI leg, which is the real assertion here.
  constexpr int kRanks = 8;
  constexpr int kRounds = 50;
  std::atomic<int> arrived[kRounds];
  for (auto& a : arrived) a.store(0);
  std::atomic<bool> ok{true};
  c::run_ranks(kRanks, [&](c::Communicator& comm) {
    for (int round = 0; round < kRounds; ++round) {
      arrived[round].fetch_add(1);
      comm.barrier();
      if (arrived[round].load() != kRanks) ok = false;
      comm.barrier();
    }
  });
  EXPECT_TRUE(ok.load());
}

// ---------------------------------------------------------------------------
// MiniComm: nonblocking operations
// ---------------------------------------------------------------------------

TEST(MiniCommNonblocking, IsendCompletesImmediately) {
  // MiniComm sends are buffered: the payload is copied out before isend
  // returns, so the request is born complete and the source buffer is
  // reusable straight away.
  c::run_ranks(2, [](c::Communicator& comm) {
    if (comm.rank() == 0) {
      double buf[2] = {1.0, 2.0};
      c::CommRequest req = comm.isend(buf, 1, 3);
      EXPECT_TRUE(req.done());
      buf[0] = -1.0;  // must not affect the in-flight message
      req.wait();     // no-op on a complete request
    } else {
      double buf[2];
      comm.recv(buf, 0, 3);
      EXPECT_EQ(buf[0], 1.0);
      EXPECT_EQ(buf[1], 2.0);
    }
  });
}

TEST(MiniCommNonblocking, OutOfOrderCompletion) {
  // Matching is by (source, tag): whichever message has arrived completes
  // first, regardless of the order the receives were posted.
  c::run_ranks(2, [](c::Communicator& comm) {
    if (comm.rank() == 1) {
      double a[1], b[1];
      c::CommRequest first = comm.irecv(a, 0, 1);   // posted first...
      c::CommRequest second = comm.irecv(b, 0, 2);  // ...but arrives second
      const double ready[1] = {1.0};
      comm.send(ready, 0, 9);  // unleash the tag-2 send
      while (!second.test()) {
      }
      EXPECT_FALSE(first.done());  // tag 1 still in flight
      EXPECT_EQ(b[0], 20.0);
      const double go[1] = {2.0};
      comm.send(go, 0, 9);  // unleash the tag-1 send
      first.wait();
      EXPECT_EQ(a[0], 10.0);
    } else {
      double sync[1];
      comm.recv(sync, 1, 9);
      const double b[1] = {20.0};
      comm.send(b, 1, 2);
      comm.recv(sync, 1, 9);
      const double a[1] = {10.0};
      comm.send(a, 1, 1);
    }
  });
}

TEST(MiniCommNonblocking, TestPollsWithoutBlocking) {
  c::run_ranks(2, [](c::Communicator& comm) {
    if (comm.rank() == 1) {
      double buf[1] = {0.0};
      c::CommRequest req = comm.irecv(buf, 0, 5);
      EXPECT_FALSE(req.test());  // nothing sent yet; must not block
      const double go[1] = {1.0};
      comm.send(go, 0, 9);
      while (!req.test()) {
      }
      EXPECT_EQ(buf[0], 42.0);
      EXPECT_TRUE(req.test());  // stays complete, still no block
    } else {
      double sync[1];
      comm.recv(sync, 1, 9);
      const double v[1] = {42.0};
      comm.send(v, 1, 5);
    }
  });
}

TEST(MiniCommNonblocking, DuplicateWaitAllIsSafe) {
  // wait_all skips already-complete requests, so completing the same span
  // twice (or mixing in default-constructed requests) is harmless — the
  // guarantee DistributedKernels' complete-on-every-entry guards rely on.
  c::run_ranks(2, [](c::Communicator& comm) {
    if (comm.rank() == 1) {
      double a[1], b[1];
      std::array<c::CommRequest, 3> reqs{comm.irecv(a, 0, 1),
                                         comm.irecv(b, 0, 2),
                                         c::CommRequest{}};
      c::Communicator::wait_all(reqs);
      EXPECT_EQ(a[0], 1.0);
      EXPECT_EQ(b[0], 2.0);
      c::Communicator::wait_all(reqs);  // all done: must be a no-op
      EXPECT_EQ(a[0], 1.0);
      EXPECT_EQ(b[0], 2.0);
    } else {
      const double a[1] = {1.0};
      const double b[1] = {2.0};
      comm.send(b, 1, 2);  // reverse of the post order, for good measure
      comm.send(a, 1, 1);
    }
  });
}

TEST(MiniCommNonblocking, IrecvInheritsDeadlockGuard) {
  // A wait() on a receive nobody will ever match must throw the same
  // diagnosable timeout as the blocking path, not hang.
  try {
    c::run_ranks(
        2,
        [](c::Communicator& comm) {
          if (comm.rank() == 1) {
            double buf[1];
            c::CommRequest req = comm.irecv(buf, 0, 77);
            req.wait();
          }
        },
        std::chrono::milliseconds{250});
    FAIL() << "unmatched irecv wait should have timed out";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("timed out"), std::string::npos)
        << "unexpected error: " << e.what();
  }
}

TEST(MiniCommNonblocking, EightRankConcurrentStress) {
  // Every rank runs rounds of: post irecvs from both ring neighbours, isend
  // to both, poll one request while the other drains via wait_all. All eight
  // mailboxes are hammered concurrently — the TSan CI leg is the real
  // assertion; the value checks catch cross-wired payloads.
  constexpr int kRanks = 8;
  constexpr int kRounds = 40;
  c::run_ranks(kRanks, [](c::Communicator& comm) {
    const int n = comm.size();
    const int left = (comm.rank() + n - 1) % n;
    const int right = (comm.rank() + 1) % n;
    for (int round = 0; round < kRounds; ++round) {
      double from_left[1], from_right[1];
      std::array<c::CommRequest, 2> reqs{
          comm.irecv(from_left, left, round * 2),
          comm.irecv(from_right, right, round * 2 + 1)};
      const double to_right[1] = {100.0 * comm.rank() + round};
      const double to_left[1] = {-100.0 * comm.rank() - round};
      comm.isend(to_right, right, round * 2);
      comm.isend(to_left, left, round * 2 + 1);
      reqs[1].test();  // interleave polling with the blocking drain
      c::Communicator::wait_all(reqs);
      ASSERT_EQ(from_left[0], 100.0 * left + round) << "round " << round;
      ASSERT_EQ(from_right[0], -100.0 * right - round) << "round " << round;
    }
  });
}

// ---------------------------------------------------------------------------
// BlockDecomposition
// ---------------------------------------------------------------------------

TEST(Decomposition, SingleRankCoversEverything) {
  const c::BlockDecomposition d(10, 7, 1);
  const auto& t = d.tile(0);
  EXPECT_EQ(t.nx(), 10);
  EXPECT_EQ(t.ny(), 7);
  for (const auto f : c::kAllFaces) EXPECT_FALSE(t.has_neighbour(f));
}

TEST(Decomposition, TilesPartitionTheMesh) {
  const c::BlockDecomposition d(37, 23, 6);
  std::vector<int> cover(37 * 23, 0);
  for (const auto& t : d.tiles()) {
    for (int y = t.y_begin; y < t.y_end; ++y) {
      for (int x = t.x_begin; x < t.x_end; ++x) ++cover[y * 37 + x];
    }
  }
  for (const int c_ : cover) EXPECT_EQ(c_, 1);
}

TEST(Decomposition, PrefersSquareGridForSquareMesh) {
  const c::BlockDecomposition d(100, 100, 4);
  EXPECT_EQ(d.grid_x(), 2);
  EXPECT_EQ(d.grid_y(), 2);
}

TEST(Decomposition, NeighboursAreMutual) {
  const c::BlockDecomposition d(64, 64, 8);
  for (const auto& t : d.tiles()) {
    if (t.has_neighbour(c::Face::kRight)) {
      const auto& n = d.tile(t.neighbour_of(c::Face::kRight));
      EXPECT_EQ(n.neighbour_of(c::Face::kLeft), t.rank);
      EXPECT_EQ(n.x_begin, t.x_end);
    }
    if (t.has_neighbour(c::Face::kTop)) {
      const auto& n = d.tile(t.neighbour_of(c::Face::kTop));
      EXPECT_EQ(n.neighbour_of(c::Face::kBottom), t.rank);
      EXPECT_EQ(n.y_begin, t.y_end);
    }
  }
}

TEST(Decomposition, InvalidArgumentsThrow) {
  EXPECT_THROW(c::BlockDecomposition(0, 4, 1), std::invalid_argument);
  EXPECT_THROW(c::BlockDecomposition(4, 4, 0), std::invalid_argument);
  EXPECT_THROW(c::BlockDecomposition(2, 2, 64), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// BlockDecomposition: randomized properties
// ---------------------------------------------------------------------------

namespace {
/// Draws a random (nx, ny, nranks) triple for which a decomposition exists,
/// i.e. some factorisation px*py == nranks fits px <= nx, py <= ny.
struct DecompCase {
  int nx, ny, nranks;
};

DecompCase draw_decomp_case(tl::util::Rng& rng) {
  for (;;) {
    const int nx = 1 + static_cast<int>(rng.next_below(200));
    const int ny = 1 + static_cast<int>(rng.next_below(200));
    const int nranks = 1 + static_cast<int>(rng.next_below(16));
    for (int px = 1; px <= nranks; ++px) {
      if (nranks % px == 0 && px <= nx && nranks / px <= ny) {
        return {nx, ny, nranks};
      }
    }
  }
}
}  // namespace

TEST(DecompositionProperty, RandomPartitionIsExact) {
  // Every global cell is owned by exactly one tile, for random meshes and
  // rank counts.
  tl::util::Rng rng(1);
  for (int trial = 0; trial < 60; ++trial) {
    const DecompCase tc = draw_decomp_case(rng);
    const c::BlockDecomposition d(tc.nx, tc.ny, tc.nranks);
    std::vector<int> cover(static_cast<std::size_t>(tc.nx) * tc.ny, 0);
    for (const auto& t : d.tiles()) {
      EXPECT_GT(t.nx(), 0);
      EXPECT_GT(t.ny(), 0);
      for (int y = t.y_begin; y < t.y_end; ++y) {
        for (int x = t.x_begin; x < t.x_end; ++x) ++cover[y * tc.nx + x];
      }
    }
    for (const int n : cover) {
      ASSERT_EQ(n, 1) << tc.nx << "x" << tc.ny << " over " << tc.nranks;
    }
  }
}

TEST(DecompositionProperty, NeighbourLinksAreSymmetricAndAdjacent) {
  tl::util::Rng rng(2);
  const c::Face opposite[4] = {c::Face::kRight, c::Face::kLeft, c::Face::kTop,
                               c::Face::kBottom};
  for (int trial = 0; trial < 60; ++trial) {
    const DecompCase tc = draw_decomp_case(rng);
    const c::BlockDecomposition d(tc.nx, tc.ny, tc.nranks);
    for (const auto& t : d.tiles()) {
      for (const c::Face f : c::kAllFaces) {
        if (!t.has_neighbour(f)) continue;
        const auto& n = d.tile(t.neighbour_of(f));
        ASSERT_EQ(n.neighbour_of(opposite[static_cast<std::size_t>(f)]),
                  t.rank)
            << "asymmetric link " << tc.nx << "x" << tc.ny << "/" << tc.nranks;
        // Shared faces must actually abut and span the same interval.
        switch (f) {
          case c::Face::kLeft:
            ASSERT_EQ(n.x_end, t.x_begin);
            break;
          case c::Face::kRight:
            ASSERT_EQ(n.x_begin, t.x_end);
            break;
          case c::Face::kBottom:
            ASSERT_EQ(n.y_end, t.y_begin);
            break;
          case c::Face::kTop:
            ASSERT_EQ(n.y_begin, t.y_end);
            break;
        }
        if (f == c::Face::kLeft || f == c::Face::kRight) {
          ASSERT_EQ(n.y_begin, t.y_begin);
          ASSERT_EQ(n.y_end, t.y_end);
        } else {
          ASSERT_EQ(n.x_begin, t.x_begin);
          ASSERT_EQ(n.x_end, t.x_end);
        }
      }
    }
  }
}

TEST(DecompositionProperty, ChosenGridMinimisesSurface) {
  // The documented objective: among all factorisations px*py == nranks that
  // fit the mesh, the chosen grid minimises the exchanged surface
  // px*ny + py*nx.
  tl::util::Rng rng(3);
  for (int trial = 0; trial < 60; ++trial) {
    const DecompCase tc = draw_decomp_case(rng);
    const c::BlockDecomposition d(tc.nx, tc.ny, tc.nranks);
    const double chosen = static_cast<double>(d.grid_x()) * tc.ny +
                          static_cast<double>(d.grid_y()) * tc.nx;
    EXPECT_EQ(d.grid_x() * d.grid_y(), tc.nranks);
    for (int px = 1; px <= tc.nranks; ++px) {
      if (tc.nranks % px != 0) continue;
      const int py = tc.nranks / px;
      if (px > tc.nx || py > tc.ny) continue;
      const double cost =
          static_cast<double>(px) * tc.ny + static_cast<double>(py) * tc.nx;
      ASSERT_LE(chosen, cost)
          << "grid " << d.grid_x() << "x" << d.grid_y() << " beaten by " << px
          << "x" << py << " on " << tc.nx << "x" << tc.ny;
    }
  }
}

TEST(DecompositionProperty, RandomInvalidArgumentsThrow) {
  tl::util::Rng rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    const int good = 1 + static_cast<int>(rng.next_below(50));
    const int bad = -static_cast<int>(rng.next_below(10));
    EXPECT_THROW(c::BlockDecomposition(bad, good, 1), std::invalid_argument);
    EXPECT_THROW(c::BlockDecomposition(good, bad, 1), std::invalid_argument);
    EXPECT_THROW(c::BlockDecomposition(good, good, bad),
                 std::invalid_argument);
    // More ranks than cells can never be tiled.
    EXPECT_THROW(
        c::BlockDecomposition(good, good, good * good + 1 +
                                              static_cast<int>(rng.next_below(8))),
        std::invalid_argument);
  }
  // A prime rank count taller than the mesh has no fitting factorisation.
  EXPECT_THROW(c::BlockDecomposition(1, 1, 2), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Halo: reflection
// ---------------------------------------------------------------------------

namespace {
/// Builds a (nx+2h)x(ny+2h) field whose interior holds f(x, y).
template <typename F>
Buffer<double> make_field(int nx, int ny, int h, F f) {
  Buffer<double> buf(static_cast<std::size_t>(nx + 2 * h) * (ny + 2 * h));
  auto s = buf.view2d(nx + 2 * h, ny + 2 * h);
  for (int y = h; y < h + ny; ++y) {
    for (int x = h; x < h + nx; ++x) s(x, y) = f(x, y);
  }
  return buf;
}
}  // namespace

TEST(Halo, ReflectMirrorsInteriorRows) {
  const int nx = 6, ny = 5, h = 2;
  auto buf = make_field(nx, ny, h, [](int x, int y) {
    return 100.0 * x + y;
  });
  auto s = buf.view2d(nx + 2 * h, ny + 2 * h);
  c::reflect_boundary(s, h, c::kAllFaces);
  for (int y = h; y < h + ny; ++y) {
    for (int k = 0; k < h; ++k) {
      EXPECT_EQ(s(h - 1 - k, y), s(h + k, y));
      EXPECT_EQ(s(h + nx + k, y), s(h + nx - 1 - k, y));
    }
  }
  for (int x = 0; x < nx + 2 * h; ++x) {
    for (int k = 0; k < h; ++k) {
      EXPECT_EQ(s(x, h - 1 - k), s(x, h + k));
      EXPECT_EQ(s(x, h + ny + k), s(x, h + ny - 1 - k));
    }
  }
}

TEST(Halo, ReflectFillsCorners) {
  const int nx = 4, ny = 4, h = 2;
  auto buf = make_field(nx, ny, h, [](int x, int y) {
    return 10.0 * x + y;
  });
  auto s = buf.view2d(nx + 2 * h, ny + 2 * h);
  c::reflect_boundary(s, h, c::kAllFaces);
  // Corner (0,0) mirrors interior (h+1, h+1) through both reflections.
  EXPECT_EQ(s(0, 0), s(h + 1, h + 1));
  EXPECT_EQ(s(1, 1), s(h, h));
}

TEST(Halo, ReflectTooSmallFieldThrows) {
  Buffer<double> buf(16);
  auto s = buf.view2d(4, 4);  // h=2 leaves no interior
  EXPECT_THROW(c::reflect_boundary(s, 2, c::kAllFaces), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Halo: exchange across ranks == global reflection
// ---------------------------------------------------------------------------

namespace {
/// Reference: one global field, reflected. Decomposed: each rank owns a tile
/// of the same field, exchanges + reflects, and we compare every tile cell
/// (including its halo) to the global field.
void check_distributed_halo(int gnx, int gny, int ranks, int h, int depth) {
  auto global = make_field(gnx, gny, h, [](int x, int y) {
    return std::sin(0.3 * x) + 1.7 * y;
  });
  auto gspan = global.view2d(gnx + 2 * h, gny + 2 * h);
  c::reflect_boundary(gspan, h, c::kAllFaces);

  const c::BlockDecomposition decomp(gnx, gny, ranks);
  c::run_ranks(ranks, [&](c::Communicator& comm) {
    const c::Tile& tile = decomp.tile(comm.rank());
    const int w = tile.nx() + 2 * h;
    const int ht = tile.ny() + 2 * h;
    Buffer<double> local(static_cast<std::size_t>(w) * ht);
    auto lspan = local.view2d(w, ht);
    for (int y = 0; y < ht; ++y) {
      for (int x = 0; x < w; ++x) {
        // Interior copy only; halo starts stale.
        const int gx = tile.x_begin + (x - h) + h;
        const int gy = tile.y_begin + (y - h) + h;
        if (x >= h && x < h + tile.nx() && y >= h && y < h + tile.ny()) {
          lspan(x, y) = gspan(gx, gy);
        } else {
          lspan(x, y) = -999.0;
        }
      }
    }
    c::HaloExchanger ex(decomp, comm.rank(), h);
    ex.exchange(comm, lspan, depth, /*tag=*/3);

    for (int y = h - depth; y < h + tile.ny() + depth; ++y) {
      for (int x = h - depth; x < h + tile.nx() + depth; ++x) {
        const int gx = tile.x_begin + (x - h) + h;
        const int gy = tile.y_begin + (y - h) + h;
        ASSERT_DOUBLE_EQ(lspan(x, y), gspan(gx, gy))
            << "rank " << comm.rank() << " cell (" << x << "," << y << ")";
      }
    }
  });
}
}  // namespace

TEST(Halo, TwoRankExchangeMatchesGlobal) {
  check_distributed_halo(16, 12, 2, 2, 2);
}

TEST(Halo, FourRankExchangeMatchesGlobal) {
  check_distributed_halo(16, 16, 4, 2, 2);
}

TEST(Halo, SixRankDepthOne) { check_distributed_halo(18, 12, 6, 2, 1); }

TEST(Halo, BadDepthThrows) {
  const c::BlockDecomposition decomp(8, 8, 1);
  c::run_ranks(1, [&](c::Communicator& comm) {
    Buffer<double> local(12 * 12);
    auto s = local.view2d(12, 12);
    c::HaloExchanger ex(decomp, 0, 2);
    EXPECT_THROW(ex.exchange(comm, s, 3, 0), std::invalid_argument);
    EXPECT_THROW(ex.exchange(comm, s, 0, 0), std::invalid_argument);
  });
}

TEST(Halo, RandomisedExchangeMatchesGlobalBothDepths) {
  // Property form of the round-trip check: random mesh shapes and rank
  // counts, both supported depths. Covers corner fills (x-then-y ordering),
  // interior tiles with four neighbours, and tiles whose physical faces are
  // reflected rather than exchanged.
  tl::util::Rng rng(5);
  for (int trial = 0; trial < 12; ++trial) {
    const int gnx = 8 + static_cast<int>(rng.next_below(17));
    const int gny = 8 + static_cast<int>(rng.next_below(17));
    const int nranks = 1 + static_cast<int>(rng.next_below(6));
    const int depth = 1 + static_cast<int>(rng.next_below(2));
    check_distributed_halo(gnx, gny, nranks, /*h=*/2, depth);
  }
}

TEST(Halo, NineRankInteriorTileAllFaces) {
  // 3x3 grid: the centre tile exchanges on all four faces and reflects none.
  check_distributed_halo(24, 24, 9, /*h=*/2, /*depth=*/2);
}

// ---------------------------------------------------------------------------
// Halo: overlapped post/complete
// ---------------------------------------------------------------------------

namespace {
/// Split-phase variant of check_distributed_halo at depth 1: post() packs
/// and fires the exchange, the "interior compute" happens while it is in
/// flight, complete() lands the halos. The result must match a global
/// reflected field on every cell the depth-1 stencil reads (corner halo
/// cells are exempt — post/complete documents them one exchange stale).
void check_posted_halo(int gnx, int gny, int ranks, int h) {
  auto global = make_field(gnx, gny, h, [](int x, int y) {
    return std::cos(0.4 * x) - 2.3 * y;
  });
  auto gspan = global.view2d(gnx + 2 * h, gny + 2 * h);
  c::reflect_boundary(gspan, h, c::kAllFaces);

  const c::BlockDecomposition decomp(gnx, gny, ranks);
  c::run_ranks(ranks, [&](c::Communicator& comm) {
    const c::Tile& tile = decomp.tile(comm.rank());
    const int w = tile.nx() + 2 * h;
    const int ht = tile.ny() + 2 * h;
    Buffer<double> local(static_cast<std::size_t>(w) * ht);
    auto lspan = local.view2d(w, ht);
    for (int y = 0; y < ht; ++y) {
      for (int x = 0; x < w; ++x) {
        const int gx = tile.x_begin + x;
        const int gy = tile.y_begin + y;
        lspan(x, y) = (x >= h && x < h + tile.nx() && y >= h &&
                       y < h + tile.ny())
                          ? gspan(gx, gy)
                          : -999.0;
      }
    }
    c::HaloExchanger ex(decomp, comm.rank(), h);
    EXPECT_FALSE(ex.pending());
    ex.post(comm, lspan, /*tag=*/5);
    EXPECT_TRUE(ex.pending());
    // "Interior compute" while the exchange is in flight: the interior must
    // be untouched by post(), which only reads the field.
    for (int y = h + 1; y < h + tile.ny() - 1; ++y) {
      for (int x = h + 1; x < h + tile.nx() - 1; ++x) {
        ASSERT_EQ(lspan(x, y), gspan(tile.x_begin + x, tile.y_begin + y));
      }
    }
    ex.complete(comm, lspan);
    EXPECT_FALSE(ex.pending());

    const bool wire_y[2] = {tile.has_neighbour(c::Face::kBottom),
                            tile.has_neighbour(c::Face::kTop)};
    for (int y = h - 1; y < h + tile.ny() + 1; ++y) {
      for (int x = h - 1; x < h + tile.nx() + 1; ++x) {
        const bool x_halo = x < h || x >= h + tile.nx();
        const bool y_halo = y < h || y >= h + tile.ny();
        // Diagonal-corner cells that arrived over the wire from a
        // y-neighbour carry that sender's pack-time x-halo — one exchange
        // stale (no x-then-y relay in the posted path). A 5-point depth-1
        // stencil never reads them. Reflected corners stay fresh.
        if (x_halo && y_halo && wire_y[y >= h + tile.ny()]) continue;
        ASSERT_DOUBLE_EQ(lspan(x, y),
                         gspan(tile.x_begin + x, tile.y_begin + y))
            << "rank " << comm.rank() << " cell (" << x << "," << y << ")";
      }
    }
  });
}
}  // namespace

TEST(HaloOverlap, PostCompleteMatchesGlobalTwoRanks) {
  check_posted_halo(16, 12, 2, 2);
}

TEST(HaloOverlap, PostCompleteMatchesGlobalNineRanks) {
  // 3x3 grid: the centre tile posts and receives on all four faces.
  check_posted_halo(24, 24, 9, 2);
}

TEST(HaloOverlap, RandomisedPostCompleteMatchesGlobal) {
  tl::util::Rng rng(6);
  for (int trial = 0; trial < 10; ++trial) {
    const int gnx = 8 + static_cast<int>(rng.next_below(17));
    const int gny = 8 + static_cast<int>(rng.next_below(17));
    const int nranks = 1 + static_cast<int>(rng.next_below(6));
    check_posted_halo(gnx, gny, nranks, /*h=*/2);
  }
}

TEST(HaloOverlap, PostWhilePendingThrows) {
  const c::BlockDecomposition decomp(8, 8, 2);
  c::run_ranks(2, [&](c::Communicator& comm) {
    const c::Tile& tile = decomp.tile(comm.rank());
    Buffer<double> local(static_cast<std::size_t>(tile.nx() + 4) *
                         (tile.ny() + 4));
    auto s = local.view2d(tile.nx() + 4, tile.ny() + 4);
    c::HaloExchanger ex(decomp, comm.rank(), 2);
    EXPECT_THROW(ex.complete(comm, s), std::logic_error);  // nothing posted
    ex.post(comm, s, 1);
    EXPECT_THROW(ex.post(comm, s, 2), std::logic_error);  // double post
    ex.complete(comm, s);
  });
}

TEST(HaloOverlap, TagOutOfRangeThrows) {
  // Both entry points refuse a tag whose derived subtags would alias the
  // reserved collective range.
  const int bad_tag = c::kCollectiveTagBase / 8;
  const c::BlockDecomposition decomp(8, 8, 1);
  c::run_ranks(1, [&](c::Communicator& comm) {
    Buffer<double> local(12 * 12);
    auto s = local.view2d(12, 12);
    c::HaloExchanger ex(decomp, 0, 2);
    EXPECT_THROW(ex.exchange(comm, s, 1, bad_tag), std::invalid_argument);
    EXPECT_THROW(ex.exchange(comm, s, 1, -1), std::invalid_argument);
    EXPECT_THROW(ex.post(comm, s, bad_tag), std::invalid_argument);
    EXPECT_FALSE(ex.pending());
  });
}

TEST(Halo, ExchangeIsIdempotentOnConsistentField) {
  // Once halos agree with their owners, a second exchange (same depth) must
  // be a fixed point: pack/unpack round-trips the same values byte-for-byte.
  const int gnx = 16, gny = 12, h = 2, ranks = 4;
  const c::BlockDecomposition decomp(gnx, gny, ranks);
  c::run_ranks(ranks, [&](c::Communicator& comm) {
    const c::Tile& tile = decomp.tile(comm.rank());
    const int w = tile.nx() + 2 * h;
    const int ht = tile.ny() + 2 * h;
    Buffer<double> local(static_cast<std::size_t>(w) * ht);
    auto lspan = local.view2d(w, ht);
    for (int y = h; y < h + tile.ny(); ++y) {
      for (int x = h; x < h + tile.nx(); ++x) {
        lspan(x, y) = 7.0 * (tile.x_begin + x) - 1.3 * (tile.y_begin + y);
      }
    }
    c::HaloExchanger ex(decomp, comm.rank(), h);
    ex.exchange(comm, lspan, 2, /*tag=*/11);
    const Buffer<double> snapshot = local;  // deep copy
    ex.exchange(comm, lspan, 2, /*tag=*/12);
    for (std::size_t i = 0; i < local.size(); ++i) {
      ASSERT_EQ(local.data()[i], snapshot.data()[i]) << "cell " << i;
    }
  });
}
