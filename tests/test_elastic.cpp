// Elastic distributed execution battery (DESIGN.md §13):
//
//   * weighted/row-strip decomposition properties;
//   * checkpoint serialize/deserialize roundtrips and a loader fuzz sweep
//     (truncations, bit flips, incompatible fingerprints) — every malformed
//     input must throw CheckpointError, never crash or silently mis-resume;
//   * the kill-and-resume bit-identity battery: every solver, killed at a
//     step boundary and resumed into the same or a different rank count,
//     must finish bit-for-bit equal to the uninterrupted run;
//   * comm fault injection: seeded lossy schedules survive with identical
//     numerics and visible retry tallies; unsurvivable schedules throw
//     diagnosable CommFaultError subclasses;
//   * in-flight comm corruption (tl_verify --perturb halo_payload/allreduce)
//     is detected by the conformance checker;
//   * the solve service's checkpoint-resume path: a fault-injected mini-soak
//     must end with zero failures and bit-identical results.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "comm/decomposition.hpp"
#include "comm/fault.hpp"
#include "core/driver.hpp"
#include "core/mesh.hpp"
#include "core/reference_kernels.hpp"
#include "core/settings.hpp"
#include "dist/checkpoint.hpp"
#include "dist/driver.hpp"
#include "ports/registry.hpp"
#include "service/entry.hpp"
#include "service/pool.hpp"
#include "sim/device.hpp"
#include "sim/model_id.hpp"
#include "verify/conformance.hpp"

namespace d = tl::dist;
namespace c = tl::comm;
using tl::core::Settings;
using tl::core::SolverKind;

namespace {

Settings elastic_problem(SolverKind solver, int ranks, int steps = 2) {
  Settings s = Settings::default_problem();
  s.nx = s.ny = 32;
  s.solver = solver;
  s.end_step = steps;
  s.nranks = ranks;
  s.elastic = true;
  return s;
}

d::PortFactory reference_factory() {
  return [](const tl::core::Mesh& mesh, int /*rank*/) {
    return std::make_unique<tl::core::ReferenceKernels>(mesh);
  };
}

d::PortFactory omp3_factory() {
  return [](const tl::core::Mesh& mesh, int rank) {
    return tl::ports::make_port(*tl::sim::parse_model("omp3"),
                                *tl::sim::parse_device("cpu"), mesh,
                                1 + static_cast<std::uint64_t>(rank));
  };
}

/// Bit-for-bit equality of two runs: control flow, residual histories,
/// physics summaries, and the reassembled global fields.
void expect_bit_identical(const d::DistReport& a, const d::DistReport& b) {
  ASSERT_EQ(a.run.steps.size(), b.run.steps.size());
  for (std::size_t i = 0; i < a.run.steps.size(); ++i) {
    SCOPED_TRACE("step " + std::to_string(i + 1));
    const auto& sa = a.run.steps[i].solve;
    const auto& sb = b.run.steps[i].solve;
    EXPECT_EQ(sa.converged, sb.converged);
    EXPECT_EQ(sa.iterations, sb.iterations);
    EXPECT_EQ(sa.inner_iterations, sb.inner_iterations);
    EXPECT_EQ(sa.initial_rr, sb.initial_rr);
    EXPECT_EQ(sa.final_rr, sb.final_rr);
    ASSERT_EQ(sa.rr_history.size(), sb.rr_history.size());
    for (std::size_t j = 0; j < sa.rr_history.size(); ++j) {
      EXPECT_EQ(sa.rr_history[j], sb.rr_history[j]) << "rr entry " << j;
    }
    EXPECT_EQ(a.run.steps[i].summary.volume, b.run.steps[i].summary.volume);
    EXPECT_EQ(a.run.steps[i].summary.mass, b.run.steps[i].summary.mass);
    EXPECT_EQ(a.run.steps[i].summary.internal_energy,
              b.run.steps[i].summary.internal_energy);
    EXPECT_EQ(a.run.steps[i].summary.temperature,
              b.run.steps[i].summary.temperature);
  }
  ASSERT_EQ(a.u.size(), b.u.size());
  EXPECT_EQ(std::memcmp(a.u.data(), b.u.data(), a.u.size() * sizeof(double)),
            0)
      << "global u fields differ";
  ASSERT_EQ(a.energy.size(), b.energy.size());
  EXPECT_EQ(std::memcmp(a.energy.data(), b.energy.data(),
                        a.energy.size() * sizeof(double)),
            0)
      << "global energy fields differ";
}

/// A small but fully populated snapshot for the (de)serializer tests.
d::Snapshot sample_snapshot(std::uint64_t seed = 42) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> val(-10.0, 10.0);

  d::Snapshot s;
  s.nx = 6;
  s.ny = 4;
  s.halo_depth = 2;
  s.solver = SolverKind::kCheby;
  s.end_step = 5;
  s.elastic = true;
  s.use_fused = false;
  s.overlap_comm = false;
  s.eps = 1e-15;
  s.dt_init = 0.004;
  s.completed_steps = 2;
  s.nranks_at_save = 3;
  for (int i = 0; i < s.completed_steps; ++i) {
    tl::core::StepReport step;
    step.step = i + 1;
    step.dt = s.dt_init;
    step.solve.solver = s.solver;
    step.solve.converged = true;
    step.solve.iterations = 7 + i;
    step.solve.inner_iterations = 2 * i;
    step.solve.initial_rr = val(rng);
    step.solve.final_rr = val(rng) * 1e-12;
    for (int j = 0; j < 5 + i; ++j) step.solve.rr_history.push_back(val(rng));
    step.summary.volume = val(rng);
    step.summary.mass = val(rng);
    step.summary.internal_energy = val(rng);
    step.summary.temperature = val(rng);
    step.sim_step_ns = 1234.5 * (i + 1);
    s.steps.push_back(std::move(step));
  }
  for (int r = 0; r < s.nranks_at_save; ++r) {
    d::RankCursor cur;
    cur.elapsed_ns = val(rng) * 1e6;
    cur.launches = 100 + static_cast<std::uint64_t>(r);
    cur.transfers = 7;
    cur.kernel_bytes = 1u << (10 + r);
    cur.transfer_bytes = 512;
    cur.comm.halo_exchanges = 40;
    cur.comm.allreduces = 13;
    cur.comm.bytes = 9999;
    cur.comm.comm_ns = val(rng) * 1e3;
    cur.comm.retries = static_cast<std::uint64_t>(r);
    s.cursors.push_back(cur);
  }
  const std::size_t cells = static_cast<std::size_t>(s.nx) * s.ny;
  for (std::size_t i = 0; i < cells; ++i) {
    s.density.push_back(val(rng));
    s.energy0.push_back(val(rng));
  }
  return s;
}

void expect_snapshots_equal(const d::Snapshot& a, const d::Snapshot& b) {
  EXPECT_EQ(a.nx, b.nx);
  EXPECT_EQ(a.ny, b.ny);
  EXPECT_EQ(a.halo_depth, b.halo_depth);
  EXPECT_EQ(a.solver, b.solver);
  EXPECT_EQ(a.end_step, b.end_step);
  EXPECT_EQ(a.elastic, b.elastic);
  EXPECT_EQ(a.use_fused, b.use_fused);
  EXPECT_EQ(a.overlap_comm, b.overlap_comm);
  EXPECT_EQ(a.eps, b.eps);
  EXPECT_EQ(a.dt_init, b.dt_init);
  EXPECT_EQ(a.completed_steps, b.completed_steps);
  EXPECT_EQ(a.nranks_at_save, b.nranks_at_save);
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (std::size_t i = 0; i < a.steps.size(); ++i) {
    EXPECT_EQ(a.steps[i].step, b.steps[i].step);
    EXPECT_EQ(a.steps[i].dt, b.steps[i].dt);
    EXPECT_EQ(a.steps[i].solve.iterations, b.steps[i].solve.iterations);
    EXPECT_EQ(a.steps[i].solve.final_rr, b.steps[i].solve.final_rr);
    EXPECT_EQ(a.steps[i].solve.rr_history, b.steps[i].solve.rr_history);
    EXPECT_EQ(a.steps[i].summary.temperature, b.steps[i].summary.temperature);
    EXPECT_EQ(a.steps[i].sim_step_ns, b.steps[i].sim_step_ns);
  }
  ASSERT_EQ(a.cursors.size(), b.cursors.size());
  for (std::size_t i = 0; i < a.cursors.size(); ++i) {
    EXPECT_EQ(a.cursors[i].elapsed_ns, b.cursors[i].elapsed_ns);
    EXPECT_EQ(a.cursors[i].launches, b.cursors[i].launches);
    EXPECT_EQ(a.cursors[i].transfers, b.cursors[i].transfers);
    EXPECT_EQ(a.cursors[i].kernel_bytes, b.cursors[i].kernel_bytes);
    EXPECT_EQ(a.cursors[i].transfer_bytes, b.cursors[i].transfer_bytes);
    EXPECT_EQ(a.cursors[i].comm.halo_exchanges,
              b.cursors[i].comm.halo_exchanges);
    EXPECT_EQ(a.cursors[i].comm.allreduces, b.cursors[i].comm.allreduces);
    EXPECT_EQ(a.cursors[i].comm.bytes, b.cursors[i].comm.bytes);
    EXPECT_EQ(a.cursors[i].comm.retries, b.cursors[i].comm.retries);
  }
  EXPECT_EQ(a.density, b.density);
  EXPECT_EQ(a.energy0, b.energy0);
}

}  // namespace

// ===========================================================================
// Weighted / row-strip decomposition
// ===========================================================================

TEST(WeightedDecomposition, RowStripsPartitionTheMesh) {
  c::DecompOptions opt;
  opt.layout = c::DecompOptions::Layout::kRows;
  const c::BlockDecomposition dec(20, 37, 5, opt);
  EXPECT_TRUE(dec.row_strips());
  EXPECT_EQ(dec.grid_x(), 1);
  EXPECT_EQ(dec.grid_y(), 5);
  int rows = 0;
  int cursor = 0;
  for (int r = 0; r < dec.nranks(); ++r) {
    const c::Tile& t = dec.tile(r);
    EXPECT_EQ(t.x_begin, 0);
    EXPECT_EQ(t.x_end, 20);
    EXPECT_EQ(t.y_begin, cursor) << "strips must be contiguous in rank order";
    EXPECT_GE(t.ny(), 1);
    cursor = t.y_end;
    rows += t.ny();
    // Neighbour wiring: strips only see up/down.
    EXPECT_EQ(t.neighbour_of(c::Face::kLeft), -1);
    EXPECT_EQ(t.neighbour_of(c::Face::kRight), -1);
    EXPECT_EQ(t.neighbour_of(c::Face::kBottom), r > 0 ? r - 1 : -1);
    EXPECT_EQ(t.neighbour_of(c::Face::kTop), r + 1 < dec.nranks() ? r + 1 : -1);
  }
  EXPECT_EQ(rows, 37);
}

TEST(WeightedDecomposition, WeightsApportionByLargestRemainder) {
  c::DecompOptions opt;
  opt.weights = {1.0, 3.0};  // non-empty weights imply row strips
  const c::BlockDecomposition dec(16, 100, 2, opt);
  EXPECT_TRUE(dec.row_strips());
  // Floor-first apportionment: each rank is granted one row up front and the
  // weights split the remaining 98 (quotas 24.5/73.5 -> floors 24/73, the
  // spare row breaks the 0.5/0.5 remainder tie toward the lower rank), so
  // the split is 26/74 — one row shy of the naive 25/75 for the heavy rank.
  EXPECT_EQ(dec.tile(0).ny(), 26);
  EXPECT_EQ(dec.tile(1).ny(), 74);
}

TEST(WeightedDecomposition, EveryRankKeepsAtLeastOneRow) {
  c::DecompOptions opt;
  opt.weights = {1000.0, 1.0, 1.0};  // extreme skew cannot starve a rank
  const c::BlockDecomposition dec(8, 10, 3, opt);
  int rows = 0;
  for (int r = 0; r < 3; ++r) {
    EXPECT_GE(dec.tile(r).ny(), 1);
    rows += dec.tile(r).ny();
  }
  EXPECT_EQ(rows, 10);
  EXPECT_GE(dec.tile(0).ny(), 8);  // the heavy rank takes nearly everything
}

TEST(WeightedDecomposition, EqualWeightsMatchUnweightedRowStrips) {
  c::DecompOptions rows_only;
  rows_only.layout = c::DecompOptions::Layout::kRows;
  c::DecompOptions equal;
  equal.weights = {2.5, 2.5, 2.5};
  const c::BlockDecomposition a(12, 31, 3, rows_only);
  const c::BlockDecomposition b(12, 31, 3, equal);
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(a.tile(r).y_begin, b.tile(r).y_begin);
    EXPECT_EQ(a.tile(r).y_end, b.tile(r).y_end);
  }
}

TEST(WeightedDecomposition, RejectsMalformedWeightsAndOverwideWorlds) {
  c::DecompOptions bad_count;
  bad_count.weights = {1.0, 2.0};  // 3 ranks need 3 weights
  EXPECT_THROW(c::BlockDecomposition(8, 8, 3, bad_count),
               std::invalid_argument);

  c::DecompOptions bad_value;
  bad_value.weights = {1.0, 0.0};
  EXPECT_THROW(c::BlockDecomposition(8, 8, 2, bad_value),
               std::invalid_argument);

  c::DecompOptions rows;
  rows.layout = c::DecompOptions::Layout::kRows;
  EXPECT_THROW(c::BlockDecomposition(64, 4, 5, rows), std::invalid_argument)
      << "more ranks than rows cannot give every rank a whole row";

  // Settings-level guard for the same condition.
  Settings s = elastic_problem(SolverKind::kCg, 40);
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

// ===========================================================================
// Elastic reductions: rank-count invariance
// ===========================================================================

TEST(ElasticMode, AnyRowSplitIsBitIdentical) {
  const Settings s1 = elastic_problem(SolverKind::kCg, 1);
  d::DistributedDriver base(s1, reference_factory());
  const d::DistReport ref = base.run();

  for (const int ranks : {2, 3, 5, 8}) {
    SCOPED_TRACE("ranks=" + std::to_string(ranks));
    const Settings s = elastic_problem(SolverKind::kCg, ranks);
    d::DistributedDriver driver(s, reference_factory());
    const d::DistReport rep = driver.run();
    expect_bit_identical(ref, rep);
  }

  // Weighted (uneven) strips split the same rows differently — still
  // bit-identical, which is what lets heterogeneous worlds stay exact.
  Settings sw = elastic_problem(SolverKind::kCg, 2);
  c::DecompOptions opt;
  opt.weights = {1.0, 3.0};
  d::DistributedDriver weighted(
      sw, reference_factory(),
      c::BlockDecomposition(sw.nx, sw.ny, sw.nranks, opt));
  expect_bit_identical(ref, weighted.run());
}

TEST(ElasticMode, RequiresARowCapablePort) {
  // The sim ports don't implement per-row reductions; asking for elastic
  // numerics through one must fail loudly, not silently change results.
  const Settings s = elastic_problem(SolverKind::kCg, 2);
  d::DistributedDriver driver(s, omp3_factory());
  EXPECT_THROW(driver.run(), std::invalid_argument);
}

// ===========================================================================
// Checkpoint wire format
// ===========================================================================

TEST(Checkpoint, SerializeDeserializeRoundtrip) {
  for (const std::uint64_t seed : {1u, 7u, 99u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const d::Snapshot snap = sample_snapshot(seed);
    const std::vector<std::uint8_t> bytes = d::serialize(snap);
    const d::Snapshot back = d::deserialize(bytes);
    expect_snapshots_equal(snap, back);
  }
}

TEST(Checkpoint, FileRoundtripAndUnreadablePaths) {
  const d::Snapshot snap = sample_snapshot();
  const std::string path =
      testing::TempDir() + "/tl_elastic_roundtrip.ckpt";
  d::save_snapshot(path, snap);
  expect_snapshots_equal(snap, d::load_snapshot(path));
  std::remove(path.c_str());

  EXPECT_THROW(d::load_snapshot("/nonexistent/dir/nope.ckpt"),
               d::CheckpointError);
  EXPECT_THROW(d::save_snapshot("/nonexistent/dir/nope.ckpt", snap),
               d::CheckpointError);
}

TEST(CheckpointFuzz, EveryTruncationIsDiagnosed) {
  const std::vector<std::uint8_t> bytes = d::serialize(sample_snapshot());
  ASSERT_GT(bytes.size(), 64u);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW(
        d::deserialize(std::span<const std::uint8_t>(bytes.data(), len)),
        d::CheckpointError)
        << "truncation to " << len << " bytes must throw";
  }
  // Trailing garbage is corruption too, not something to ignore.
  std::vector<std::uint8_t> extended = bytes;
  extended.push_back(0xAB);
  EXPECT_THROW(d::deserialize(extended), d::CheckpointError);
}

TEST(CheckpointFuzz, EveryBitFlipIsDiagnosed) {
  // The trailing checksum covers everything before it, and the checksum
  // itself can't be flipped without mismatching — so *any* single-byte
  // corruption (magic, version, dims, rank counts, payload, checksum) must
  // surface as CheckpointError. This subsumes the targeted flipped-version /
  // mismatched-dims / cross-rank-count header cases.
  const std::vector<std::uint8_t> bytes = d::serialize(sample_snapshot());
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::vector<std::uint8_t> corrupt = bytes;
    corrupt[i] ^= 0x5A;
    EXPECT_THROW(d::deserialize(corrupt), d::CheckpointError)
        << "flip at byte " << i << " must throw";
  }
}

TEST(Checkpoint, ResumeFingerprintMismatchesAreRejected) {
  d::Snapshot snap = sample_snapshot();
  Settings s = Settings::default_problem();
  s.nx = snap.nx;
  s.ny = snap.ny;
  s.halo_depth = snap.halo_depth;
  s.solver = snap.solver;
  s.end_step = snap.end_step;
  s.eps = snap.eps;
  s.dt_init = snap.dt_init;
  s.elastic = snap.elastic;
  s.nranks = 2;  // different world than nranks_at_save — explicitly allowed
  EXPECT_NO_THROW(d::check_resume_compatible(snap, s));

  Settings bad = s;
  bad.nx = snap.nx + 1;
  EXPECT_THROW(d::check_resume_compatible(snap, bad), d::CheckpointError);
  bad = s;
  bad.solver = SolverKind::kJacobi;
  EXPECT_THROW(d::check_resume_compatible(snap, bad), d::CheckpointError);
  bad = s;
  bad.eps = snap.eps * 10.0;
  EXPECT_THROW(d::check_resume_compatible(snap, bad), d::CheckpointError);
  bad = s;
  bad.elastic = !snap.elastic;
  EXPECT_THROW(d::check_resume_compatible(snap, bad), d::CheckpointError);
  bad = s;
  bad.end_step = snap.completed_steps;  // nothing left to run
  EXPECT_THROW(d::check_resume_compatible(snap, bad), d::CheckpointError);
}

// ===========================================================================
// Kill-and-resume bit-identity battery
// ===========================================================================

TEST(KillResume, BitIdentityAcrossSolversAndRankTransitions) {
  const SolverKind solvers[] = {SolverKind::kCg, SolverKind::kCheby,
                                SolverKind::kPpcg, SolverKind::kJacobi};
  const int save_ranks[] = {1, 2, 4};
  const int resume_ranks[] = {1, 2, 4, 8};
  constexpr int kSteps = 2;
  constexpr int kKillAfter = 1;

  for (const SolverKind solver : solvers) {
    // Uninterrupted elastic baselines, one per resume rank count.
    std::map<int, d::DistReport> baseline;
    for (const int rr : resume_ranks) {
      const Settings s = elastic_problem(solver, rr, kSteps);
      d::DistributedDriver driver(s, reference_factory());
      baseline.emplace(rr, driver.run());
    }

    for (const int rs : save_ranks) {
      // Kill at the step-k boundary, keeping the last snapshot.
      d::Snapshot snap;
      bool captured = false;
      {
        const Settings s = elastic_problem(solver, rs, kSteps);
        d::DistributedDriver driver(s, reference_factory());
        d::RunControl ctl;
        ctl.halt_after_step = kKillAfter;
        ctl.on_checkpoint = [&](const d::Snapshot& sn) {
          snap = sn;
          captured = true;
        };
        const d::DistReport partial = driver.run(ctl);
        ASSERT_TRUE(captured);
        ASSERT_EQ(snap.completed_steps, kKillAfter);
        ASSERT_EQ(partial.run.steps.size(),
                  static_cast<std::size_t>(kKillAfter));
      }
      // The snapshot travels through the wire format, as it would on disk.
      const d::Snapshot reloaded = d::deserialize(d::serialize(snap));

      for (const int rr : resume_ranks) {
        SCOPED_TRACE(std::string(tl::core::solver_name(solver)) + " R" +
                     std::to_string(rs) + " -> R" + std::to_string(rr));
        Settings s = elastic_problem(solver, rr, kSteps);
        d::check_resume_compatible(reloaded, s);
        d::DistributedDriver driver(s, reference_factory());
        d::RunControl ctl;
        ctl.resume = &reloaded;
        const d::DistReport resumed = driver.run(ctl);
        expect_bit_identical(baseline.at(rr), resumed);
      }
    }
  }
}

TEST(KillResume, SameRankCountRestoresClockAndCommCursors) {
  // Non-elastic fused runs checkpoint too: with an unchanged rank count the
  // decomposition (and hence the reduction order) is unchanged, so the
  // resumed run is bit-identical AND the simulated clocks line up exactly.
  Settings s = Settings::default_problem();
  s.nx = s.ny = 32;
  s.solver = SolverKind::kCg;
  s.end_step = 3;
  s.nranks = 4;

  d::DistributedDriver base(s, omp3_factory());
  const d::DistReport full = base.run();

  d::Snapshot snap;
  {
    d::DistributedDriver first(s, omp3_factory());
    d::RunControl ctl;
    ctl.halt_after_step = 2;
    ctl.on_checkpoint = [&](const d::Snapshot& sn) { snap = sn; };
    first.run(ctl);
  }
  ASSERT_EQ(snap.completed_steps, 2);
  ASSERT_EQ(snap.nranks_at_save, 4);

  d::DistributedDriver second(s, omp3_factory());
  d::RunControl ctl;
  ctl.resume = &snap;
  const d::DistReport resumed = second.run(ctl);
  expect_bit_identical(full, resumed);
  ASSERT_EQ(resumed.ranks.size(), full.ranks.size());
  for (std::size_t r = 0; r < full.ranks.size(); ++r) {
    EXPECT_EQ(resumed.ranks[r].sim_seconds, full.ranks[r].sim_seconds);
    EXPECT_EQ(resumed.ranks[r].kernel_launches, full.ranks[r].kernel_launches);
    EXPECT_EQ(resumed.ranks[r].comm.bytes, full.ranks[r].comm.bytes);
    EXPECT_EQ(resumed.ranks[r].comm.halo_exchanges,
              full.ranks[r].comm.halo_exchanges);
  }
  EXPECT_EQ(resumed.run.sim_total_seconds, full.run.sim_total_seconds);
}

TEST(KillResume, PeriodicCadenceCapturesEveryBoundary) {
  Settings s = elastic_problem(SolverKind::kCg, 2, 3);
  d::DistributedDriver driver(s, reference_factory());
  d::RunControl ctl;
  ctl.checkpoint_every = 1;
  std::vector<int> seen;
  ctl.on_checkpoint = [&](const d::Snapshot& sn) {
    seen.push_back(sn.completed_steps);
    EXPECT_EQ(sn.steps.size(), static_cast<std::size_t>(sn.completed_steps));
    EXPECT_EQ(sn.nranks_at_save, 2);
  };
  driver.run(ctl);
  EXPECT_EQ(seen, (std::vector<int>{1, 2, 3}));
}

// ===========================================================================
// Comm fault injection
// ===========================================================================

TEST(FaultInjection, LossySchedulesSurviveBitIdentically) {
  Settings s = Settings::default_problem();
  s.nx = s.ny = 32;
  s.solver = SolverKind::kCg;
  s.end_step = 2;
  s.nranks = 4;

  d::DistributedDriver base(s, reference_factory());
  const d::DistReport clean = base.run();

  std::uint64_t total_injected = 0;
  std::uint64_t total_retries = 0;
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    d::DistributedDriver driver(s, reference_factory());
    d::RunControl ctl;
    ctl.faults.seed = seed;
    ctl.faults.drop = 0.08;
    ctl.faults.duplicate = 0.05;
    ctl.faults.delay = 0.05;
    const d::DistReport rep = driver.run(ctl);
    expect_bit_identical(clean, rep);
    std::uint64_t injected = 0;
    std::uint64_t retries = 0;
    for (const d::RankReport& r : rep.ranks) {
      injected += r.comm.dropped + r.comm.duplicated + r.comm.delayed;
      retries += r.comm.retries;
    }
    EXPECT_GT(injected, 0u) << "the schedule must actually inject faults";
    total_injected += injected;
    total_retries += retries;
  }
  EXPECT_GT(total_injected, 0u);
  EXPECT_GT(total_retries, 0u) << "dropped payloads must force retransmits";
}

TEST(FaultInjection, UnsurvivableScheduleIsDiagnosable) {
  Settings s = Settings::default_problem();
  s.nx = s.ny = 16;
  s.solver = SolverKind::kCg;
  s.end_step = 1;
  s.nranks = 2;

  d::DistributedDriver driver(s, reference_factory());
  d::RunControl ctl;
  ctl.faults.seed = 3;
  ctl.faults.drop = 1.0;  // every DATA send vanishes — nothing can survive
  ctl.faults.max_attempts = 3;
  ctl.faults.poll_limit = 20000;
  EXPECT_THROW(driver.run(ctl), c::CommFaultError);
}

TEST(FaultInjection, HardFailKillsEpochZeroAndSparesTheResume) {
  Settings s = elastic_problem(SolverKind::kCg, 2, 2);

  d::DistributedDriver base(s, reference_factory());
  const d::DistReport clean = base.run();

  c::FaultSpec spec;
  spec.hard_fail_rank = 0;
  spec.hard_fail_step = 2;
  spec.max_attempts = 4;
  spec.poll_limit = 20000;

  // Epoch 0: the world dies at step 2, after the step-1 checkpoint.
  d::Snapshot snap;
  bool captured = false;
  {
    d::DistributedDriver doomed(s, reference_factory());
    d::RunControl ctl;
    ctl.faults = spec;
    ctl.checkpoint_every = 1;
    ctl.on_checkpoint = [&](const d::Snapshot& sn) {
      snap = sn;
      captured = true;
    };
    EXPECT_THROW(doomed.run(ctl), c::CommFaultError);
  }
  ASSERT_TRUE(captured);
  ASSERT_EQ(snap.completed_steps, 1);

  // Epoch 1 resumes from the snapshot; the hard-fail trigger is epoch-0
  // only, so the continued run completes — bit-identical to the clean one.
  d::DistributedDriver retry(s, reference_factory());
  d::RunControl ctl;
  ctl.faults = spec;
  ctl.faults.epoch = 1;
  ctl.resume = &snap;
  expect_bit_identical(clean, retry.run(ctl));
}

// ===========================================================================
// In-flight comm corruption (tl_verify --perturb comm targets)
// ===========================================================================

TEST(CommPerturb, CorruptionChangesResultsAndUnknownTargetsThrow) {
  Settings s = Settings::default_problem();
  s.nx = s.ny = 32;
  s.solver = SolverKind::kCg;
  s.end_step = 1;
  s.nranks = 2;

  d::DistributedDriver base(s, reference_factory());
  const d::DistReport clean = base.run();

  for (const char* target : {"halo_payload", "allreduce"}) {
    SCOPED_TRACE(target);
    d::DistributedDriver driver(s, reference_factory());
    d::RunControl ctl;
    ctl.comm_perturb = target;
    const d::DistReport rep = driver.run(ctl);
    // A silently absorbed perturbation would be a broken detector: the
    // corrupted run must differ somewhere bit-comparable.
    const bool u_differs =
        std::memcmp(clean.u.data(), rep.u.data(),
                    clean.u.size() * sizeof(double)) != 0;
    const bool rr_differs = clean.run.steps.back().solve.rr_history !=
                            rep.run.steps.back().solve.rr_history;
    EXPECT_TRUE(u_differs || rr_differs);
  }

  d::DistributedDriver bogus(s, reference_factory());
  d::RunControl ctl;
  ctl.comm_perturb = "bogus_target";
  EXPECT_THROW(bogus.run(ctl), std::invalid_argument);
}

TEST(CommPerturb, ConformanceCheckerFailsThePerturbedCells) {
  for (const char* target : {"halo_payload", "allreduce"}) {
    SCOPED_TRACE(target);
    tl::verify::VerifyOptions opt;
    opt.nx = 32;
    opt.ranks = 2;
    opt.solvers = {SolverKind::kCg};
    opt.only_model = *tl::sim::parse_model("omp3");
    opt.only_device = *tl::sim::parse_device("cpu");
    opt.comm_perturb = target;
    const tl::verify::ConformanceReport report =
        tl::verify::run_conformance(opt);
    EXPECT_FALSE(report.all_pass());
    EXPECT_GT(report.failed_cells(), 0);
  }

  tl::verify::VerifyOptions single;
  single.ranks = 1;
  single.comm_perturb = "halo_payload";
  EXPECT_THROW(tl::verify::run_conformance(single), std::invalid_argument);
}

// ===========================================================================
// Service: checkpoint-resume of fault-killed jobs
// ===========================================================================

namespace {

tl::service::Job elastic_job(const std::string& tenant, std::uint64_t seed,
                             int hard_fail_step) {
  tl::service::Job job;
  job.tenant = tenant;
  job.scenario.settings = Settings::default_problem();
  job.scenario.settings.nx = job.scenario.settings.ny = 24;
  job.scenario.settings.solver = SolverKind::kCg;
  job.scenario.settings.end_step = 2;
  job.scenario.settings.nranks = 2;
  job.resumable = true;
  job.faults.seed = seed;
  job.faults.drop = 0.02;
  job.faults.max_attempts = 10;
  job.faults.hard_fail_rank = hard_fail_step > 0 ? 0 : -1;
  job.faults.hard_fail_step = hard_fail_step;
  return job;
}

}  // namespace

TEST(ServiceElastic, FaultSoakEndsWithZeroFailuresAndIdenticalResults) {
  tl::service::ServiceConfig config;
  config.small_workers = 2;
  config.large_workers = 0;
  tl::service::SolveService svc(config);

  std::vector<tl::service::Job> jobs;
  const char* tenants[] = {"acme", "burl", "cato"};
  for (int i = 0; i < 9; ++i) {
    // A third of the jobs hard-fail on their first attempt — half of those
    // after the first checkpoint (resume mid-run), half during step 1
    // (restart from scratch). The rest just run under a lossy schedule.
    const int hard_fail = i % 3 == 0 ? (i % 2 == 0 ? 2 : 1) : -1;
    jobs.push_back(elastic_job(tenants[i % 3],
                               static_cast<std::uint64_t>(100 + i),
                               hard_fail));
  }
  for (const tl::service::Job& job : jobs) svc.submit(job);
  const tl::service::ServiceReport report = svc.finish();

  ASSERT_EQ(report.results.size(), jobs.size());
  EXPECT_TRUE(report.all_ok()) << "every fault-killed job must resume";

  int resumed = 0;
  for (const tl::service::JobResult& r : report.results) {
    SCOPED_TRACE("job " + std::to_string(r.id));
    EXPECT_TRUE(r.error.empty());
    EXPECT_EQ(r.checkpoint, nullptr)
        << "recorded results must not drag snapshots along";
    if (r.resume_attempts > 0) ++resumed;

    // Bit-identity with the clean standalone twin: faults, retries, and
    // checkpoint resumes must never change the answer.
    const tl::service::Job& job = jobs[static_cast<std::size_t>(r.id - 1)];
    const tl::service::ScenarioOutcome twin =
        tl::service::run_scenario(job.scenario);
    EXPECT_EQ(r.u_checksum.sum, twin.u_checksum.sum);
    EXPECT_EQ(r.u_checksum.l2, twin.u_checksum.l2);
    EXPECT_EQ(r.energy_checksum.sum, twin.energy_checksum.sum);
    EXPECT_EQ(r.energy_checksum.l2, twin.energy_checksum.l2);
  }
  EXPECT_GT(resumed, 0) << "the hard-fail jobs must ride the resume path";
}
