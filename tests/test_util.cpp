// Unit tests for src/util: containers, RNG, statistics, parsing, writers.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "util/buffer.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/ini.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/span2d.hpp"
#include "util/stats.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace u = tl::util;

// ---------------------------------------------------------------------------
// Span2D / Buffer
// ---------------------------------------------------------------------------

TEST(Span2D, RowMajorLayoutXIsFast) {
  double data[6] = {0, 1, 2, 3, 4, 5};
  u::Span2D<double> s(data, 3, 2);
  EXPECT_EQ(s(0, 0), 0.0);
  EXPECT_EQ(s(2, 0), 2.0);
  EXPECT_EQ(s(0, 1), 3.0);
  EXPECT_EQ(s(2, 1), 5.0);
  EXPECT_EQ(s.size(), 6u);
}

TEST(Span2D, FlatAccessMatchesCoordinates) {
  double data[12];
  u::Span2D<double> s(data, 4, 3);
  for (std::size_t i = 0; i < s.size(); ++i) s[i] = static_cast<double>(i);
  EXPECT_EQ(s(1, 2), 9.0);
}

TEST(Span2D, ConstConversion) {
  double data[4] = {1, 2, 3, 4};
  u::Span2D<double> s(data, 2, 2);
  u::Span2D<const double> cs = s;
  EXPECT_EQ(cs(1, 1), 4.0);
}

TEST(Buffer, ZeroInitialisedAndAligned) {
  u::Buffer<double> b(1000);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_EQ(b[i], 0.0);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) % u::kCacheLineBytes, 0u);
}

TEST(Buffer, CopyIsDeep) {
  u::Buffer<double> a(8);
  a.fill(3.5);
  u::Buffer<double> b = a;
  b[0] = -1.0;
  EXPECT_EQ(a[0], 3.5);
  EXPECT_EQ(b[1], 3.5);
}

TEST(Buffer, MoveTransfersOwnership) {
  u::Buffer<double> a(8);
  a.fill(2.0);
  const double* p = a.data();
  u::Buffer<double> b = std::move(a);
  EXPECT_EQ(b.data(), p);
  EXPECT_TRUE(a.empty());
}

TEST(Buffer, View2DRoundTrip) {
  u::Buffer<double> b(6);
  auto v = b.view2d(3, 2);
  v(2, 1) = 9.0;
  EXPECT_EQ(b[5], 9.0);
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  u::Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  u::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, DoublesInUnitInterval) {
  u::Rng r(7);
  for (int i = 0; i < 10'000; ++i) {
    const double v = r.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformMeanReasonable) {
  u::Rng r(11);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += r.uniform(2.0, 4.0);
  EXPECT_NEAR(sum / n, 3.0, 0.01);
}

TEST(Rng, NextBelowIsBounded) {
  u::Rng r(13);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(17), 17u);
  EXPECT_EQ(r.next_below(0), 0u);
}

TEST(Rng, NormalMoments) {
  u::Rng r(17);
  double sum = 0.0, sq = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const double v = r.next_normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.02);
}

// ---------------------------------------------------------------------------
// stats
// ---------------------------------------------------------------------------

TEST(Stats, SummaryBasics) {
  const double vals[] = {4.0, 1.0, 3.0, 2.0};
  const u::Summary s = u::summarize(vals);
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_NEAR(s.stddev, std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Stats, SummaryEmptyAndSingle) {
  EXPECT_EQ(u::summarize({}).count, 0u);
  const double one[] = {5.0};
  const u::Summary s = u::summarize(one);
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.min, 5.0);
  EXPECT_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_EQ(s.median, 5.0);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(Stats, SummaryConstantSeries) {
  const double vals[] = {2.5, 2.5, 2.5, 2.5, 2.5};
  const u::Summary s = u::summarize(vals);
  EXPECT_EQ(s.count, 5u);
  EXPECT_EQ(s.min, 2.5);
  EXPECT_EQ(s.max, 2.5);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  // Cancellation in the variance accumulation must not go negative/NaN.
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(Stats, LinearFitExact) {
  const double x[] = {1, 2, 3, 4};
  const double y[] = {3, 5, 7, 9};  // y = 1 + 2x
  const u::LinearFit f = u::fit_linear(x, y);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(Stats, PowerFitExact) {
  std::vector<double> x, y;
  for (int i = 1; i <= 6; ++i) {
    x.push_back(i * 10.0);
    y.push_back(2.5 * std::pow(i * 10.0, 1.3));
  }
  const u::PowerFit f = u::fit_power(x, y);
  EXPECT_NEAR(f.coefficient, 2.5, 1e-9);
  EXPECT_NEAR(f.exponent, 1.3, 1e-12);
  EXPECT_NEAR(f.eval(100.0), 2.5 * std::pow(100.0, 1.3), 1e-6);
}

TEST(Stats, PowerFitRejectsNonPositive) {
  const double x[] = {1.0, -2.0};
  const double y[] = {1.0, 2.0};
  EXPECT_THROW(u::fit_power(x, y), std::invalid_argument);
}

TEST(Stats, RelDiff) {
  EXPECT_DOUBLE_EQ(u::rel_diff(1.0, 1.0), 0.0);
  EXPECT_NEAR(u::rel_diff(1.0, 1.1), 0.1 / 1.1, 1e-12);
}

// ---------------------------------------------------------------------------
// string_util
// ---------------------------------------------------------------------------

TEST(StringUtil, TrimAndLower) {
  EXPECT_EQ(u::trim("  a b \t"), "a b");
  EXPECT_EQ(u::to_lower("AbC"), "abc");
  EXPECT_EQ(u::trim(""), "");
}

TEST(StringUtil, Split) {
  const auto parts = u::split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
}

TEST(StringUtil, Parsers) {
  EXPECT_EQ(u::parse_double("2.5"), 2.5);
  EXPECT_FALSE(u::parse_double("2.5x").has_value());
  EXPECT_EQ(u::parse_long(" 42 "), 42);
  EXPECT_FALSE(u::parse_long("4.2").has_value());
  EXPECT_EQ(u::parse_bool("On"), true);
  EXPECT_EQ(u::parse_bool("no"), false);
  EXPECT_FALSE(u::parse_bool("maybe").has_value());
}

TEST(StringUtil, Strf) {
  EXPECT_EQ(u::strf("%d-%s", 3, "x"), "3-x");
}

TEST(StringUtil, HumanFormats) {
  EXPECT_EQ(u::human_count(1'500'000), "1.50M");
  EXPECT_EQ(u::human_seconds(0.002), "2.00 ms");
}

// ---------------------------------------------------------------------------
// ini
// ---------------------------------------------------------------------------

TEST(Ini, ParsesKeysFlagsAndComments) {
  const auto cfg = u::IniConfig::parse(
      "! tea.in style\n"
      "x_cells=128\n"
      "tl_use_cg\n"
      "tl_eps = 1e-12  ! tolerance\n");
  EXPECT_EQ(cfg.get_long_or("x_cells", 0), 128);
  EXPECT_TRUE(cfg.get_bool_or("tl_use_cg", false));
  EXPECT_DOUBLE_EQ(cfg.get_double_or("tl_eps", 0.0), 1e-12);
  EXPECT_EQ(cfg.get_or("missing", "d"), "d");
}

TEST(Ini, ParsesStateLines) {
  const auto cfg = u::IniConfig::parse(
      "state 1 density=100.0 energy=0.0001\n"
      "state 2 density=0.1 energy=25.0 xmin=0.0 xmax=5.0 ymin=0.0 ymax=2.0\n");
  ASSERT_EQ(cfg.states().size(), 2u);
  EXPECT_EQ(cfg.states()[1].index, 2);
  EXPECT_DOUBLE_EQ(cfg.states()[1].fields.at("xmax"), 5.0);
}

TEST(Ini, BadStateLineThrows) {
  EXPECT_THROW(u::IniConfig::parse("state x density=1"), std::runtime_error);
  EXPECT_THROW(u::IniConfig::parse("state 1 density=abc"), std::runtime_error);
}

TEST(Ini, TypeErrorsThrow) {
  const auto cfg = u::IniConfig::parse("k=hello\n");
  EXPECT_THROW(cfg.get_double_or("k", 0.0), std::runtime_error);
}

TEST(Ini, EmptyAndWhitespaceOnlyInputsParse) {
  for (const char* text : {"", "\n", "\n\n\n", "   \n\t\n", "! only\n# here\n"}) {
    const auto cfg = u::IniConfig::parse(text);
    EXPECT_FALSE(cfg.has("anything")) << "input: '" << text << "'";
    EXPECT_TRUE(cfg.states().empty());
  }
}

TEST(Ini, CrlfInputParsesSameAsLf) {
  // tea.in files written on Windows end lines with \r\n; the parser must not
  // leave the \r glued onto values or flag names.
  const auto lf = u::IniConfig::parse("x_cells=128\ntl_use_cg\ntl_eps=1e-12\n");
  const auto crlf =
      u::IniConfig::parse("x_cells=128\r\ntl_use_cg\r\ntl_eps=1e-12\r\n");
  EXPECT_EQ(crlf.get_long_or("x_cells", 0), lf.get_long_or("x_cells", 0));
  EXPECT_EQ(crlf.get_bool_or("tl_use_cg", false),
            lf.get_bool_or("tl_use_cg", false));
  EXPECT_DOUBLE_EQ(crlf.get_double_or("tl_eps", 0.0),
                   lf.get_double_or("tl_eps", 0.0));
}

TEST(Ini, SectionHeadersAreIgnoredButUnterminatedOnesThrow) {
  const auto cfg = u::IniConfig::parse("[header]\nx=1\n[another]\ny=2\n");
  EXPECT_EQ(cfg.get_long_or("x", 0), 1);
  EXPECT_EQ(cfg.get_long_or("y", 0), 2);
  EXPECT_THROW(u::IniConfig::parse("[oops\nx=1\n"), std::runtime_error);
  EXPECT_THROW(u::IniConfig::parse("x=1\n[tail"), std::runtime_error);
}

TEST(Ini, RandomGarbageEitherParsesOrThrows) {
  // Fuzz sanity: arbitrary byte soup must never crash or hang — every line
  // either lands as a key/flag/state or raises std::runtime_error.
  u::Rng rng(99);
  const char alphabet[] = "ab=[] \t!#\r\nstate 0123.";
  for (int trial = 0; trial < 200; ++trial) {
    std::string text;
    const std::size_t len = rng.next_below(80);
    for (std::size_t i = 0; i < len; ++i) {
      text += alphabet[rng.next_below(sizeof(alphabet) - 1)];
    }
    try {
      const auto cfg = u::IniConfig::parse(text);
      (void)cfg;
    } catch (const std::runtime_error&) {
      // Acceptable: malformed state lines / section headers report as errors.
    }
  }
}

// ---------------------------------------------------------------------------
// cli
// ---------------------------------------------------------------------------

TEST(Cli, ParsesFlagsAndPositionals) {
  const char* argv[] = {"prog", "pos1", "--nx=64", "--device", "gpu", "--fast"};
  const u::Cli cli(6, argv);
  EXPECT_EQ(cli.get_long_or("nx", 0), 64);
  EXPECT_EQ(cli.get_or("device", ""), "gpu");
  EXPECT_TRUE(cli.has("fast"));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
}

TEST(Cli, BareFlagGreedilyConsumesNextNonFlag) {
  // Documented ambiguity of the `--flag value` form: a bare flag followed by
  // a non-flag token takes it as its value.
  const char* argv[] = {"prog", "--fast", "pos1"};
  const u::Cli cli(3, argv);
  EXPECT_EQ(cli.get_or("fast", ""), "pos1");
  EXPECT_TRUE(cli.positional().empty());
}

TEST(Cli, TypeErrorThrows) {
  const char* argv[] = {"prog", "--nx=abc"};
  const u::Cli cli(2, argv);
  EXPECT_THROW(cli.get_long_or("nx", 0), std::runtime_error);
}

// ---------------------------------------------------------------------------
// log
// ---------------------------------------------------------------------------

TEST(Log, ThresholdFiltersLevels) {
  const auto before = u::log_level();
  u::set_log_level(u::LogLevel::kError);
  EXPECT_EQ(u::log_level(), u::LogLevel::kError);
  // Below-threshold calls are dropped without touching stderr state; this
  // mainly asserts the calls are safe at any level.
  u::log_debug("dropped %d", 1);
  u::log_info("dropped %s", "x");
  u::log_warn("dropped");
  u::set_log_level(u::LogLevel::kOff);
  u::log_error("also dropped");
  u::set_log_level(before);
}

TEST(Log, MessageApiAcceptsStrings) {
  const auto before = u::log_level();
  u::set_log_level(u::LogLevel::kOff);
  u::log_message(u::LogLevel::kError, std::string(300, 'x'));
  u::set_log_level(before);
}

TEST(Log, ParseLogLevelAcceptsAllNames) {
  EXPECT_EQ(u::parse_log_level("debug"), u::LogLevel::kDebug);
  EXPECT_EQ(u::parse_log_level("info"), u::LogLevel::kInfo);
  EXPECT_EQ(u::parse_log_level("warn"), u::LogLevel::kWarn);
  EXPECT_EQ(u::parse_log_level("warning"), u::LogLevel::kWarn);
  EXPECT_EQ(u::parse_log_level("error"), u::LogLevel::kError);
  EXPECT_EQ(u::parse_log_level("off"), u::LogLevel::kOff);
  EXPECT_EQ(u::parse_log_level("none"), u::LogLevel::kOff);
}

TEST(Log, ParseLogLevelIsCaseAndWhitespaceInsensitive) {
  // TL_LOG_LEVEL comes straight from the environment, so tolerate the usual
  // shell noise.
  EXPECT_EQ(u::parse_log_level("WARN"), u::LogLevel::kWarn);
  EXPECT_EQ(u::parse_log_level("Debug"), u::LogLevel::kDebug);
  EXPECT_EQ(u::parse_log_level("  info "), u::LogLevel::kInfo);
}

TEST(Log, ParseLogLevelRejectsUnknown) {
  EXPECT_EQ(u::parse_log_level("bogus"), std::nullopt);
  EXPECT_EQ(u::parse_log_level(""), std::nullopt);
  EXPECT_EQ(u::parse_log_level("3"), std::nullopt);
}

// ---------------------------------------------------------------------------
// table / csv
// ---------------------------------------------------------------------------

TEST(Table, RendersAlignedRows) {
  u::Table t({"name", "value"});
  t.row({"alpha", "1.5"});
  t.row({"b", "22.25"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| alpha |"), std::string::npos);
  EXPECT_NE(out.find(" 22.25 |"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  u::Table t({"a", "b"});
  EXPECT_THROW(t.row({"only one"}), std::invalid_argument);
}

TEST(Csv, WritesEscapedRows) {
  const std::string path = std::filesystem::temp_directory_path() /
                           "tlm_test_csv.csv";
  {
    u::CsvWriter csv(path, {"a", "b"});
    csv.row({"x,y", "pla\"in"});
  }
  std::ifstream in(path);
  std::string header, row;
  std::getline(in, header);
  std::getline(in, row);
  EXPECT_EQ(header, "a,b");
  EXPECT_EQ(row, "\"x,y\",\"pla\"\"in\"");
  std::filesystem::remove(path);
}

TEST(Csv, RowWidthMismatchThrows) {
  const std::string path = std::filesystem::temp_directory_path() /
                           "tlm_test_csv2.csv";
  u::CsvWriter csv(path, {"a"});
  EXPECT_THROW(csv.row({"1", "2"}), std::invalid_argument);
  std::filesystem::remove(path);
}

TEST(Csv, ParseLineSplitsPlainCells) {
  EXPECT_EQ(u::parse_csv_line("a,b,c"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(u::parse_csv_line(""), (std::vector<std::string>{""}));
  EXPECT_EQ(u::parse_csv_line(",x,"),
            (std::vector<std::string>{"", "x", ""}));
}

TEST(Csv, ParseLineHandlesQuotedCommasAndEscapedQuotes) {
  EXPECT_EQ(u::parse_csv_line("\"x,y\",\"pla\"\"in\""),
            (std::vector<std::string>{"x,y", "pla\"in"}));
  EXPECT_EQ(u::parse_csv_line("\"a\nb\""),  // embedded newline survives
            (std::vector<std::string>{"a\nb"}));
}

TEST(Csv, ParseLineDropsOneTrailingCarriageReturn) {
  EXPECT_EQ(u::parse_csv_line("a,b\r"), (std::vector<std::string>{"a", "b"}));
  // Only the CRLF artefact goes; an interior \r is cell data.
  EXPECT_EQ(u::parse_csv_line("a\rb"), (std::vector<std::string>{"a\rb"}));
}

TEST(Csv, ParseLineUnterminatedQuoteThrows) {
  EXPECT_THROW(u::parse_csv_line("\"never closed"), std::runtime_error);
  EXPECT_THROW(u::parse_csv_line("ok,\"half"), std::runtime_error);
}

TEST(Csv, WriterAndParserRoundTripRandomCells) {
  // Fuzz the writer-escape / parser-unescape pair: any newline-free cell
  // content (commas, quotes, spaces) must survive a write-then-parse cycle.
  u::Rng rng(123);
  const char alphabet[] = "ab,\", x";
  const std::string path =
      std::filesystem::temp_directory_path() / "tlm_test_csv_fuzz.csv";
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::string> cells(3);
    for (std::string& cell : cells) {
      const std::size_t len = rng.next_below(10);
      for (std::size_t i = 0; i < len; ++i) {
        cell += alphabet[rng.next_below(sizeof(alphabet) - 1)];
      }
    }
    {
      u::CsvWriter csv(path, {"c1", "c2", "c3"});
      csv.row(cells);
    }
    std::ifstream in(path);
    std::string header, row;
    std::getline(in, header);
    std::getline(in, row);
    ASSERT_EQ(u::parse_csv_line(row), cells)
        << "raw row: " << row;
  }
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// JSON parser (util/json.hpp): the telemetry report/check layer rests on it.
// ---------------------------------------------------------------------------

TEST(Json, ParsesScalarsArraysAndNestedObjects) {
  const u::JsonValue v = u::parse_json(
      R"({"a": 1.5, "b": [true, false, null, "x"], "c": {"d": -2e3}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v.get_number_or("a", 0.0), 1.5);
  const u::JsonValue* b = v.find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(b->as_array().size(), 4u);
  EXPECT_TRUE(b->as_array()[0].as_bool());
  EXPECT_TRUE(b->as_array()[2].is_null());
  EXPECT_EQ(b->as_array()[3].as_string(), "x");
  const u::JsonValue* c = v.find("c");
  ASSERT_NE(c, nullptr);
  EXPECT_DOUBLE_EQ(c->get_number_or("d", 0.0), -2000.0);
}

TEST(Json, PreservesObjectKeyOrder) {
  const u::JsonValue v = u::parse_json(R"({"z": 1, "a": 2, "m": 3})");
  const auto& obj = v.as_object();
  ASSERT_EQ(obj.size(), 3u);
  EXPECT_EQ(obj[0].first, "z");
  EXPECT_EQ(obj[1].first, "a");
  EXPECT_EQ(obj[2].first, "m");
}

TEST(Json, DecodesEscapesAndUnicode) {
  const u::JsonValue v =
      u::parse_json(R"({"s": "line\nquote\" back\\ uA"})");
  EXPECT_EQ(v.get_string_or("s", ""), "line\nquote\" back\\ uA");
}

TEST(Json, EscapeRoundTripsThroughParser) {
  const std::string nasty = "a\"b\\c\nd\te\x01f";
  const u::JsonValue v =
      u::parse_json("{\"k\": \"" + u::json_escape(nasty) + "\"}");
  EXPECT_EQ(v.get_string_or("k", ""), nasty);
}

TEST(Json, RejectsMalformedInputWithOffset) {
  EXPECT_THROW(u::parse_json("{"), std::runtime_error);
  EXPECT_THROW(u::parse_json("[1, 2,]"), std::runtime_error);
  EXPECT_THROW(u::parse_json("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW(u::parse_json("01"), std::runtime_error);    // number grammar
  EXPECT_THROW(u::parse_json("1 x"), std::runtime_error);   // trailing junk
  EXPECT_THROW(u::parse_json("nul"), std::runtime_error);
  try {
    u::parse_json("[1, }");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("byte"), std::string::npos);
  }
}

TEST(Json, DefaultingAccessorsIgnoreKindMismatch) {
  const u::JsonValue v = u::parse_json(R"({"s": "text", "n": 4})");
  EXPECT_DOUBLE_EQ(v.get_number_or("s", 7.5), 7.5);   // wrong kind
  EXPECT_DOUBLE_EQ(v.get_number_or("missing", 7.5), 7.5);
  EXPECT_EQ(v.get_string_or("n", "d"), "d");
  EXPECT_DOUBLE_EQ(v.get_number_or("n", 0.0), 4.0);
}
