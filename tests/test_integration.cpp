// Integration tests: the bench pipeline end-to-end (iteration-model
// calibration feeding PhantomKernels at paper scale), the distributed
// (MiniComm) TeaLeaf step, and cross-cutting behaviours from the paper's
// evaluation narrative (Fig 11 shapes).

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "comm/halo.hpp"
#include "comm/minimpi.hpp"
#include "core/driver.hpp"
#include "core/iteration_model.hpp"
#include "core/phantom_kernels.hpp"
#include "core/reference_kernels.hpp"
#include "core/state_init.hpp"
#include "ports/registry.hpp"
#include "sim/stream.hpp"

using namespace tl;
using core::Settings;
using core::SolverKind;

namespace {
double modelled_solve_seconds(sim::Model model, sim::DeviceId device, int nx,
                              int outer, SolverKind solver = SolverKind::kCg,
                              std::uint64_t seed = 1) {
  Settings s = Settings::default_problem();
  s.nx = s.ny = nx;
  s.solver = solver;
  core::PhantomScript script;
  script.eps = s.eps;
  if (solver == SolverKind::kCheby) {
    script.converge_after_ur = s.cg_prep_iters;
    script.converge_after_cheby = std::max(1, outer - s.cg_prep_iters - 1);
    script.converge_on_ur = false;
  } else {
    script.converge_after_ur = outer;
    script.converge_on_ur = solver == SolverKind::kCg;
  }
  core::Driver driver(s,
                      std::make_unique<core::PhantomKernels>(
                          model, device, core::Mesh(nx, nx, s.halo_depth),
                          script, seed),
                      core::DriverOptions{.materialize_host_state = false});
  return driver.run().sim_total_seconds;
}
}  // namespace

// ---------------------------------------------------------------------------
// Paper-scale metering through the phantom pipeline
// ---------------------------------------------------------------------------

TEST(PaperScale, Phantom4096RunsInstantly) {
  // The headline mesh: 4096^2 x thousands of iterations, metered without
  // touching memory. Sanity: simulated time lands in the paper's order of
  // magnitude (hundreds to thousands of seconds).
  const double t =
      modelled_solve_seconds(sim::Model::kFortran,
                             sim::DeviceId::kCpuSandyBridge, 4096, 3000);
  EXPECT_GT(t, 10.0);
  EXPECT_LT(t, 100'000.0);
}

TEST(PaperScale, GpuBeatsCpuAtConvergenceMesh) {
  const double cpu = modelled_solve_seconds(
      sim::Model::kOmp3Cpp, sim::DeviceId::kCpuSandyBridge, 4096, 3000);
  const double gpu = modelled_solve_seconds(sim::Model::kCuda,
                                            sim::DeviceId::kGpuK20X, 4096, 3000);
  EXPECT_LT(gpu, cpu);
}

TEST(Fig11Shape, OffloadModelsHaveHighSmallMeshOverheads) {
  // Paper: OpenMP 4.0 / OpenCL-KNC have high intercepts that amortise as the
  // mesh grows. Compare per-cell cost at small vs large meshes.
  auto per_cell = [](sim::Model m, sim::DeviceId d, int nx, int outer) {
    return modelled_solve_seconds(m, d, nx, outer) /
           (static_cast<double>(nx) * nx);
  };
  // Same iteration count isolates the overhead effect.
  const double omp4_small = per_cell(sim::Model::kOmp4, sim::DeviceId::kMicKnc,
                                     128, 200);
  const double omp4_large = per_cell(sim::Model::kOmp4, sim::DeviceId::kMicKnc,
                                     2048, 200);
  EXPECT_GT(omp4_small, 3.0 * omp4_large);
  // The natively-compiled F90 port has far smaller overheads.
  const double f90_small = per_cell(sim::Model::kFortran,
                                    sim::DeviceId::kMicKnc, 128, 200);
  const double f90_large = per_cell(sim::Model::kFortran,
                                    sim::DeviceId::kMicKnc, 2048, 200);
  EXPECT_LT(f90_small / f90_large, omp4_small / omp4_large);
}

TEST(Fig11Shape, CpuCacheBendAroundNineHundredThousandCells) {
  // Paper: CPU models lead until ~9x10^5 cells, then LLC saturation bends
  // the curve. Per-cell cost should rise noticeably across the bend.
  auto per_cell = [](int nx, int outer) {
    return modelled_solve_seconds(sim::Model::kFortran,
                                  sim::DeviceId::kCpuSandyBridge, nx, outer) /
           (static_cast<double>(nx) * nx);
  };
  const double in_cache = per_cell(387, 300);    // 1.5e5 cells
  const double past_bend = per_cell(1949, 300);  // 3.8e6 cells
  EXPECT_GT(past_bend, 1.5 * in_cache);
}

TEST(Fig11Shape, GpuGrowthStaysNearLinear) {
  auto per_cell = [](int nx, int outer) {
    return modelled_solve_seconds(sim::Model::kCuda, sim::DeviceId::kGpuK20X,
                                  nx, outer) /
           (static_cast<double>(nx) * nx);
  };
  const double small = per_cell(612, 300);
  const double large = per_cell(2448, 300);
  // Per-cell cost shrinks or stays flat as overheads amortise: linear growth.
  EXPECT_LT(large, small * 1.05);
}

// ---------------------------------------------------------------------------
// Calibrated pipeline: real small-mesh solves -> power law -> big mesh
// ---------------------------------------------------------------------------

TEST(Calibration, FitFeedsPhantomConsistently) {
  Settings proto = Settings::default_problem();
  const std::vector<int> ladder = {32, 48, 64};
  const auto model = core::calibrate_iteration_model(SolverKind::kCg, proto,
                                                     ladder);
  const int predicted = model.predict_outer(96);
  // Check the prediction against a real 96^2 solve.
  Settings s = proto;
  s.nx = s.ny = 96;
  s.solver = SolverKind::kCg;
  core::Driver driver(s, std::make_unique<core::ReferenceKernels>(
                             core::Mesh(96, 96, s.halo_depth)));
  const int actual = driver.run_step().solve.iterations;
  EXPECT_NEAR(predicted, actual, 0.4 * actual);
}

TEST(DriverModes, LightweightModeHasNoHostChunk) {
  Settings s = Settings::default_problem();
  s.nx = s.ny = 32;
  core::PhantomScript script;
  script.converge_after_ur = 10;
  core::Driver driver(s,
                      std::make_unique<core::PhantomKernels>(
                          sim::Model::kCuda, sim::DeviceId::kGpuK20X,
                          core::Mesh(32, 32, 2), script, 1),
                      core::DriverOptions{.materialize_host_state = false});
  EXPECT_THROW(driver.chunk(), std::logic_error);
  const auto report = driver.run();
  EXPECT_EQ(report.steps[0].solve.iterations, 10);
  EXPECT_GT(report.sim_total_seconds, 0.0);
}

TEST(DriverModes, MaterializedModeExposesChunk) {
  Settings s = Settings::default_problem();
  s.nx = s.ny = 16;
  core::Driver driver(s, std::make_unique<core::ReferenceKernels>(
                             core::Mesh(16, 16, 2)));
  EXPECT_NO_THROW(driver.chunk());
  EXPECT_EQ(driver.mesh().nx, 16);
}

// ---------------------------------------------------------------------------
// Distributed TeaLeaf step over MiniComm
// ---------------------------------------------------------------------------

namespace {

/// Runs one distributed CG solve: the mesh is block-decomposed, each rank
/// owns a ReferenceKernels on its tile, halos move through HaloExchanger and
/// scalars through allreduce. Returns the global temperature sum.
double distributed_cg_temperature(int gnx, int gny, int ranks) {
  Settings proto = Settings::default_problem();
  proto.nx = gnx;
  proto.ny = gny;

  const comm::BlockDecomposition decomp(gnx, gny, ranks);
  double result = 0.0;
  comm::run_ranks(ranks, [&](comm::Communicator& cm) {
    const comm::Tile& tile = decomp.tile(cm.rank());
    core::Mesh mesh(tile.nx(), tile.ny(), proto.halo_depth);
    // Physical extents of this tile within the global domain.
    const double gdx = (proto.x_max - proto.x_min) / gnx;
    const double gdy = (proto.y_max - proto.y_min) / gny;
    mesh.x_min = proto.x_min + tile.x_begin * gdx;
    mesh.x_max = proto.x_min + tile.x_end * gdx;
    mesh.y_min = proto.y_min + tile.y_begin * gdy;
    mesh.y_max = proto.y_min + tile.y_end * gdy;

    core::Chunk chunk(mesh);
    core::apply_initial_states(chunk, proto);
    core::ReferenceKernels k(mesh);
    k.upload_state(chunk);

    comm::HaloExchanger ex(decomp, cm.rank(), proto.halo_depth);
    auto exchange = [&](core::FieldId f, int depth, int tag) {
      ex.exchange(cm, k.field(f), depth, tag);
    };

    exchange(core::FieldId::kDensity, 2, 0);
    exchange(core::FieldId::kEnergy0, 2, 1);
    k.init_u();
    const double rx = proto.dt_init / (gdx * gdx);
    const double ry = proto.dt_init / (gdy * gdy);
    k.init_coefficients(proto.coefficient, rx, ry);
    exchange(core::FieldId::kU, 1, 2);

    // Distributed CG: local kernels + allreduce on every dot product.
    using Op = comm::Communicator::ReduceOp;
    double rro = cm.allreduce(k.cg_init(), Op::kSum);
    exchange(core::FieldId::kP, 1, 3);
    bool converged = false;
    for (int it = 0; it < proto.max_iters && !converged; ++it) {
      const double pw = cm.allreduce(k.cg_calc_w(), Op::kSum);
      const double alpha = rro / pw;
      const double rrn = cm.allreduce(k.cg_calc_ur(alpha), Op::kSum);
      if (rrn < proto.eps) {
        converged = true;
        break;
      }
      k.cg_calc_p(rrn / rro);
      exchange(core::FieldId::kP, 1, 4);
      rro = rrn;
    }
    EXPECT_TRUE(converged);

    k.finalise();
    const core::FieldSummary local = k.field_summary();
    const double global_temp = cm.allreduce(local.temperature, Op::kSum);
    if (cm.rank() == 0) result = global_temp;
  });
  return result;
}

}  // namespace

TEST(Distributed, FourRankCgMatchesSingleRank) {
  const double single = distributed_cg_temperature(32, 32, 1);
  const double quad = distributed_cg_temperature(32, 32, 4);
  EXPECT_NEAR(quad, single, std::abs(single) * 1e-9);

  // And both match the plain (non-distributed) driver.
  Settings s = Settings::default_problem();
  s.nx = s.ny = 32;
  s.solver = SolverKind::kCg;
  core::Driver driver(s, std::make_unique<core::ReferenceKernels>(
                             core::Mesh(32, 32, s.halo_depth)));
  const double expected = driver.run_step().summary.temperature;
  EXPECT_NEAR(single, expected, std::abs(expected) * 1e-9);
}

TEST(Distributed, UnevenTilesStillAgree) {
  const double single = distributed_cg_temperature(30, 18, 1);
  const double six = distributed_cg_temperature(30, 18, 6);
  EXPECT_NEAR(six, single, std::abs(single) * 1e-9);
}

// ---------------------------------------------------------------------------
// STREAM + achieved-bandwidth glue (Fig 12 inputs)
// ---------------------------------------------------------------------------

TEST(Fig12Inputs, AchievedBandwidthBelowStream) {
  const Settings s = [] {
    Settings t = Settings::default_problem();
    t.nx = t.ny = 64;
    return t;
  }();
  for (const auto m : ports::figure_models(sim::DeviceId::kCpuSandyBridge)) {
    core::Driver driver(s, ports::make_port(m, sim::DeviceId::kCpuSandyBridge,
                                            core::Mesh(64, 64, 2), 2));
    driver.run();
    const double achieved = driver.kernels().clock().achieved_bandwidth_gbs();
    EXPECT_GT(achieved, 0.0) << sim::model_name(m);
    // At 64^2 the working set fits the LLC: achieved bandwidth may exceed
    // STREAM (cache boost) but never the boosted ceiling.
    const auto& dev = sim::device_spec(sim::DeviceId::kCpuSandyBridge);
    EXPECT_LT(achieved, dev.stream_bw_gbs * dev.cache_bw_boost)
        << sim::model_name(m);
  }
}
