// Unit tests for src/sim: device catalogue, codegen profiles (Table 1),
// performance model arithmetic, scheduler models, STREAM (Table 2).

#include <gtest/gtest.h>

#include <set>

#include "sim/codegen.hpp"
#include "sim/device.hpp"
#include "sim/model_id.hpp"
#include "sim/perf_model.hpp"
#include "sim/scheduler.hpp"
#include "sim/stream.hpp"
#include "sim/traits.hpp"

namespace s = tl::sim;

// ---------------------------------------------------------------------------
// Device catalogue (paper Table 2 values)
// ---------------------------------------------------------------------------

TEST(Device, Table2Bandwidths) {
  const auto& cpu = s::device_spec(s::DeviceId::kCpuSandyBridge);
  EXPECT_DOUBLE_EQ(cpu.peak_bw_gbs, 102.4);
  EXPECT_DOUBLE_EQ(cpu.stream_bw_gbs, 76.2);
  const auto& gpu = s::device_spec(s::DeviceId::kGpuK20X);
  EXPECT_DOUBLE_EQ(gpu.peak_bw_gbs, 250.0);
  EXPECT_DOUBLE_EQ(gpu.stream_bw_gbs, 180.1);
  const auto& knc = s::device_spec(s::DeviceId::kMicKnc);
  EXPECT_DOUBLE_EQ(knc.peak_bw_gbs, 320.0);
  EXPECT_DOUBLE_EQ(knc.stream_bw_gbs, 159.9);
}

TEST(Device, StreamBelowPeakEverywhere) {
  for (const auto d : s::kAllDevices) {
    const auto& spec = s::device_spec(d);
    EXPECT_LT(spec.stream_bw_gbs, spec.peak_bw_gbs) << spec.name;
    EXPECT_GT(spec.stream_bw_gbs, 0.0);
  }
}

TEST(Device, ParseRoundTrip) {
  for (const auto d : s::kAllDevices) {
    EXPECT_EQ(s::parse_device(s::device_short_name(d)), d);
  }
  EXPECT_FALSE(s::parse_device("nonsense").has_value());
}

TEST(Model, ParseRoundTrip) {
  for (const auto m : s::kAllModels) {
    EXPECT_EQ(s::parse_model(s::model_id(m)), m);
  }
  EXPECT_EQ(s::parse_model("acc"), s::Model::kOpenAcc);
  EXPECT_FALSE(s::parse_model("nonsense").has_value());
}

// ---------------------------------------------------------------------------
// Codegen profiles: the paper's Table 1 support matrix
// ---------------------------------------------------------------------------

TEST(Codegen, Table1SupportMatrix) {
  using s::DeviceId;
  using s::Model;
  // CPU column.
  EXPECT_EQ(s::support_cell(Model::kFortran, DeviceId::kCpuSandyBridge), "Yes");
  EXPECT_EQ(s::support_cell(Model::kOpenCl, DeviceId::kCpuSandyBridge), "Yes");
  EXPECT_EQ(s::support_cell(Model::kCuda, DeviceId::kCpuSandyBridge), "");
  // GPU column.
  EXPECT_EQ(s::support_cell(Model::kCuda, DeviceId::kGpuK20X), "Yes");
  EXPECT_EQ(s::support_cell(Model::kOmp4, DeviceId::kGpuK20X), "Experimental");
  EXPECT_EQ(s::support_cell(Model::kRaja, DeviceId::kGpuK20X), "");
  EXPECT_EQ(s::support_cell(Model::kFortran, DeviceId::kGpuK20X), "");
  // KNC column.
  EXPECT_EQ(s::support_cell(Model::kFortran, DeviceId::kMicKnc), "Native");
  EXPECT_EQ(s::support_cell(Model::kOmp4, DeviceId::kMicKnc), "Offload");
  EXPECT_EQ(s::support_cell(Model::kOpenCl, DeviceId::kMicKnc), "Offload");
  EXPECT_EQ(s::support_cell(Model::kKokkos, DeviceId::kMicKnc), "Native");
  EXPECT_EQ(s::support_cell(Model::kOpenAcc, DeviceId::kMicKnc), "");
}

TEST(Codegen, SupportedProfilesAreSane) {
  for (const auto m : s::kAllModels) {
    for (const auto d : s::kAllDevices) {
      const auto& p = s::codegen_profile(m, d);
      if (!p.supported) continue;
      EXPECT_GT(p.base_efficiency, 0.0);
      EXPECT_LE(p.base_efficiency, 1.0);
      EXPECT_GT(p.reduction_efficiency, 0.0);
      EXPECT_LE(p.reduction_efficiency, 1.0);
      EXPECT_GE(p.launch_overhead_ns, 0.0);
      EXPECT_GE(p.vector_quality, 0.0);
      EXPECT_LE(p.vector_quality, 1.0);
    }
  }
}

TEST(Codegen, ResidencyRules) {
  using s::DeviceId;
  using s::Model;
  // Host device: nothing offloads.
  EXPECT_FALSE(s::uses_device_residency(Model::kOpenCl, DeviceId::kCpuSandyBridge));
  // Discrete GPU: every supported model offloads.
  EXPECT_TRUE(s::uses_device_residency(Model::kCuda, DeviceId::kGpuK20X));
  EXPECT_TRUE(s::uses_device_residency(Model::kKokkos, DeviceId::kGpuK20X));
  // KNC: offload models cross PCIe, native compilation does not.
  EXPECT_TRUE(s::uses_device_residency(Model::kOmp4, DeviceId::kMicKnc));
  EXPECT_FALSE(s::uses_device_residency(Model::kFortran, DeviceId::kMicKnc));
  EXPECT_FALSE(s::uses_device_residency(Model::kRaja, DeviceId::kMicKnc));
}

// ---------------------------------------------------------------------------
// PerfModel
// ---------------------------------------------------------------------------

namespace {
s::LaunchInfo streaming_launch(std::size_t bytes) {
  s::LaunchInfo info;
  info.items = bytes / 8;
  info.bytes_read = bytes / 2;
  info.bytes_written = bytes / 2;
  info.working_set_bytes = 1ull << 30;  // far beyond any LLC: no cache boost
  info.traits.vector_sensitivity = 0.0;
  return info;
}
}  // namespace

TEST(PerfModel, UnsupportedPairThrows) {
  EXPECT_THROW(s::PerfModel(s::Model::kCuda, s::DeviceId::kCpuSandyBridge),
               std::invalid_argument);
}

TEST(PerfModel, StreamingTimeMatchesBaseEfficiency) {
  s::PerfModel pm(s::Model::kFortran, s::DeviceId::kCpuSandyBridge);
  const auto& p = pm.profile();
  const std::size_t bytes = 1ull << 30;
  const double ns = pm.launch_ns(streaming_launch(bytes));
  const double expected =
      p.launch_overhead_ns +
      static_cast<double>(bytes) / (76.2 * p.base_efficiency);
  EXPECT_NEAR(ns, expected, expected * 1e-12);
}

TEST(PerfModel, ReductionKernelsSlower) {
  s::PerfModel pm(s::Model::kOpenAcc, s::DeviceId::kGpuK20X);
  auto info = streaming_launch(1ull << 28);
  const double plain = pm.launch_ns(info);
  info.traits.reduction = true;
  const double reduced = pm.launch_ns(info);
  EXPECT_GT(reduced, plain);
}

TEST(PerfModel, IndirectionKillsVectorisationOnKnc) {
  s::PerfModel raja(s::Model::kRaja, s::DeviceId::kMicKnc);
  auto info = streaming_launch(1ull << 28);
  info.traits.vector_sensitivity = 0.4;  // Chebyshev-like kernel
  const double direct = raja.launch_ns(info);
  info.traits.indirection = true;
  const double indirect = raja.launch_ns(info);
  // Substantially slower: the paper's RAJA-native-on-KNC observation.
  EXPECT_GT(indirect, 1.5 * direct);
}

TEST(PerfModel, SimdDirectiveRecoversVectorisation) {
  auto info = streaming_launch(1ull << 28);
  info.traits.vector_sensitivity = 0.4;
  info.traits.indirection = true;
  s::PerfModel raja(s::Model::kRaja, s::DeviceId::kCpuSandyBridge);
  s::PerfModel simd(s::Model::kRajaSimd, s::DeviceId::kCpuSandyBridge);
  EXPECT_LT(simd.launch_ns(info), raja.launch_ns(info));
}

TEST(PerfModel, InteriorBranchPenalisedHardestOnKnc) {
  auto info = streaming_launch(1ull << 28);
  auto ratio = [&](s::Model m, s::DeviceId d) {
    s::PerfModel pm(m, d);
    auto branchy = info;
    branchy.traits.interior_branch = true;
    return pm.launch_ns(branchy) / pm.launch_ns(info);
  };
  const double knc = ratio(s::Model::kKokkos, s::DeviceId::kMicKnc);
  const double cpu = ratio(s::Model::kKokkos, s::DeviceId::kCpuSandyBridge);
  const double gpu = ratio(s::Model::kKokkos, s::DeviceId::kGpuK20X);
  EXPECT_GT(knc, 1.7);  // roughly the paper's halved solve time
  EXPECT_GT(knc, gpu);
  EXPECT_GT(knc, cpu);
  EXPECT_LT(cpu, 1.1);
}

TEST(PerfModel, CacheBoostFadesWithWorkingSet) {
  s::PerfModel pm(s::Model::kFortran, s::DeviceId::kCpuSandyBridge);
  const auto& llc = pm.device().llc_bytes;
  s::KernelTraits traits;
  traits.vector_sensitivity = 0.0;
  const double small = pm.effective_bandwidth_gbs(traits, llc / 8);
  const double med = pm.effective_bandwidth_gbs(traits, llc);
  const double large = pm.effective_bandwidth_gbs(traits, llc * 8);
  EXPECT_GT(small, med);
  EXPECT_GT(med, large);
  // Deep in cache approaches the boosted bandwidth; far outside approaches
  // the plain STREAM-derived bandwidth.
  EXPECT_GT(small / large, 1.8);
}

TEST(PerfModel, GpuIgnoresVectorQuality) {
  // The K20X is SIMT: vector_sensitivity must not matter.
  s::PerfModel pm(s::Model::kOpenCl, s::DeviceId::kGpuK20X);
  auto a = streaming_launch(1ull << 28);
  auto b = a;
  b.traits.vector_sensitivity = 1.0;
  EXPECT_DOUBLE_EQ(pm.launch_ns(a), pm.launch_ns(b));
}

TEST(PerfModel, TransfersFreeOnHostPaidAcrossPcie) {
  const s::TransferInfo t{.name = "x", .bytes = 1u << 20, .to_device = true};
  s::PerfModel host(s::Model::kOmp3Cpp, s::DeviceId::kCpuSandyBridge);
  EXPECT_DOUBLE_EQ(host.transfer_ns(t), 0.0);
  s::PerfModel gpu(s::Model::kCuda, s::DeviceId::kGpuK20X);
  const double expected = 10'000.0 + static_cast<double>(t.bytes) / 6.0;
  EXPECT_NEAR(gpu.transfer_ns(t), expected, 1e-6);
  s::PerfModel native(s::Model::kFortran, s::DeviceId::kMicKnc);
  EXPECT_DOUBLE_EQ(native.transfer_ns(t), 0.0);
}

TEST(PerfModel, WorkStealingVariesAcrossRunsDeterministically) {
  s::PerfModel pm(s::Model::kOpenCl, s::DeviceId::kCpuSandyBridge, 1);
  const auto info = streaming_launch(1ull << 26);
  std::set<long long> times;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    pm.begin_run(seed);
    times.insert(static_cast<long long>(pm.launch_ns(info)));
  }
  EXPECT_GT(times.size(), 8u);  // run-to-run spread
  pm.begin_run(3);
  const double a = pm.launch_ns(info);
  pm.begin_run(3);
  const double b = pm.launch_ns(info);
  EXPECT_DOUBLE_EQ(a, b);  // same seed, same luck
}

TEST(PerfModel, StaticSchedulersAreStable) {
  s::PerfModel pm(s::Model::kFortran, s::DeviceId::kCpuSandyBridge, 1);
  const auto info = streaming_launch(1ull << 26);
  pm.begin_run(1);
  const double a = pm.launch_ns(info);
  pm.begin_run(99);
  const double b = pm.launch_ns(info);
  EXPECT_DOUBLE_EQ(a, b);
}

// ---------------------------------------------------------------------------
// SchedulerModel
// ---------------------------------------------------------------------------

TEST(Scheduler, StaticAlwaysUnity) {
  auto sched = s::SchedulerModel::make_static();
  sched.begin_run(5);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(sched.launch_factor(), 1.0);
}

TEST(Scheduler, WorkStealingWithinBand) {
  auto sched = s::SchedulerModel::make_work_stealing(0.5, 0.9, 0.05);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    sched.begin_run(seed);
    for (int i = 0; i < 5; ++i) {
      const double f = sched.launch_factor();
      EXPECT_GE(f, 0.5 * 0.95 - 1e-12);
      EXPECT_LE(f, 0.9 * 1.05 + 1e-12);
    }
  }
}

// ---------------------------------------------------------------------------
// STREAM (Table 2 reproduction)
// ---------------------------------------------------------------------------

TEST(Stream, DeviceTunedReproducesTable2) {
  for (const auto d : s::kAllDevices) {
    const auto r = s::run_stream(d, 1 << 16, 3);
    EXPECT_TRUE(r.verified);
    const double expected = s::device_spec(d).stream_bw_gbs;
    EXPECT_NEAR(r.copy_gbs, expected, expected * 1e-9);
    EXPECT_NEAR(r.triad_gbs, expected, expected * 1e-9);
  }
}

TEST(Stream, ModelStreamNeverExceedsDeviceStream) {
  // Arrays must defeat the LLC (as STREAM requires), otherwise the CPU cache
  // boost legitimately exceeds DRAM STREAM bandwidth.
  const std::size_t len = 1 << 23;
  for (const auto m : s::kAllModels) {
    for (const auto d : s::kAllDevices) {
      if (!s::codegen_profile(m, d).supported) continue;
      const auto r = s::run_stream(m, d, len, 1);
      EXPECT_TRUE(r.verified);
      EXPECT_LE(r.best_gbs(), s::device_spec(d).stream_bw_gbs * 1.001)
          << s::model_name(m) << " on " << s::device_spec(d).name;
    }
  }
}

TEST(Stream, SmallArraysLegitimatelyExceedDramStreamOnCpu) {
  // The cache model at work: in-LLC STREAM beats DRAM STREAM on the CPU.
  const auto r = s::run_stream(s::Model::kFortran, s::DeviceId::kCpuSandyBridge,
                               1 << 15, 2);
  EXPECT_GT(r.best_gbs(),
            s::device_spec(s::DeviceId::kCpuSandyBridge).stream_bw_gbs);
}

TEST(Stream, DefaultLengthDefeatsCaches) {
  const std::size_t len = s::default_stream_length();
  for (const auto d : s::kAllDevices) {
    EXPECT_GT(len * sizeof(double), 2 * s::device_spec(d).llc_bytes);
  }
}
