// Parameterised tests over every supported (model, device) pair from the
// paper's Table 1: numerical equivalence with the reference kernels,
// solver-level agreement, and metering consistency with the analytic replay.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/driver.hpp"
#include "core/phantom_kernels.hpp"
#include "core/reference_kernels.hpp"
#include "core/state_init.hpp"
#include "ports/registry.hpp"
#include "util/stats.hpp"

using namespace tl;
using core::FieldId;
using core::Settings;
using core::SolverKind;

namespace {

struct Pair {
  sim::Model model;
  sim::DeviceId device;
};

std::vector<Pair> supported_pairs() {
  std::vector<Pair> out;
  for (const auto m : sim::kAllModels) {
    for (const auto d : sim::kAllDevices) {
      if (ports::is_supported(m, d)) out.push_back({m, d});
    }
  }
  return out;
}

std::string pair_name(const testing::TestParamInfo<Pair>& info) {
  std::string name = std::string(sim::model_id(info.param.model)) + "_" +
                     std::string(sim::device_short_name(info.param.device));
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

Settings small_problem(SolverKind solver, int n = 40) {
  Settings s = Settings::default_problem();
  s.nx = s.ny = n;
  s.solver = solver;
  return s;
}

core::RunReport run_port(const Pair& p, const Settings& s,
                         std::uint64_t seed = 7) {
  core::Driver driver(
      s, ports::make_port(p.model, p.device,
                          core::Mesh(s.nx, s.ny, s.halo_depth), seed));
  return driver.run();
}

core::RunReport run_reference(const Settings& s) {
  core::Driver driver(s, std::make_unique<core::ReferenceKernels>(
                             core::Mesh(s.nx, s.ny, s.halo_depth)));
  return driver.run();
}

}  // namespace

class PortPair : public testing::TestWithParam<Pair> {};

INSTANTIATE_TEST_SUITE_P(AllSupported, PortPair,
                         testing::ValuesIn(supported_pairs()), pair_name);

// Every port must run all three solvers to convergence with iteration counts
// and physics matching the serial reference bit-for-bit in iteration count
// and to reduction-reassociation tolerance in the summaries.
TEST_P(PortPair, CgMatchesReference) {
  const Settings s = small_problem(SolverKind::kCg);
  const auto ref = run_reference(s);
  const auto port = run_port(GetParam(), s);
  EXPECT_TRUE(port.steps[0].solve.converged);
  EXPECT_EQ(port.steps[0].solve.iterations, ref.steps[0].solve.iterations);
  EXPECT_LT(util::rel_diff(port.steps[0].summary.temperature,
                           ref.steps[0].summary.temperature),
            1e-10);
  EXPECT_LT(util::rel_diff(port.steps[0].summary.mass,
                           ref.steps[0].summary.mass),
            1e-12);
}

TEST_P(PortPair, ChebyMatchesReference) {
  const Settings s = small_problem(SolverKind::kCheby);
  const auto ref = run_reference(s);
  const auto port = run_port(GetParam(), s);
  EXPECT_TRUE(port.steps[0].solve.converged);
  EXPECT_EQ(port.steps[0].solve.iterations, ref.steps[0].solve.iterations);
  EXPECT_LT(util::rel_diff(port.steps[0].summary.temperature,
                           ref.steps[0].summary.temperature),
            1e-10);
}

TEST_P(PortPair, PpcgMatchesReference) {
  const Settings s = small_problem(SolverKind::kPpcg);
  const auto ref = run_reference(s);
  const auto port = run_port(GetParam(), s);
  EXPECT_TRUE(port.steps[0].solve.converged);
  EXPECT_EQ(port.steps[0].solve.iterations, ref.steps[0].solve.iterations);
  EXPECT_EQ(port.steps[0].solve.inner_iterations,
            ref.steps[0].solve.inner_iterations);
  EXPECT_LT(util::rel_diff(port.steps[0].summary.temperature,
                           ref.steps[0].summary.temperature),
            1e-10);
}

TEST_P(PortPair, JacobiMatchesReference) {
  Settings s = small_problem(SolverKind::kJacobi, 24);
  s.eps = 1e-12;  // Jacobi converges linearly; keep the test quick
  const auto ref = run_reference(s);
  const auto port = run_port(GetParam(), s);
  EXPECT_TRUE(port.steps[0].solve.converged);
  EXPECT_EQ(port.steps[0].solve.iterations, ref.steps[0].solve.iterations);
  EXPECT_LT(util::rel_diff(port.steps[0].summary.temperature,
                           ref.steps[0].summary.temperature),
            1e-10);
}

// Solution field equivalence, not just summaries: read u back and compare
// cell by cell against the reference.
TEST_P(PortPair, SolutionFieldMatchesReference) {
  const Settings s = small_problem(SolverKind::kCg, 24);
  const core::Mesh mesh(s.nx, s.ny, s.halo_depth);

  core::Driver ref_driver(s, std::make_unique<core::ReferenceKernels>(mesh));
  ref_driver.run_step();
  util::Buffer<double> ref_u(mesh.padded_cells());
  ref_driver.kernels().read_u(ref_u.view2d(mesh.padded_nx(), mesh.padded_ny()));

  core::Driver port_driver(
      s, ports::make_port(GetParam().model, GetParam().device, mesh, 7));
  port_driver.run_step();
  util::Buffer<double> port_u(mesh.padded_cells());
  port_driver.kernels().read_u(
      port_u.view2d(mesh.padded_nx(), mesh.padded_ny()));

  const int h = mesh.halo_depth;
  auto rs = ref_u.view2d(mesh.padded_nx(), mesh.padded_ny());
  auto ps = port_u.view2d(mesh.padded_nx(), mesh.padded_ny());
  for (int y = h; y < h + s.ny; ++y) {
    for (int x = h; x < h + s.nx; ++x) {
      ASSERT_LT(util::rel_diff(ps(x, y), rs(x, y)), 1e-9)
          << "cell (" << x << ", " << y << ")";
    }
  }
}

// The port's simulated clock must agree with the PhantomKernels analytic
// replay configured from the recorded solve control flow — this pins the
// bench pipeline (phantom) to the live ports.
TEST_P(PortPair, SimulatedClockMatchesAnalyticReplay) {
  for (const SolverKind solver :
       {SolverKind::kCg, SolverKind::kCheby, SolverKind::kPpcg}) {
    // 48^2 keeps CG from converging inside the eigen-estimation bootstrap,
    // exercising the genuine Chebyshev/PPCG control flow.
    const Settings s = small_problem(solver, 48);
    const core::Mesh mesh(s.nx, s.ny, s.halo_depth);
    const std::uint64_t seed = 11;

    core::Driver port_driver(
        s, ports::make_port(GetParam().model, GetParam().device, mesh, seed));
    const auto report = port_driver.run();
    const auto& stats = report.steps[0].solve;
    ASSERT_TRUE(stats.converged);

    core::PhantomScript script;
    script.eps = s.eps;
    if (solver == SolverKind::kCheby && stats.iterations > s.cg_prep_iters) {
      script.converge_after_ur = s.cg_prep_iters;
      script.converge_after_cheby = stats.iterations - s.cg_prep_iters - 1;
      script.converge_on_ur = false;
    } else {
      // CG, PPCG, or a bootstrap that converged outright.
      script.converge_after_ur = stats.iterations;
      script.converge_after_cheby = 0;
      script.converge_on_ur = stats.converged_on_ur;
    }
    core::Driver phantom_driver(
        s, std::make_unique<core::PhantomKernels>(
               GetParam().model, GetParam().device, mesh, script, seed));
    const auto phantom = phantom_driver.run();

    EXPECT_EQ(phantom.steps[0].solve.iterations, stats.iterations)
        << core::solver_name(solver);
    EXPECT_EQ(phantom.kernel_launches, report.kernel_launches)
        << core::solver_name(solver);
    EXPECT_LT(util::rel_diff(phantom.sim_total_seconds,
                             report.sim_total_seconds),
              1e-9)
        << core::solver_name(solver);
  }
}

// Determinism: two identical runs produce identical simulated times (the
// work-stealing OpenCL CPU port included, given the same run seed).
TEST_P(PortPair, SimulatedTimeDeterministicForSeed) {
  const Settings s = small_problem(SolverKind::kCg, 24);
  const auto a = run_port(GetParam(), s, 5);
  const auto b = run_port(GetParam(), s, 5);
  EXPECT_DOUBLE_EQ(a.sim_total_seconds, b.sim_total_seconds);
  EXPECT_EQ(a.kernel_launches, b.kernel_launches);
}

// Offload devices must pay for transfers; host-resident models must not.
TEST_P(PortPair, TransferAccountingMatchesResidency) {
  const Settings s = small_problem(SolverKind::kCg, 24);
  const core::Mesh mesh(s.nx, s.ny, s.halo_depth);
  core::Driver driver(
      s, ports::make_port(GetParam().model, GetParam().device, mesh, 3));
  driver.run();
  const auto& clock = driver.kernels().clock();
  if (sim::uses_device_residency(GetParam().model, GetParam().device)) {
    EXPECT_GT(clock.transfer_bytes(), 0u);
  }
  EXPECT_GT(clock.launches(), 0u);
  EXPECT_GT(clock.elapsed_ns(), 0.0);
}

// ---------------------------------------------------------------------------
// Model-specific behavioural checks
// ---------------------------------------------------------------------------

TEST(PortBehaviour, UnsupportedPairsRejected) {
  const core::Mesh mesh(16, 16, 2);
  EXPECT_THROW(
      ports::make_port(sim::Model::kCuda, sim::DeviceId::kCpuSandyBridge, mesh),
      std::invalid_argument);
  EXPECT_THROW(
      ports::make_port(sim::Model::kRaja, sim::DeviceId::kGpuK20X, mesh),
      std::invalid_argument);
}

TEST(PortBehaviour, FigureModelSetsMatchPaper) {
  const auto cpu = ports::figure_models(sim::DeviceId::kCpuSandyBridge);
  EXPECT_EQ(cpu.size(), 6u);  // Fig 8 series
  const auto gpu = ports::figure_models(sim::DeviceId::kGpuK20X);
  EXPECT_EQ(gpu.size(), 5u);  // Fig 9 series
  const auto knc = ports::figure_models(sim::DeviceId::kMicKnc);
  EXPECT_EQ(knc.size(), 6u);  // Fig 10 series
  for (const auto m : cpu) {
    EXPECT_TRUE(ports::is_supported(m, sim::DeviceId::kCpuSandyBridge));
  }
  for (const auto m : gpu) {
    EXPECT_TRUE(ports::is_supported(m, sim::DeviceId::kGpuK20X));
  }
  for (const auto m : knc) {
    EXPECT_TRUE(ports::is_supported(m, sim::DeviceId::kMicKnc));
  }
}

TEST(PortBehaviour, OpenClCpuShowsRunToRunVariance) {
  // The paper's 15-run experiment: simulated times vary across run seeds for
  // Intel's work-stealing OpenCL CPU runtime, and only for it.
  const Settings s = small_problem(SolverKind::kCg, 24);
  std::vector<double> ocl_times, f90_times;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    ocl_times.push_back(
        run_port({sim::Model::kOpenCl, sim::DeviceId::kCpuSandyBridge}, s, seed)
            .sim_total_seconds);
    f90_times.push_back(
        run_port({sim::Model::kFortran, sim::DeviceId::kCpuSandyBridge}, s, seed)
            .sim_total_seconds);
  }
  const auto ocl = util::summarize(ocl_times);
  const auto f90 = util::summarize(f90_times);
  EXPECT_GT(ocl.max / ocl.min, 1.1);
  EXPECT_DOUBLE_EQ(f90.max, f90.min);
}

TEST(PortBehaviour, KokkosHpBeatsFlatKokkosOnKncCgAtScale) {
  // The Sandia hierarchical-parallelism fix roughly halves CG solve time on
  // KNC (paper section 4.3). The effect is a bandwidth-efficiency one, so it
  // shows at paper-scale meshes (small meshes are launch-overhead bound,
  // where HP's extra dispatch level actually loses — also per the paper).
  core::PhantomScript script;
  script.converge_after_ur = 500;
  auto modelled = [&](sim::Model m) {
    Settings s = small_problem(SolverKind::kCg, 2048);
    core::Driver driver(s,
                        std::make_unique<core::PhantomKernels>(
                            m, sim::DeviceId::kMicKnc,
                            core::Mesh(2048, 2048, 2), script, 1),
                        core::DriverOptions{.materialize_host_state = false});
    return driver.run().sim_total_seconds;
  };
  const double flat = modelled(sim::Model::kKokkos);
  const double hp = modelled(sim::Model::kKokkosHp);
  EXPECT_LT(hp, 0.75 * flat);  // "roughly halving"
}

TEST(PortBehaviour, DeviceTunedPortsLeadTheirDevices) {
  // CUDA is the GPU lower bound; OpenMP F90 leads the CPU (paper's headline).
  // Use a mesh large enough that per-launch overheads don't dominate.
  const Settings s = small_problem(SolverKind::kCg, 96);
  const double cuda =
      run_port({sim::Model::kCuda, sim::DeviceId::kGpuK20X}, s).sim_total_seconds;
  for (const auto m : {sim::Model::kOpenAcc, sim::Model::kKokkos,
                       sim::Model::kKokkosHp}) {
    EXPECT_LT(cuda, run_port({m, sim::DeviceId::kGpuK20X}, s).sim_total_seconds)
        << sim::model_name(m);
  }
  const double f90 =
      run_port({sim::Model::kFortran, sim::DeviceId::kCpuSandyBridge}, s)
          .sim_total_seconds;
  for (const auto m : {sim::Model::kOmp3Cpp, sim::Model::kKokkos,
                       sim::Model::kRaja}) {
    EXPECT_LE(f90, run_port({m, sim::DeviceId::kCpuSandyBridge}, s)
                       .sim_total_seconds)
        << sim::model_name(m);
  }
}

TEST(PortBehaviour, HostThreadCountDoesNotChangeResults) {
  // The OpenMP-style port is numerically deterministic across pool sizes
  // (chunk-ordered reductions).
  const Settings s = small_problem(SolverKind::kCg, 32);
  const core::Mesh mesh(s.nx, s.ny, s.halo_depth);
  core::Driver serial(s, ports::make_port(sim::Model::kOmp3Cpp,
                                          sim::DeviceId::kCpuSandyBridge, mesh,
                                          1, /*host_threads=*/1));
  core::Driver threaded(s, ports::make_port(sim::Model::kOmp3Cpp,
                                            sim::DeviceId::kCpuSandyBridge,
                                            mesh, 1, /*host_threads=*/4));
  const auto a = serial.run();
  const auto b = threaded.run();
  EXPECT_EQ(a.steps[0].solve.iterations, b.steps[0].solve.iterations);
  EXPECT_NEAR(a.steps[0].summary.temperature, b.steps[0].summary.temperature,
              std::abs(a.steps[0].summary.temperature) * 1e-12);
}
