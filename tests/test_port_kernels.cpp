// Kernel-level equivalence: for every supported (model, device) pair, step
// through each solver's kernel chain one call at a time and compare every
// scalar the kernels produce (reductions, norms, summaries) against the
// serial reference after the *same* call. This localises a defect to the
// exact kernel, where the solver-level tests only say "something differs".

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/reference_kernels.hpp"
#include "core/state_init.hpp"
#include "ports/registry.hpp"
#include "util/stats.hpp"

using namespace tl;
using core::Coefficient;
using core::FieldId;
using core::NormTarget;

namespace {

constexpr int kN = 28;
constexpr double kTol = 1e-11;

struct Pair {
  sim::Model model;
  sim::DeviceId device;
};

std::vector<Pair> supported_pairs() {
  std::vector<Pair> out;
  for (const auto m : sim::kAllModels) {
    for (const auto d : sim::kAllDevices) {
      if (ports::is_supported(m, d)) out.push_back({m, d});
    }
  }
  return out;
}

std::string pair_name(const testing::TestParamInfo<Pair>& info) {
  std::string name = std::string(sim::model_id(info.param.model)) + "_" +
                     std::string(sim::device_short_name(info.param.device));
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

/// Drives a port and the reference through identical call sequences,
/// checking each scalar as it is produced.
class LockstepChecker {
 public:
  explicit LockstepChecker(const Pair& pair)
      : mesh_(kN, kN, 2),
        chunk_(mesh_),
        reference_(std::make_unique<core::ReferenceKernels>(mesh_)),
        port_(ports::make_port(pair.model, pair.device, mesh_, 5)) {
    core::Settings s = core::Settings::default_problem();
    s.nx = s.ny = kN;
    core::Mesh painted = mesh_;
    painted.x_min = s.x_min;
    painted.x_max = s.x_max;
    painted.y_min = s.y_min;
    painted.y_max = s.y_max;
    chunk_ = core::Chunk(painted);
    core::apply_initial_states(chunk_, s);

    for (core::SolverKernels* k : both()) {
      k->upload_state(chunk_);
      k->halo_update(core::kMaskDensity | core::kMaskEnergy0, 2);
      k->init_u();
      k->init_coefficients(Coefficient::kConductivity, 0.35, 0.35);
      k->halo_update(core::kMaskU, 1);
    }
  }

  std::vector<core::SolverKernels*> both() {
    return {reference_.get(), port_.get()};
  }

  /// Runs `fn` on both implementations and checks the returned scalars.
  template <typename Fn>
  double check(const char* what, Fn&& fn) {
    const double expected = fn(*reference_);
    const double actual = fn(*port_);
    EXPECT_LT(util::rel_diff(actual, expected), kTol)
        << what << ": port=" << actual << " reference=" << expected;
    return expected;
  }

  /// Runs a void operation on both.
  template <typename Fn>
  void apply(Fn&& fn) {
    fn(*reference_);
    fn(*port_);
  }

  /// Compares the full u field.
  void check_u(const char* what) {
    util::Buffer<double> ru(mesh_.padded_cells()), pu(mesh_.padded_cells());
    reference_->read_u(ru.view2d(mesh_.padded_nx(), mesh_.padded_ny()));
    port_->read_u(pu.view2d(mesh_.padded_nx(), mesh_.padded_ny()));
    double max_diff = 0.0;
    for (std::size_t i = 0; i < ru.size(); ++i) {
      max_diff = std::max(max_diff, util::rel_diff(pu[i], ru[i]));
    }
    EXPECT_LT(max_diff, kTol) << what;
  }

 private:
  core::Mesh mesh_;
  core::Chunk chunk_;
  std::unique_ptr<core::ReferenceKernels> reference_;
  std::unique_ptr<core::SolverKernels> port_;
};

}  // namespace

class PortKernels : public testing::TestWithParam<Pair> {};

INSTANTIATE_TEST_SUITE_P(AllSupported, PortKernels,
                         testing::ValuesIn(supported_pairs()), pair_name);

TEST_P(PortKernels, SetupChain) {
  LockstepChecker lk(GetParam());
  lk.check("rhs 2norm", [](core::SolverKernels& k) {
    return k.calc_2norm(NormTarget::kRhs);
  });
  lk.apply([](core::SolverKernels& k) { k.calc_residual(); });
  lk.check("residual 2norm", [](core::SolverKernels& k) {
    return k.calc_2norm(NormTarget::kResidual);
  });
  const auto ref_summary = lk.check("summary volume", [](core::SolverKernels& k) {
    return k.field_summary().volume;
  });
  EXPECT_GT(ref_summary, 0.0);
  lk.check("summary mass", [](core::SolverKernels& k) {
    return k.field_summary().mass;
  });
  lk.check("summary internal energy", [](core::SolverKernels& k) {
    return k.field_summary().internal_energy;
  });
  lk.check("summary temperature", [](core::SolverKernels& k) {
    return k.field_summary().temperature;
  });
  lk.check_u("u after setup");
}

TEST_P(PortKernels, CgChain) {
  LockstepChecker lk(GetParam());
  const double rro = lk.check("cg_init rro", [](core::SolverKernels& k) {
    return k.cg_init();
  });
  ASSERT_GT(rro, 0.0);
  lk.apply([](core::SolverKernels& k) { k.halo_update(core::kMaskP, 1); });

  double rr = rro;
  for (int it = 0; it < 5; ++it) {
    const double pw = lk.check("cg_calc_w pw", [](core::SolverKernels& k) {
      return k.cg_calc_w();
    });
    const double alpha = rr / pw;
    const double rrn = lk.check("cg_calc_ur rrn", [&](core::SolverKernels& k) {
      return k.cg_calc_ur(alpha);
    });
    const double beta = rrn / rr;
    lk.apply([&](core::SolverKernels& k) {
      k.cg_calc_p(beta);
      k.halo_update(core::kMaskP, 1);
    });
    rr = rrn;
  }
  lk.check_u("u after 5 CG iterations");
}

TEST_P(PortKernels, ChebyChain) {
  LockstepChecker lk(GetParam());
  lk.apply([](core::SolverKernels& k) {
    k.cg_init();
    k.halo_update(core::kMaskP, 1);
  });
  // A plausible fixed spectrum; kernel equivalence doesn't need a good one.
  const double theta = 4.0, delta = 3.0;
  lk.apply([&](core::SolverKernels& k) {
    k.cheby_init(theta);
    k.halo_update(core::kMaskU, 1);
  });
  double rho = delta / theta;
  for (int it = 0; it < 4; ++it) {
    const double rho_new = 1.0 / (2.0 * theta / delta - rho);
    const double alpha = rho_new * rho;
    const double beta = 2.0 * rho_new / delta;
    lk.apply([&](core::SolverKernels& k) {
      k.cheby_iterate(alpha, beta);
      k.halo_update(core::kMaskU, 1);
    });
    rho = rho_new;
    lk.check("cheby residual norm", [](core::SolverKernels& k) {
      k.calc_residual();
      return k.calc_2norm(NormTarget::kResidual);
    });
  }
  lk.check_u("u after 4 Chebyshev iterations");
}

TEST_P(PortKernels, PpcgChain) {
  LockstepChecker lk(GetParam());
  lk.apply([](core::SolverKernels& k) {
    k.cg_init();
    k.halo_update(core::kMaskP, 1);
    k.cg_calc_w();
  });
  lk.apply([](core::SolverKernels& k) { k.cg_calc_ur(0.7); });
  const double theta = 5.0;
  lk.apply([&](core::SolverKernels& k) {
    k.ppcg_init_sd(theta);
    k.halo_update(core::kMaskSd, 1);
  });
  for (int j = 0; j < 4; ++j) {
    const double alpha = 0.4 + 0.05 * j;
    const double beta = 0.3 / theta;
    lk.apply([&](core::SolverKernels& k) {
      k.ppcg_inner(alpha, beta);
      k.halo_update(core::kMaskSd, 1);
    });
    lk.check("ppcg residual norm", [](core::SolverKernels& k) {
      return k.calc_2norm(NormTarget::kResidual);
    });
  }
  lk.check_u("u after 4 PPCG inner steps");
}

TEST_P(PortKernels, JacobiChain) {
  LockstepChecker lk(GetParam());
  for (int it = 0; it < 4; ++it) {
    lk.apply([](core::SolverKernels& k) {
      k.jacobi_copy_u();
      k.jacobi_iterate();
      k.halo_update(core::kMaskU, 1);
    });
    lk.check("jacobi residual norm", [](core::SolverKernels& k) {
      k.calc_residual();
      return k.calc_2norm(NormTarget::kResidual);
    });
  }
  lk.check_u("u after 4 Jacobi iterations");
}

TEST_P(PortKernels, FinaliseWritesEnergyBack) {
  LockstepChecker lk(GetParam());
  lk.apply([](core::SolverKernels& k) { k.finalise(); });
  // energy = u / density; compare through the chunk download.
  const core::Mesh mesh(kN, kN, 2);
  core::Chunk ref_chunk(mesh), port_chunk(mesh);
  auto impls = lk.both();
  impls[0]->download_energy(ref_chunk);
  impls[1]->download_energy(port_chunk);
  const auto re = ref_chunk.field(FieldId::kEnergy);
  const auto pe = port_chunk.field(FieldId::kEnergy);
  for (int y = 2; y < 2 + kN; ++y) {
    for (int x = 2; x < 2 + kN; ++x) {
      ASSERT_LT(util::rel_diff(pe(x, y), re(x, y)), kTol)
          << "energy at (" << x << "," << y << ")";
    }
  }
}
