// Auto-tuning battery (src/tune): fitter ground-truth recovery, degenerate
// fallbacks, predictor composition against hand-computed sums, planner
// determinism, strict tl-models-1 parsing, and a service-planner mini-soak.
//
// The fitter tests are the battery's anchor: synthetic series generated
// from a known (c0, c1, a, b) term plus bounded deterministic noise must
// come back with the exact lattice exponents and coefficients within a few
// percent — the cross-validated selection is only trustworthy if it can
// re-derive a curve it was told the answer to.

#include <cmath>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "service/entry.hpp"
#include "service/job.hpp"
#include "service/pool.hpp"
#include "sim/network.hpp"
#include "tune/fitter.hpp"
#include "tune/ingest.hpp"
#include "tune/planner.hpp"
#include "tune/predictor.hpp"
#include "util/json.hpp"

namespace {

using namespace tl;

/// Deterministic bounded noise in [-half, +half] — a fixed multiplicative
/// hash, not an RNG, so every run fits the identical series.
double noise(std::size_t i, double half) {
  const std::uint32_t h = static_cast<std::uint32_t>(i + 1) * 2654435761u;
  return (static_cast<double>(h % 10'000) / 10'000.0 - 0.5) * 2.0 * half;
}

std::vector<tune::SamplePoint> synth_series(double c0, double c1, double a,
                                            int b, double noise_half) {
  std::vector<tune::SamplePoint> pts;
  for (double x = 64.0; x <= 65'536.0; x *= 2.0) {
    const double term = c1 * std::pow(x, a) * std::pow(std::log2(x), b);
    pts.push_back({x, (c0 + term) * (1.0 + noise(pts.size(), noise_half))});
  }
  return pts;
}

void expect_finite(const tune::FitOutcome& out) {
  EXPECT_TRUE(std::isfinite(out.fit.c0));
  EXPECT_TRUE(std::isfinite(out.fit.c1));
  EXPECT_TRUE(std::isfinite(out.fit.a));
  EXPECT_TRUE(std::isfinite(out.quality.r2));
  EXPECT_TRUE(std::isfinite(out.quality.rel_rss));
  EXPECT_TRUE(std::isfinite(out.quality.cv_rel_err));
  EXPECT_TRUE(std::isfinite(out.quality.cv_max_rel_err));
  for (const double x : {1.0, 64.0, 4096.0, 1e6}) {
    EXPECT_TRUE(std::isfinite(out.fit.eval(x))) << "eval at x=" << x;
  }
}

// -- Fitter: ground-truth recovery ------------------------------------------

struct GroundTruth {
  double c0, c1, a;
  int b;
};

TEST(TuneFitter, RecoversKnownExponentsUnderNoise) {
  const GroundTruth cases[] = {
      {1e-3, 2.5e-6, 1.0, 0},   // linear: bandwidth-bound sweep
      {5e-4, 4.0e-7, 1.0, 1},   // n log n: reduction tree
      {0.0, 3.0e-9, 2.0, 0},    // quadratic: dense coupling
      {2e-3, 6.0e-5, 0.5, 0},   // sqrt: CG iterations vs cells
      {1e-4, 1.5e-8, 1.5, 0},   // superlinear bend
  };
  for (const GroundTruth& gt : cases) {
    const auto pts = synth_series(gt.c0, gt.c1, gt.a, gt.b, 0.005);
    const tune::FitOutcome out = tune::fit_series(pts);
    expect_finite(out);
    EXPECT_DOUBLE_EQ(out.fit.a, gt.a)
        << "wrong exponent for truth a=" << gt.a << " b=" << gt.b;
    EXPECT_EQ(out.fit.b, gt.b)
        << "wrong log power for truth a=" << gt.a << " b=" << gt.b;
    EXPECT_NEAR(out.fit.c1, gt.c1, std::abs(gt.c1) * 0.05);
    EXPECT_FALSE(out.quality.fallback);
    EXPECT_EQ(out.quality.points, static_cast<int>(pts.size()));
    // In-sample quality must reflect the sub-percent noise floor.
    EXPECT_LT(out.quality.cv_rel_err, 0.05);
  }
}

TEST(TuneFitter, RecoversLogOnlySeries) {
  // y = c0 + c1 * log2(x): the a=0, b=1 lattice cell (the excluded
  // degenerate cell is only (a=0, b=0)).
  const auto pts = synth_series(0.01, 2e-3, 0.0, 1, 0.002);
  const tune::FitOutcome out = tune::fit_series(pts);
  expect_finite(out);
  EXPECT_DOUBLE_EQ(out.fit.a, 0.0);
  EXPECT_EQ(out.fit.b, 1);
}

TEST(TuneFitter, NoiselessFitIsExactAtSamplePoints) {
  const auto pts = synth_series(1e-3, 2.5e-6, 1.0, 0, 0.0);
  const tune::FitOutcome out = tune::fit_series(pts);
  for (const tune::SamplePoint& p : pts) {
    EXPECT_NEAR(out.fit.eval(p.x), p.y, p.y * 1e-9);
  }
  EXPECT_GT(out.quality.r2, 1.0 - 1e-12);
}

// -- Fitter: degenerate inputs must fall back, never NaN or throw -----------

TEST(TuneFitter, EmptySeriesFallsBack) {
  tune::FitOutcome out;
  ASSERT_NO_THROW(out = tune::fit_series({}));
  expect_finite(out);
  EXPECT_TRUE(out.quality.fallback);
  EXPECT_EQ(out.quality.points, 0);
}

TEST(TuneFitter, SinglePointBecomesConstant) {
  tune::FitOutcome out;
  ASSERT_NO_THROW(out = tune::fit_series({{128.0, 0.42}}));
  expect_finite(out);
  EXPECT_TRUE(out.quality.fallback);
  EXPECT_TRUE(out.fit.is_constant());
  EXPECT_NEAR(out.fit.eval(128.0), 0.42, 1e-12);
  EXPECT_NEAR(out.fit.eval(4096.0), 0.42, 1e-12);  // flat extrapolation
}

TEST(TuneFitter, ConstantSeriesStaysConstant) {
  std::vector<tune::SamplePoint> pts;
  for (double x = 16; x <= 1024; x *= 2) pts.push_back({x, 7.5});
  const tune::FitOutcome out = tune::fit_series(pts);
  expect_finite(out);
  EXPECT_TRUE(out.fit.is_constant());
  EXPECT_NEAR(out.fit.eval(123.0), 7.5, 1e-12);
  EXPECT_DOUBLE_EQ(out.quality.cv_rel_err, 0.0);
}

TEST(TuneFitter, IdenticalXFallsBack) {
  tune::FitOutcome out;
  ASSERT_NO_THROW(
      out = tune::fit_series({{256.0, 1.0}, {256.0, 2.0}, {256.0, 3.0}}));
  expect_finite(out);
  EXPECT_TRUE(out.quality.fallback);
}

TEST(TuneFitter, ZeroValuedPointsDoNotPoisonTheFit) {
  // A comm_s-shaped series: structurally zero at the first point. The
  // relative-error weights are floored, so this must fit finite — not NaN
  // from a 1/0^2 weight.
  const std::vector<tune::SamplePoint> pts = {
      {1.0, 0.0}, {2.0, 0.11}, {4.0, 0.34}, {8.0, 0.81}};
  tune::FitOutcome out;
  ASSERT_NO_THROW(out = tune::fit_series(pts));
  expect_finite(out);
  EXPECT_GE(out.fit.eval(8.0), 0.0);
}

TEST(TuneFitter, NonFinitePointsAreDropped) {
  const double nan = std::nan("");
  const std::vector<tune::SamplePoint> pts = {
      {64.0, 1.0},  {nan, 2.0},   {128.0, nan}, {-4.0, 3.0},
      {256.0, 4.0}, {512.0, 8.0}, {1024.0, 16.0}};
  tune::FitOutcome out;
  ASSERT_NO_THROW(out = tune::fit_series(pts));
  expect_finite(out);
  EXPECT_EQ(out.quality.points, 4);  // the finite, x > 0 subset
}

// -- Predictor: composition against hand-computed sums ----------------------

tune::FittedSeries make_series(const tune::SeriesKey& key, double c0,
                               double c1, double a, int b, double x_min,
                               double x_max) {
  tune::FittedSeries s;
  s.key = key;
  s.fit.c0 = c0;
  s.fit.c1 = c1;
  s.fit.a = a;
  s.fit.b = b;
  s.x_min = x_min;
  s.x_max = x_max;
  s.quality.points = 5;
  return s;
}

TEST(TunePredictor, KernelCompositionMatchesHandSum) {
  tune::ModelCatalog catalog;
  // 10 ns/cell streaming kernel + a 5 us constant-launch kernel.
  catalog.put(make_series({"kernel_ns/matvec", "omp3", "cpu", "all", "", "cells"},
                          0.0, 10.0, 1.0, 0, 1e2, 1e6));
  catalog.put(make_series({"kernel_ns/reduce", "omp3", "cpu", "all", "", "cells"},
                          5000.0, 0.0, 0.0, 0, 1e2, 1e6));

  tune::PredictQuery q;
  q.model = "omp3";
  q.device = "cpu";
  q.solver = "CG";
  q.nx = 100;  // cells = 1e4, inside both domains
  const tune::Prediction p = tune::predict(catalog, q);
  ASSERT_TRUE(p.ok) << p.error;
  const double expected = (10.0 * 1e4 + 5000.0) * 1e-9;
  EXPECT_NEAR(p.seconds, expected, expected * 1e-12);
  EXPECT_FALSE(p.extrapolated);
  // Both kernels must appear in the basis trail.
  EXPECT_NE(p.basis.find("kernel_ns/matvec"), std::string::npos);
  EXPECT_NE(p.basis.find("kernel_ns/reduce"), std::string::npos);
}

TEST(TunePredictor, TotalSeriesWithCommTermMatchesHandSum) {
  tune::ModelCatalog catalog;
  // total_s = 1e-7 * cells, iters = 2 * sqrt(cells).
  catalog.put(make_series({"total_s", "omp3", "cpu", "CG", "", "cells"}, 0.0,
                          1e-7, 1.0, 0, 1e2, 1e8));
  catalog.put(make_series({"iters", "omp3", "cpu", "CG", "", "cells"}, 0.0,
                          2.0, 0.5, 0, 1e2, 1e8));

  tune::PredictQuery q;
  q.model = "omp3";
  q.device = "cpu";
  q.solver = "CG";
  q.nx = 1000;
  q.ranks = 4;
  q.overlap_comm = false;
  const tune::Prediction p = tune::predict(catalog, q);
  ASSERT_TRUE(p.ok) << p.error;

  const double cells = 1000.0 * 1000.0;
  const double compute = 1e-7 * cells / 4.0;
  const sim::NetworkSpec& net = sim::node_interconnect();
  const double per_iter_ns =
      sim::halo_exchange_ns(net, 2 * 1000 * sizeof(double), 2) +
      2.0 * sim::allreduce_ns(net, 2 * sizeof(double), 4);
  const double comm = 2.0 * std::sqrt(cells) * per_iter_ns * 1e-9;
  EXPECT_NEAR(p.compute_s, compute, compute * 1e-12);
  EXPECT_NEAR(p.comm_s, comm, comm * 1e-12);
  EXPECT_NEAR(p.seconds, compute + comm, (compute + comm) * 1e-12);
}

TEST(TunePredictor, DirectRankSeriesWinsAndFusionRatioApplies) {
  tune::ModelCatalog catalog;
  // Direct strong-scaling curve at nx=128: total_s = 8 / ranks.
  catalog.put(make_series(
      {"total_s", "omp3", "cpu", "CG", "strong-overlap-128", "ranks"}, 0.0,
      8.0, -1.0, 0, 1.0, 8.0));
  // Per-cell series that must NOT be used for the rank query.
  catalog.put(make_series({"total_s", "omp3", "cpu", "CG", "", "cells"}, 0.0,
                          1e-3, 1.0, 0, 1e2, 1e6));
  catalog.put(make_series({"fusion_ratio", "omp3", "cpu", "CG", "", "cells"},
                          2.0, 0.0, 0.0, 0, 1e2, 1e6));

  tune::PredictQuery q;
  q.model = "omp3";
  q.device = "cpu";
  q.solver = "CG";
  q.nx = 128;
  q.ranks = 4;
  q.overlap_comm = true;
  const tune::Prediction direct = tune::predict(catalog, q);
  ASSERT_TRUE(direct.ok);
  EXPECT_NEAR(direct.seconds, 2.0, 2e-12);  // 8 / 4, tier 1

  // A mesh with no direct curve falls to the per-cell tier; unfused doubles
  // the estimate through the fitted fusion ratio.
  q.nx = 200;  // cells 4e4
  q.ranks = 1;
  const tune::Prediction fused = tune::predict(catalog, q);
  q.use_fused = false;
  const tune::Prediction unfused = tune::predict(catalog, q);
  ASSERT_TRUE(fused.ok);
  ASSERT_TRUE(unfused.ok);
  EXPECT_NEAR(fused.seconds, 1e-3 * 4e4, 1e-12 * 4e1);
  EXPECT_NEAR(unfused.seconds, 2.0 * fused.seconds, fused.seconds * 1e-9);
}

TEST(TunePredictor, ExtrapolationIsFlaggedAndMissingBasisErrors) {
  tune::ModelCatalog catalog;
  catalog.put(make_series({"total_s", "omp3", "cpu", "CG", "", "cells"}, 0.0,
                          1e-7, 1.0, 0, 1e4, 1e6));
  tune::PredictQuery q;
  q.model = "omp3";
  q.device = "cpu";
  q.solver = "CG";
  q.nx = 4096;  // cells 1.7e7 > x_max
  const tune::Prediction beyond = tune::predict(catalog, q);
  ASSERT_TRUE(beyond.ok);
  EXPECT_TRUE(beyond.extrapolated);

  q.model = "cuda";
  q.device = "gpu";
  const tune::Prediction missing = tune::predict(catalog, q);
  EXPECT_FALSE(missing.ok);
  EXPECT_FALSE(missing.error.empty());
}

// -- Planner: argmin and determinism ----------------------------------------

tune::ModelCatalog two_model_catalog(double omp3_per_cell,
                                     double kokkos_per_cell) {
  tune::ModelCatalog catalog;
  catalog.put(make_series({"total_s", "omp3", "cpu", "CG", "", "cells"}, 0.0,
                          omp3_per_cell, 1.0, 0, 1e2, 1e7));
  catalog.put(make_series({"total_s", "kokkos", "cpu", "CG", "", "cells"}, 0.0,
                          kokkos_per_cell, 1.0, 0, 1e2, 1e7));
  return catalog;
}

TEST(TunePlanner, PicksThePredictedFastestAndIsDeterministic) {
  const tune::ModelCatalog catalog = two_model_catalog(2e-7, 1e-7);
  tune::PlanQuery q;
  q.nx = 512;
  q.device = "cpu";
  const tune::PlanResult first = tune::choose_config(catalog, q);
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_EQ(first.best.model, "kokkos");  // half the per-cell cost
  ASSERT_GE(first.ranked.size(), 2u);
  EXPECT_LE(first.ranked[0].predicted.seconds,
            first.ranked[1].predicted.seconds);

  // Re-planning the identical query must reproduce the ranking exactly.
  const tune::PlanResult second = tune::choose_config(catalog, q);
  ASSERT_TRUE(second.ok);
  ASSERT_EQ(first.ranked.size(), second.ranked.size());
  for (std::size_t i = 0; i < first.ranked.size(); ++i) {
    EXPECT_EQ(first.ranked[i].model, second.ranked[i].model);
    EXPECT_EQ(first.ranked[i].device, second.ranked[i].device);
    EXPECT_EQ(first.ranked[i].ranks, second.ranked[i].ranks);
    EXPECT_DOUBLE_EQ(first.ranked[i].predicted.seconds,
                     second.ranked[i].predicted.seconds);
  }
}

TEST(TunePlanner, TiesKeepEnumerationOrder) {
  // Identical curves: the pick must be the earlier kAllModels entry (omp3
  // precedes kokkos), a pure function of (catalog, query).
  const tune::ModelCatalog catalog = two_model_catalog(1e-7, 1e-7);
  tune::PlanQuery q;
  q.nx = 512;
  q.device = "cpu";
  const tune::PlanResult plan = tune::choose_config(catalog, q);
  ASSERT_TRUE(plan.ok);
  EXPECT_EQ(plan.best.model, "omp3");
}

TEST(TunePlanner, PinsAreRespectedAndBadPinsError) {
  const tune::ModelCatalog catalog = two_model_catalog(2e-7, 1e-7);
  tune::PlanQuery q;
  q.nx = 512;
  q.model = "omp3";  // pinned to the slower model on purpose
  q.device = "cpu";
  const tune::PlanResult pinned = tune::choose_config(catalog, q);
  ASSERT_TRUE(pinned.ok);
  EXPECT_EQ(pinned.best.model, "omp3");

  q.model = "not_a_model";
  const tune::PlanResult bad = tune::choose_config(catalog, q);
  EXPECT_FALSE(bad.ok);
  EXPECT_NE(bad.error.find("not_a_model"), std::string::npos);
}

// -- Catalog: strict tl-models-1 parsing ------------------------------------

TEST(TuneCatalog, RoundTripsThroughJson) {
  const tune::ModelCatalog catalog = two_model_catalog(2e-7, 1e-7);
  const std::string json = catalog.to_json();
  const tune::ModelCatalog back =
      tune::ModelCatalog::from_json(util::parse_json(json));
  ASSERT_EQ(back.size(), catalog.size());
  for (const auto& [key, s] : catalog.series()) {
    const tune::FittedSeries* b = back.find(s.key);
    ASSERT_NE(b, nullptr) << key;
    EXPECT_DOUBLE_EQ(b->fit.c0, s.fit.c0);
    EXPECT_DOUBLE_EQ(b->fit.c1, s.fit.c1);
    EXPECT_DOUBLE_EQ(b->fit.a, s.fit.a);
    EXPECT_EQ(b->fit.b, s.fit.b);
  }
}

TEST(TuneCatalog, RejectsMalformedDocuments) {
  const char* bad_docs[] = {
      // Wrong schema tag.
      R"({"schema":"tl-models-0","series":[]})",
      // Missing schema entirely.
      R"({"series":[]})",
      // Series is not an array.
      R"({"schema":"tl-models-1","series":{}})",
      // Entry missing its fit block.
      R"({"schema":"tl-models-1","series":[{"key":{"metric":"total_s",
          "model":"omp3","device":"cpu","solver":"CG","variant":"",
          "x":"cells"}}]})",
      // Non-finite coefficient smuggled as a string.
      R"({"schema":"tl-models-1","series":[{"key":{"metric":"total_s",
          "model":"omp3","device":"cpu","solver":"CG","variant":"",
          "x":"cells"},"fit":{"c0":"inf","c1":0,"a":1,"b":0},
          "quality":{"r2":1,"rel_rss":0,"cv_rel_err":0,"cv_max_rel_err":0,
          "points":3,"fallback":false},"domain":{"x_min":1,"x_max":10}}]})",
  };
  for (const char* doc : bad_docs) {
    util::JsonValue parsed;
    ASSERT_NO_THROW(parsed = util::parse_json(doc)) << doc;
    EXPECT_THROW(tune::ModelCatalog::from_json(parsed), std::runtime_error)
        << doc;
  }
  EXPECT_THROW(tune::ModelCatalog::load("/nonexistent/models.json"),
               std::runtime_error);
}

// -- Service planner: config validation + mini-soak --------------------------

TEST(TuneService, PlannerConfigValidation) {
  service::ServiceConfig config;
  config.planner.enabled = true;  // no catalog
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config.planner.catalog = std::make_shared<tune::ModelCatalog>();
  config.planner.large_seconds_threshold = 0.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config.planner.large_seconds_threshold = 1e-3;
  EXPECT_NO_THROW(config.validate());
}

TEST(TuneService, PlannerMiniSoakStaysBitIdentical) {
  // Calibrate a two-pair catalog from standalone runs, then push a small
  // mixed deck through a planner-enabled service with model and device
  // freed. Every result must be bit-identical to a standalone twin of the
  // scenario that actually ran, and every planner decision must be metered.
  struct Pair {
    sim::Model model;
    sim::DeviceId device;
  };
  const Pair pairs[] = {
      {sim::Model::kOmp3Cpp, sim::DeviceId::kCpuSandyBridge},
      {sim::Model::kKokkos, sim::DeviceId::kCpuSandyBridge},
  };
  const auto scenario_for = [](const Pair& pair, int nx) {
    service::Scenario s;
    s.settings = core::Settings::default_problem();
    s.settings.nx = s.settings.ny = nx;
    s.settings.eps = 1e-6;
    s.settings.max_iters = 100;
    s.settings.end_step = 1;
    s.model = pair.model;
    s.device = pair.device;
    return s;
  };

  tune::SampleSet samples;
  for (const Pair& pair : pairs) {
    for (const int nx : {16, 24, 32}) {
      const service::ScenarioOutcome out =
          service::run_scenario(scenario_for(pair, nx));
      tune::SeriesKey key{"total_s", std::string(sim::model_id(pair.model)),
                          std::string(sim::device_short_name(pair.device)),
                          "CG", "", "cells"};
      samples.add(key, static_cast<double>(nx) * nx,
                  out.run.sim_total_seconds);
    }
  }

  service::ServiceConfig config;
  config.small_workers = 2;
  config.large_workers = 1;
  config.planner.enabled = true;
  config.planner.catalog =
      std::make_shared<const tune::ModelCatalog>(tune::fit_samples(samples));
  config.planner.large_seconds_threshold = 1e-3;
  config.validate();

  constexpr int kJobs = 24;
  service::SolveService svc(config);
  for (int i = 0; i < kJobs; ++i) {
    service::Job job;
    job.tenant = i % 2 == 0 ? "even" : "odd";
    job.scenario = scenario_for(pairs[i % 2], 16 + 8 * (i % 3));
    job.plan_model_free = true;
    job.plan_device_free = true;
    svc.submit(std::move(job));
  }
  const service::ServiceReport report = svc.finish();

  ASSERT_EQ(report.results.size(), static_cast<std::size_t>(kJobs));
  EXPECT_TRUE(report.all_ok());
  std::map<std::string, service::ScenarioOutcome> twins;
  for (const service::JobResult& r : report.results) {
    const std::string key = r.scenario.key();
    auto it = twins.find(key);
    if (it == twins.end()) {
      it = twins.emplace(key, service::run_scenario(r.scenario)).first;
    }
    EXPECT_EQ(r.u_checksum.sum, it->second.u_checksum.sum) << key;
    EXPECT_EQ(r.u_checksum.l2, it->second.u_checksum.l2) << key;
    EXPECT_EQ(r.energy_checksum.sum, it->second.energy_checksum.sum) << key;
  }
  EXPECT_EQ(report.metrics.counter_or("tl_planner_jobs"),
            static_cast<double>(kJobs));
  EXPECT_EQ(report.metrics.counter_or("tl_planner_planned"),
            static_cast<double>(kJobs));
  EXPECT_EQ(report.metrics.counter_or("tl_planner_routed_large") +
                report.metrics.counter_or("tl_planner_routed_small") +
                report.metrics.counter_or("tl_planner_route_fallback"),
            static_cast<double>(kJobs));
  // With every pair calibrated, the planner always had a basis to fill the
  // freed fields with — the chosen model/device must be a calibrated pair.
  for (const service::JobResult& r : report.results) {
    EXPECT_EQ(std::string(sim::device_short_name(r.scenario.device)), "cpu");
  }
}

TEST(TuneService, PlannerOffIsByteForByteLegacyRouting) {
  // The planner disabled must leave the static cell-count rule (and the
  // metrics surface) untouched: no tl_planner_* counters appear.
  service::ServiceConfig config;
  config.small_workers = 1;
  config.large_workers = 1;
  service::SolveService svc(config);
  service::Job job;
  job.tenant = "legacy";
  job.scenario.settings = core::Settings::default_problem();
  job.scenario.settings.nx = job.scenario.settings.ny = 16;
  job.scenario.settings.eps = 1e-6;
  job.scenario.settings.max_iters = 50;
  job.scenario.settings.end_step = 1;
  svc.submit(std::move(job));
  const service::ServiceReport report = svc.finish();
  ASSERT_EQ(report.results.size(), 1u);
  EXPECT_TRUE(report.all_ok());
  for (const auto& [key, value] : report.metrics.counters()) {
    (void)value;
    EXPECT_EQ(key.rfind("tl_planner_", 0), std::string::npos)
        << "unexpected planner counter: " << key;
  }
}

}  // namespace
