// Tests for the kernel-level tracing & profiling layer: sink recording,
// aggregation math, Chrome-trace JSON well-formedness, and the conservation
// property the whole layer rests on — the traced event stream accounts for
// exactly the time the metering clock charged, for live ports and the
// analytic PhantomKernels replay alike.

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <set>
#include <sstream>
#include <string>

#include "core/driver.hpp"
#include "core/kernel_catalog.hpp"
#include "core/phantom_kernels.hpp"
#include "ports/registry.hpp"
#include "sim/device.hpp"
#include "sim/trace.hpp"
#include "util/metrics.hpp"
#include "util/stats.hpp"

using namespace tl;

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON syntax checker (objects, arrays, strings, numbers, literals).
// Enough to assert the Chrome exporter emits structurally valid JSON without
// pulling in a JSON library.
// ---------------------------------------------------------------------------

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

double sum_durations(const std::vector<sim::TraceEvent>& events) {
  double total = 0.0;
  for (const auto& ev : events) total += ev.duration_ns;
  return total;
}

/// One CG solve on PhantomKernels with a recording sink attached.
core::RunReport phantom_cg_solve(sim::Model model, sim::DeviceId device,
                                 sim::TraceSink* sink, int nx = 64,
                                 int steps = 1) {
  core::Settings s = core::Settings::default_problem();
  s.nx = s.ny = nx;
  s.end_step = steps;
  s.solver = core::SolverKind::kCg;
  core::PhantomScript script;
  script.converge_after_ur = 25;
  auto kernels = std::make_unique<core::PhantomKernels>(
      model, device, core::Mesh(nx, nx, s.halo_depth), script, 1);
  if (sink) kernels->attach_trace_sink(sink);
  core::Driver driver(s, std::move(kernels),
                      core::DriverOptions{.materialize_host_state = false});
  return driver.run();
}

}  // namespace

// ---------------------------------------------------------------------------
// Sink recording
// ---------------------------------------------------------------------------

TEST(TraceSink, RecordsOneEventPerMeteredLaunchAndTransfer) {
  sim::RecordingSink sink;
  const core::RunReport report = phantom_cg_solve(
      sim::Model::kOmp3Cpp, sim::DeviceId::kCpuSandyBridge, &sink);

  std::uint64_t launches = 0, transfers = 0;
  for (const auto& ev : sink.events()) {
    (ev.kind == sim::TraceEvent::Kind::kLaunch ? launches : transfers)++;
  }
  EXPECT_EQ(launches, report.kernel_launches);
  EXPECT_GT(transfers, 0u);
  EXPECT_EQ(sink.events().size(), launches + transfers);
}

TEST(TraceSink, EventsCarryKernelIdPhaseAndIdentity) {
  sim::RecordingSink sink;
  phantom_cg_solve(sim::Model::kKokkos, sim::DeviceId::kGpuK20X, &sink);

  bool saw_cg_calc_w = false, saw_transfer = false;
  for (const auto& ev : sink.events()) {
    EXPECT_EQ(ev.model, sim::Model::kKokkos);
    EXPECT_EQ(ev.device, sim::DeviceId::kGpuK20X);
    if (ev.name == "cg_calc_w_fused") {  // the default CG path is fused
      saw_cg_calc_w = true;
      EXPECT_EQ(ev.kernel_id, static_cast<int>(core::KernelId::kCgCalcWFused));
      EXPECT_EQ(ev.phase, "cg");
      EXPECT_EQ(ev.kind, sim::TraceEvent::Kind::kLaunch);
    }
    if (ev.kind == sim::TraceEvent::Kind::kTransfer) {
      saw_transfer = true;
      EXPECT_EQ(ev.kernel_id, -1);
      EXPECT_EQ(ev.phase, "transfer");
    }
  }
  EXPECT_TRUE(saw_cg_calc_w);
  EXPECT_TRUE(saw_transfer);  // GPU device: upload/download cross the link
}

TEST(TraceSink, EventsTileTheTimelineInOrder) {
  sim::RecordingSink sink;
  phantom_cg_solve(sim::Model::kOmp3Cpp, sim::DeviceId::kCpuSandyBridge, &sink);
  double cursor = 0.0;
  for (const auto& ev : sink.events()) {
    EXPECT_DOUBLE_EQ(ev.start_ns, cursor);
    EXPECT_GE(ev.duration_ns, 0.0);
    cursor = ev.start_ns + ev.duration_ns;
  }
}

TEST(TraceSink, CapacityBoundsMemoryAndCountsDropped) {
  sim::RecordingSink sink(10);
  phantom_cg_solve(sim::Model::kOmp3Cpp, sim::DeviceId::kCpuSandyBridge, &sink);
  EXPECT_EQ(sink.events().size(), 10u);
  EXPECT_GT(sink.dropped(), 0u);
  sink.clear();
  EXPECT_TRUE(sink.events().empty());
  EXPECT_EQ(sink.dropped(), 0u);
}

TEST(TraceSink, AttachingASinkDoesNotPerturbMetering) {
  const core::RunReport plain = phantom_cg_solve(
      sim::Model::kOpenCl, sim::DeviceId::kCpuSandyBridge, nullptr);
  sim::RecordingSink sink;
  const core::RunReport traced = phantom_cg_solve(
      sim::Model::kOpenCl, sim::DeviceId::kCpuSandyBridge, &sink);
  // Same seed, work-stealing scheduler: bit-identical with and without the
  // observer (the zero-overhead guarantee behind byte-identical bench CSVs).
  EXPECT_EQ(plain.sim_total_seconds, traced.sim_total_seconds);
  EXPECT_EQ(plain.kernel_launches, traced.kernel_launches);
}

TEST(TraceSink, TeeFansOutToAllSinks) {
  sim::RecordingSink a, b;
  sim::TeeSink tee({&a, &b, nullptr});
  phantom_cg_solve(sim::Model::kOmp3Cpp, sim::DeviceId::kCpuSandyBridge, &tee);
  ASSERT_FALSE(a.events().empty());
  EXPECT_EQ(a.events().size(), b.events().size());
}

// ---------------------------------------------------------------------------
// Aggregation math
// ---------------------------------------------------------------------------

TEST(Aggregator, FoldsCountsSumsAndExtrema) {
  util::Aggregator agg;
  agg.add({.name = "a", .duration_ns = 10.0, .bytes = 100, .launch_factor = 0.8});
  agg.add({.name = "a", .duration_ns = 30.0, .bytes = 300, .launch_factor = 1.2});
  agg.add({.name = "b", .duration_ns = 60.0, .bytes = 0, .launch_factor = 1.0});

  EXPECT_EQ(agg.total_events(), 3u);
  EXPECT_DOUBLE_EQ(agg.total_ns(), 100.0);
  EXPECT_EQ(agg.total_bytes(), 400u);

  const auto profiles = agg.profiles();
  ASSERT_EQ(profiles.size(), 2u);
  // Sorted by total time descending: b (60) before a (40).
  EXPECT_EQ(profiles[0].name, "b");
  EXPECT_EQ(profiles[1].name, "a");

  const auto& a = profiles[1];
  EXPECT_EQ(a.count, 2u);
  EXPECT_DOUBLE_EQ(a.total_ns, 40.0);
  EXPECT_DOUBLE_EQ(a.min_ns, 10.0);
  EXPECT_DOUBLE_EQ(a.max_ns, 30.0);
  EXPECT_DOUBLE_EQ(a.mean_ns(), 20.0);
  EXPECT_EQ(a.bytes, 400u);
  EXPECT_DOUBLE_EQ(a.bandwidth_gbs(), 10.0);  // 400 B / 40 ns
  EXPECT_DOUBLE_EQ(a.percent, 40.0);
  EXPECT_DOUBLE_EQ(a.factor_min, 0.8);
  EXPECT_DOUBLE_EQ(a.factor_max, 1.2);
  EXPECT_DOUBLE_EQ(a.factor_mean(), 1.0);
}

TEST(Aggregator, PercentagesSumToHundred) {
  util::Aggregator agg;
  agg.add({.name = "x", .duration_ns = 1.5});
  agg.add({.name = "y", .duration_ns = 2.25});
  agg.add({.name = "z", .duration_ns = 0.75});
  double pct = 0.0;
  for (const auto& p : agg.profiles()) pct += p.percent;
  EXPECT_NEAR(pct, 100.0, 1e-12);
}

TEST(Aggregator, EmptyAndClear) {
  util::Aggregator agg;
  EXPECT_TRUE(agg.profiles().empty());
  EXPECT_DOUBLE_EQ(agg.total_ns(), 0.0);
  agg.add({.name = "x", .duration_ns = 1.0});
  agg.clear();
  EXPECT_TRUE(agg.profiles().empty());
  EXPECT_EQ(agg.total_events(), 0u);
}

TEST(Aggregator, SinkMatchesManualFold) {
  util::Aggregator agg;
  sim::AggregatingSink agg_sink(agg);
  sim::RecordingSink rec;
  sim::TeeSink tee({&agg_sink, &rec});
  phantom_cg_solve(sim::Model::kRaja, sim::DeviceId::kCpuSandyBridge, &tee);

  EXPECT_EQ(agg.total_events(), rec.events().size());
  EXPECT_NEAR(util::rel_diff(agg.total_ns(), sum_durations(rec.events())),
              0.0, 1e-12);
}

TEST(Aggregator, FormatTableListsEveryKernel) {
  util::Aggregator agg;
  agg.add({.name = "cheby_iterate", .duration_ns = 5.0, .bytes = 10});
  agg.add({.name = "halo_update", .duration_ns = 1.0, .bytes = 2});
  const std::string table = util::format_profile_table(agg.profiles());
  EXPECT_NE(table.find("cheby_iterate"), std::string::npos);
  EXPECT_NE(table.find("halo_update"), std::string::npos);
  EXPECT_NE(table.find("% of run"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Chrome trace export
// ---------------------------------------------------------------------------

TEST(ChromeTrace, EmitsWellFormedJson) {
  sim::RecordingSink sink;
  phantom_cg_solve(sim::Model::kCuda, sim::DeviceId::kGpuK20X, &sink);
  ASSERT_FALSE(sink.events().empty());

  std::ostringstream os;
  sim::write_chrome_trace(os, sink.events(), "cuda/cg");
  const std::string json = os.str();

  EXPECT_TRUE(JsonChecker(json).valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cg_calc_w_fused\""), std::string::npos);
  EXPECT_NE(json.find("\"cuda/cg\""), std::string::npos);
  EXPECT_NE(json.find("\"launch_factor\""), std::string::npos);
}

TEST(ChromeTrace, GroupsBecomeSeparateProcessRows) {
  sim::RecordingSink a, b;
  phantom_cg_solve(sim::Model::kOmp3Cpp, sim::DeviceId::kCpuSandyBridge, &a);
  phantom_cg_solve(sim::Model::kOmp4, sim::DeviceId::kGpuK20X, &b);
  const sim::TraceGroup groups[] = {{"omp3/cg", a.events()},
                                    {"omp4/cg", b.events()}};
  std::ostringstream os;
  sim::write_chrome_trace(os, groups);
  const std::string json = os.str();
  EXPECT_TRUE(JsonChecker(json).valid());
  EXPECT_NE(json.find("\"omp3/cg\""), std::string::npos);
  EXPECT_NE(json.find("\"omp4/cg\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
}

TEST(ChromeTrace, TruncatedGroupCarriesDroppedMetadata) {
  sim::RecordingSink sink(5);
  phantom_cg_solve(sim::Model::kOmp3Cpp, sim::DeviceId::kCpuSandyBridge, &sink);
  ASSERT_GT(sink.dropped(), 0u);
  const sim::TraceGroup groups[] = {
      {"omp3/cg", sink.events(), sink.dropped()}};
  std::ostringstream os;
  sim::write_chrome_trace(os, groups);
  const std::string json = os.str();
  EXPECT_TRUE(JsonChecker(json).valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"trace_truncated\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\""), std::string::npos);

  // A group that dropped nothing stays metadata-free.
  sim::RecordingSink all;
  phantom_cg_solve(sim::Model::kOmp3Cpp, sim::DeviceId::kCpuSandyBridge, &all);
  const sim::TraceGroup full[] = {{"omp3/cg", all.events(), all.dropped()}};
  std::ostringstream os2;
  sim::write_chrome_trace(os2, full);
  EXPECT_EQ(os2.str().find("\"trace_truncated\""), std::string::npos);
}

TEST(ChromeTrace, EscapesJsonSpecialCharacters) {
  sim::TraceEvent ev;
  ev.name = "weird\"name\\with\ncontrol";
  std::ostringstream os;
  sim::write_chrome_trace(os, std::span<const sim::TraceEvent>(&ev, 1),
                          "label\"quote");
  EXPECT_TRUE(JsonChecker(os.str()).valid()) << os.str();
}

// ---------------------------------------------------------------------------
// Conservation: the event stream accounts for exactly the metered time
// ---------------------------------------------------------------------------

TEST(TraceConservation, PhantomEventsSumToMeteredTimeForAllPairs) {
  for (const sim::Model model : sim::kAllModels) {
    for (const sim::DeviceId device : sim::kAllDevices) {
      if (!ports::is_supported(model, device)) continue;
      sim::RecordingSink sink;
      const core::RunReport report = phantom_cg_solve(model, device, &sink);
      ASSERT_FALSE(sink.events().empty());

      // Every metered launch/transfer produced exactly one event...
      const auto& clock_events = sink.events();
      std::uint64_t launches = 0;
      for (const auto& ev : clock_events) {
        launches += ev.kind == sim::TraceEvent::Kind::kLaunch;
      }
      EXPECT_EQ(launches, report.kernel_launches)
          << sim::model_name(model) << " on " << sim::device_spec(device).name;

      // ...and the per-kernel profile durations sum to the solve's total
      // metered time within 1e-9 relative error.
      util::Aggregator agg;
      for (const auto& ev : clock_events) {
        agg.add({.name = ev.name, .duration_ns = ev.duration_ns,
                 .bytes = ev.bytes, .launch_factor = ev.launch_factor});
      }
      double profile_total = 0.0;
      for (const auto& p : agg.profiles()) profile_total += p.total_ns;
      EXPECT_LE(util::rel_diff(profile_total, report.sim_total_seconds * 1e9),
                1e-9)
          << sim::model_name(model) << " on " << sim::device_spec(device).name;

      // Every catalogued kernel a CG solve launches shows up in the profile.
      std::set<std::string> names;
      for (const auto& p : agg.profiles()) names.insert(p.name);
      for (const char* expected :
           {"init_u", "init_coef", "halo_update", "cg_init", "cg_calc_w_fused",
            "cg_fused_ur_p", "finalise", "field_summary", "upload_state",
            "download_energy"}) {
        EXPECT_TRUE(names.count(expected))
            << expected << " missing for " << sim::model_name(model) << " on "
            << sim::device_spec(device).name;
      }
    }
  }
}

TEST(TraceConservation, LivePortEventsSumToSimStepNs) {
  // A real (numerics-executing) host port must meter the identical stream:
  // sum of traced durations == the driver's sim_step_ns, within 1e-9.
  const int nx = 48;
  core::Settings s = core::Settings::default_problem();
  s.nx = s.ny = nx;
  s.end_step = 1;
  s.solver = core::SolverKind::kCg;

  auto port = ports::make_port(sim::Model::kOmp3Cpp,
                               sim::DeviceId::kCpuSandyBridge,
                               core::Mesh(nx, nx, s.halo_depth));
  sim::RecordingSink sink;
  port->attach_trace_sink(&sink);
  core::Driver driver(s, std::move(port));
  const core::StepReport step = driver.run_step();

  ASSERT_FALSE(sink.events().empty());
  EXPECT_LE(util::rel_diff(sum_durations(sink.events()), step.sim_step_ns),
            1e-9);
  EXPECT_GT(step.solve.iterations, 0);
}

TEST(TraceConservation, LivePortAndPhantomEmitSameKernelSet) {
  // The port<->replay lockstep, now visible at event granularity: a live CG
  // solve and its analytic replay must launch the same kernel names.
  const int nx = 48;
  core::Settings s = core::Settings::default_problem();
  s.nx = s.ny = nx;
  s.end_step = 1;
  s.solver = core::SolverKind::kCg;

  auto port = ports::make_port(sim::Model::kKokkos,
                               sim::DeviceId::kCpuSandyBridge,
                               core::Mesh(nx, nx, s.halo_depth));
  sim::RecordingSink port_sink;
  port->attach_trace_sink(&port_sink);
  core::Driver driver(s, std::move(port));
  driver.run_step();

  sim::RecordingSink phantom_sink;
  phantom_cg_solve(sim::Model::kKokkos, sim::DeviceId::kCpuSandyBridge,
                   &phantom_sink, nx);

  // Compare kernel launches only: the replay additionally models the explicit
  // upload/download transfers that a live host port (shared memory) skips.
  std::set<std::string_view> port_names, phantom_names;
  for (const auto& ev : port_sink.events()) {
    if (ev.kind == sim::TraceEvent::Kind::kLaunch) port_names.insert(ev.name);
  }
  for (const auto& ev : phantom_sink.events()) {
    if (ev.kind == sim::TraceEvent::Kind::kLaunch) phantom_names.insert(ev.name);
  }
  EXPECT_EQ(port_names, phantom_names);
}
