// Telemetry battery: registry semantics (bucket boundaries, pooled
// bit-identity), trace-event classification, report schema/determinism,
// OpenMetrics rendering, and the tl_report regression-check policy.

#include <atomic>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dist/driver.hpp"
#include "telemetry/check.hpp"
#include "telemetry/collectors.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/report.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"

namespace {

using namespace tl;
using telemetry::Histogram;
using telemetry::MetricsRegistry;
using util::JsonValue;

// -- Histogram ---------------------------------------------------------------

TEST(Histogram, BucketBoundariesAreInclusiveUpper) {
  Histogram h;
  h.upper_bounds = {1.0, 2.0, 4.0};
  h.counts.assign(4, 0);
  h.observe(0.5);   // <= 1.0
  h.observe(1.0);   // == bound -> its own bucket, not the next
  h.observe(1.5);   // <= 2.0
  h.observe(2.0);   // == bound
  h.observe(4.0);   // == last finite bound
  h.observe(4.01);  // overflow (+Inf bucket)
  EXPECT_EQ(h.counts[0], 2u);
  EXPECT_EQ(h.counts[1], 2u);
  EXPECT_EQ(h.counts[2], 1u);
  EXPECT_EQ(h.counts[3], 1u);
  EXPECT_EQ(h.count, 6u);
  EXPECT_DOUBLE_EQ(h.sum, 0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 4.01);
  // Cumulative counts are what the OpenMetrics le-series renders.
  EXPECT_EQ(h.cumulative(0), 2u);
  EXPECT_EQ(h.cumulative(1), 4u);
  EXPECT_EQ(h.cumulative(2), 5u);
  EXPECT_EQ(h.cumulative(3), 6u);
}

TEST(Histogram, RebindingDifferentBoundsThrows) {
  static constexpr double kBounds[] = {1.0, 2.0};
  static constexpr double kOther[] = {1.0, 3.0};
  MetricsRegistry reg;
  reg.observe("h", 0.5, kBounds);
  EXPECT_NO_THROW(reg.observe("h", 1.5, kBounds));
  EXPECT_THROW(reg.observe("h", 1.5, kOther), std::invalid_argument);
}

// -- Registry combine: pooled bit-identity -----------------------------------

/// A deterministic observation stream whose floating-point sums genuinely
/// depend on combine order (values of very different magnitudes).
void feed(MetricsRegistry& reg, int begin, int end) {
  for (int i = begin; i < end; ++i) {
    reg.add_counter("ns", 1e-3 + 1e6 * (i % 7) + 0.1 * i);
    reg.add_counter("events", 1.0);
    reg.observe("factor", 1.0 + 0.001 * (i % 997),
                telemetry::kLaunchFactorBounds);
    reg.set_gauge("last", 0.1 * i);
  }
}

/// The HostPool discipline transplanted to registries: [0, n) is split into
/// a FIXED number of chunks (a function of the data, never the worker
/// count), each chunk fills its own single-writer registry, and `workers`
/// threads claim chunks through an atomic cursor — so claim order varies
/// with scheduling but each chunk's content does not. combine_all then
/// tree-folds the chunk registries in chunk order.
MetricsRegistry pooled(int n, int workers) {
  constexpr int kChunks = 16;
  std::vector<MetricsRegistry> pool(kChunks);
  const int chunk = (n + kChunks - 1) / kChunks;
  std::atomic<int> cursor{0};
  auto worker = [&] {
    for (int c = cursor.fetch_add(1); c < kChunks; c = cursor.fetch_add(1)) {
      feed(pool[static_cast<std::size_t>(c)], c * chunk,
           std::min(n, (c + 1) * chunk));
    }
  };
  std::vector<std::thread> threads;
  for (int w = 1; w < workers; ++w) threads.emplace_back(worker);
  worker();
  for (std::thread& t : threads) t.join();
  return MetricsRegistry::combine_all(pool);
}

TEST(MetricsRegistry, CombineAllIsThreadCountInvariant) {
  // NOTE: this is NOT approximate — chunking depends only on the data and
  // the pairwise tree fold only on the chunk count, so the pooled result
  // must be bit-identical at 1, 2, or 8 workers.
  const MetricsRegistry one = pooled(1000, 1);
  const MetricsRegistry two = pooled(1000, 2);
  const MetricsRegistry eight = pooled(1000, 8);
  const std::string a = telemetry::to_openmetrics(one);
  EXPECT_EQ(a, telemetry::to_openmetrics(two));
  EXPECT_EQ(a, telemetry::to_openmetrics(eight));
  // And at the raw-double level, not just the rendering.
  for (const auto& [key, value] : one.counters()) {
    EXPECT_EQ(value, two.counter_or(key)) << key;
    EXPECT_EQ(value, eight.counter_or(key)) << key;
  }
}

TEST(MetricsRegistry, CombineAddsCountersAndHistograms) {
  MetricsRegistry a, b;
  a.add_counter("c", 1.5);
  b.add_counter("c", 2.5);
  b.add_counter("only_b", 1.0);
  static constexpr double kBounds[] = {1.0};
  a.observe("h", 0.5, kBounds);
  b.observe("h", 2.0, kBounds);
  a.combine(b);
  EXPECT_DOUBLE_EQ(a.counter_or("c"), 4.0);
  EXPECT_DOUBLE_EQ(a.counter_or("only_b"), 1.0);
  const Histogram& h = a.histograms().at("h");
  EXPECT_EQ(h.counts[0], 1u);  // 0.5
  EXPECT_EQ(h.counts[1], 1u);  // 2.0 overflow
  EXPECT_EQ(h.count, 2u);
}

TEST(MetricsRegistry, LabelKeysRoundTripFamilies) {
  const std::string key =
      MetricsRegistry::key_for("tl_rank_bytes", {{"rank", "3"}});
  EXPECT_EQ(key, "tl_rank_bytes{rank=\"3\"}");
  EXPECT_EQ(MetricsRegistry::family(key), "tl_rank_bytes");
  EXPECT_EQ(MetricsRegistry::family("plain"), "plain");
}

// -- RegistrySink classification --------------------------------------------

sim::TraceEvent event(sim::TraceEvent::Kind kind, std::string_view name,
                      std::string_view phase, double ns, std::size_t bytes,
                      double factor = 1.0) {
  sim::TraceEvent ev;
  ev.kind = kind;
  ev.name = name;
  ev.phase = phase;
  ev.duration_ns = ns;
  ev.bytes = bytes;
  ev.launch_factor = factor;
  return ev;
}

TEST(RegistrySink, ClassifiesLaunchTransferCommOverlap) {
  MetricsRegistry reg;
  telemetry::RegistrySink sink(reg);
  using Kind = sim::TraceEvent::Kind;
  sink.on_event(event(Kind::kLaunch, "cg_calc_w", "cg", 100.0, 64, 1.25));
  sink.on_event(event(Kind::kLaunch, "halo_exchange", "comm", 50.0, 32));
  sink.on_event(event(Kind::kLaunch, "halo_overlap", "overlap", 40.0, 16));
  sink.on_event(event(Kind::kTransfer, "upload_state", "transfer", 10.0, 8));

  // Compute + comm launches count as launches (mirroring SimClock);
  // overlap windows and transfers do not.
  EXPECT_DOUBLE_EQ(reg.counter_or("tl_launches"), 2.0);
  EXPECT_DOUBLE_EQ(reg.counter_or("tl_kernel_ns"), 150.0);
  EXPECT_DOUBLE_EQ(reg.counter_or("tl_kernel_bytes"), 96.0);
  EXPECT_DOUBLE_EQ(reg.counter_or("tl_comm_events"), 1.0);
  EXPECT_DOUBLE_EQ(reg.counter_or("tl_comm_ns"), 50.0);
  EXPECT_DOUBLE_EQ(reg.counter_or("tl_overlap_events"), 1.0);
  EXPECT_DOUBLE_EQ(reg.counter_or("tl_overlap_hidden_ns"), 40.0);
  EXPECT_DOUBLE_EQ(reg.counter_or("tl_transfers"), 1.0);
  EXPECT_DOUBLE_EQ(reg.counter_or("tl_transfer_bytes"), 8.0);
  // Only the compute launch lands in the launch-factor histogram.
  EXPECT_EQ(reg.histograms().at("tl_launch_factor").count, 1u);
}

TEST(Collectors, CommCountersAreRankLabelled) {
  MetricsRegistry reg;
  dist::CommStats stats;
  stats.halo_exchanges = 7;
  stats.allreduces = 3;
  stats.bytes = 1024;
  stats.comm_ns = 500.0;
  stats.overlapped_exchanges = 4;
  stats.hidden_ns = 250.0;
  telemetry::collect_comm(reg, 2, stats);
  EXPECT_DOUBLE_EQ(reg.counter_or("tl_rank_halo_exchanges{rank=\"2\"}"), 7.0);
  EXPECT_DOUBLE_EQ(reg.counter_or("tl_rank_hidden_ns{rank=\"2\"}"), 250.0);
  EXPECT_DOUBLE_EQ(reg.counter_or("tl_rank_halo_exchanges{rank=\"0\"}"), 0.0);
}

// -- Report ------------------------------------------------------------------

telemetry::ReportBuilder small_report(double kernel_ns) {
  telemetry::ReportContext ctx;
  ctx.source = "tests";
  ctx.model = "omp3";
  ctx.device = "cpu";
  ctx.solver = "cg";
  ctx.nx = ctx.ny = 64;
  telemetry::ReportBuilder builder(std::move(ctx));
  builder.add_solve(telemetry::SolveRow{.label = "step 1",
                                        .solver = "CG",
                                        .converged = true,
                                        .iterations = 10,
                                        .inner_iterations = 0,
                                        .fused_iterations = 10,
                                        .classic_iterations = 0,
                                        .final_rr = 1e-16,
                                        .sim_seconds = kernel_ns * 1e-9});
  util::Aggregator agg;
  agg.add(util::LaunchSample{"cg_calc_w", kernel_ns, 4096, 1.0});
  agg.add(util::LaunchSample{"cg_calc_ur", kernel_ns / 2, 2048, 1.0});
  builder.set_totals(kernel_ns * 1e-9, 2.0, 2);
  builder.add_profiles(agg);
  builder.registry().add_counter("tl_launches", 2.0);
  return builder;
}

TEST(Report, JsonIsSchemaValidAndDeterministic) {
  const std::string doc = small_report(1000.0).to_json();
  EXPECT_EQ(doc, small_report(1000.0).to_json());  // byte-identical

  const JsonValue parsed = util::parse_json(doc);
  ASSERT_TRUE(parsed.is_object());
  EXPECT_EQ(parsed.get_string_or("schema", ""), telemetry::kReportSchema);
  const JsonValue* ctx = parsed.find("context");
  ASSERT_NE(ctx, nullptr);
  EXPECT_EQ(ctx->get_string_or("model", ""), "omp3");
  EXPECT_EQ(ctx->get_number_or("nx", 0.0), 64.0);
  const JsonValue* totals = parsed.find("totals");
  ASSERT_NE(totals, nullptr);
  EXPECT_GT(totals->get_number_or("peak_gbs", 0.0), 0.0);  // cpu STREAM peak
  const JsonValue* kernels = parsed.find("kernels");
  ASSERT_NE(kernels, nullptr);
  ASSERT_EQ(kernels->as_array().size(), 2u);
  // Sorted by total time descending; roofline ratio priced vs the device.
  EXPECT_EQ(kernels->as_array()[0].get_string_or("name", ""), "cg_calc_w");
  const double gbs = kernels->as_array()[0].get_number_or("gbs", 0.0);
  const double peak = kernels->as_array()[0].get_number_or("peak_gbs", 0.0);
  const double ratio = kernels->as_array()[0].get_number_or("peak_ratio", -1);
  EXPECT_NEAR(ratio, gbs / peak, 1e-12);
  // The document classifies as a run report for tl_report.
  EXPECT_EQ(telemetry::classify(parsed), telemetry::ArtifactKind::kRunReport);
}

TEST(Report, OpenMetricsRenderingLints) {
  telemetry::ReportBuilder builder = small_report(1000.0);
  builder.registry().observe("tl_launch_factor", 1.01,
                             telemetry::kLaunchFactorBounds);
  const std::string om = telemetry::to_openmetrics(builder.registry());
  EXPECT_NE(om.find("# TYPE tl_launches counter\n"), std::string::npos);
  EXPECT_NE(om.find("tl_launches_total 2\n"), std::string::npos);
  EXPECT_NE(om.find("# TYPE tl_launch_factor histogram\n"), std::string::npos);
  EXPECT_NE(om.find("tl_launch_factor_bucket{le=\"1.02\"} 1\n"),
            std::string::npos);
  EXPECT_NE(om.find("tl_launch_factor_bucket{le=\"+Inf\"} 1\n"),
            std::string::npos);
  EXPECT_NE(om.find("tl_launch_factor_sum 1.01"), std::string::npos);
  EXPECT_NE(om.find("tl_launch_factor_count 1\n"), std::string::npos);
  // Exactly one terminator, at the very end.
  ASSERT_GE(om.size(), 6u);
  EXPECT_EQ(om.substr(om.size() - 6), "# EOF\n");
  EXPECT_EQ(om.find("# EOF"), om.size() - 6);
}

TEST(Report, OpenMetricsSiblingPath) {
  using telemetry::ReportBuilder;
  EXPECT_EQ(ReportBuilder::openmetrics_path("run.json"), "run.om");
  EXPECT_EQ(ReportBuilder::openmetrics_path("a/b.c/report.json"),
            "a/b.c/report.om");
  EXPECT_EQ(ReportBuilder::openmetrics_path("noext"), "noext.om");
}

// -- Regression check policy -------------------------------------------------

TEST(Check, PassesAgainstItselfAndFailsOnInjectedSlowdown) {
  const JsonValue baseline = util::parse_json(small_report(1000.0).to_json());
  const JsonValue same = util::parse_json(small_report(1000.0).to_json());
  const telemetry::CheckResult self = telemetry::check(baseline, same);
  EXPECT_TRUE(self.pass());
  EXPECT_GT(self.checked, 0);

  // 50% slower kernel time: far past the 10% tolerance -> regression.
  const JsonValue slower = util::parse_json(small_report(1500.0).to_json());
  const telemetry::CheckResult bad = telemetry::check(baseline, slower);
  EXPECT_FALSE(bad.pass());
  EXPECT_GT(bad.regressions, 0);
  // The rendering carries the failing summary line tl_report prints.
  EXPECT_NE(telemetry::format_check(bad).find("FAIL"), std::string::npos);

  // The asymmetric policy: the same delta in the faster direction passes
  // and is reported as an improvement, never a failure.
  const telemetry::CheckResult good = telemetry::check(slower, baseline);
  EXPECT_TRUE(good.pass());
  bool noted_improvement = false;
  for (const telemetry::Finding& f : good.findings) {
    if (!f.regression) noted_improvement = true;
  }
  EXPECT_TRUE(noted_improvement);
}

TEST(Check, StructuralDriftIsExact) {
  const JsonValue baseline = util::parse_json(small_report(1000.0).to_json());
  // +2% launches would pass a 10% tolerance; structural counts must not.
  telemetry::ReportBuilder drifted = small_report(1000.0);
  drifted.set_totals(1000.0 * 1e-9, 2.0, 3);  // 2 -> 3 launches
  const JsonValue current = util::parse_json(drifted.to_json());
  EXPECT_FALSE(telemetry::check(baseline, current).pass());
}

TEST(Check, ArtifactKindMismatchIsARegression) {
  const JsonValue report = util::parse_json(small_report(1000.0).to_json());
  const JsonValue fusion =
      util::parse_json("{\"bench\": \"fusion\", \"cells\": []}");
  EXPECT_EQ(telemetry::classify(fusion), telemetry::ArtifactKind::kBenchFusion);
  EXPECT_FALSE(telemetry::check(report, fusion).pass());
}

TEST(Check, BenchOverlapHiddenFractionIsHigherIsBetter) {
  const char* base =
      "{\"bench\": \"fig13_overlap\", \"mode\": \"full\", \"cells\": ["
      "{\"scaling\": \"strong\", \"solver\": \"CG\", \"ranks\": 8, "
      "\"blocking_s\": 10.0, \"blocking_comm_s\": 2.0, \"overlap_s\": 8.5, "
      "\"hidden_s\": 1.5, \"hidden_fraction\": 0.75}]}";
  std::string worse(base);
  const std::string::size_type at = worse.find("0.75");
  ASSERT_NE(at, std::string::npos);
  worse.replace(at, 4, "0.40");
  EXPECT_TRUE(
      telemetry::check(util::parse_json(base), util::parse_json(base)).pass());
  EXPECT_FALSE(
      telemetry::check(util::parse_json(base), util::parse_json(worse)).pass());
}

TEST(Analyze, RunReportMentionsKernelsAndComm) {
  telemetry::ReportBuilder builder = small_report(1000.0);
  dist::RankReport rank;
  rank.rank = 0;
  rank.comm.halo_exchanges = 4;
  rank.comm.comm_ns = 100.0;
  builder.add_rank(rank);
  const std::string text =
      telemetry::analyze(util::parse_json(builder.to_json()));
  EXPECT_NE(text.find("cg_calc_w"), std::string::npos);
  EXPECT_NE(text.find("comm"), std::string::npos);
}

// -- Structured logging ------------------------------------------------------

TEST(Log, JsonLinesAreValidAndPlainIsUnchanged) {
  const std::string plain = util::format_log_line(
      util::LogFormat::kPlain, util::LogLevel::kWarn, "disk \"full\"", 0);
  EXPECT_EQ(plain, "[WARN] disk \"full\"");

  const std::string json = util::format_log_line(
      util::LogFormat::kJson, util::LogLevel::kWarn, "disk \"full\"\n", 42);
  const JsonValue parsed = util::parse_json(json);
  EXPECT_EQ(parsed.get_string_or("level", ""), "warn");
  EXPECT_EQ(parsed.get_number_or("ts_ns", -1.0), 42.0);
  EXPECT_EQ(parsed.get_string_or("message", ""), "disk \"full\"\n");
  EXPECT_EQ(json.find('\n'), std::string::npos);  // one object per line
}

TEST(Log, FormatParsesAndRoundTrips) {
  EXPECT_EQ(util::parse_log_format("json"), util::LogFormat::kJson);
  EXPECT_EQ(util::parse_log_format(" PLAIN "), util::LogFormat::kPlain);
  EXPECT_EQ(util::parse_log_format("text"), util::LogFormat::kPlain);
  EXPECT_FALSE(util::parse_log_format("yaml").has_value());
  const util::LogFormat before = util::log_format();
  util::set_log_format(util::LogFormat::kJson);
  EXPECT_EQ(util::log_format(), util::LogFormat::kJson);
  util::set_log_format(before);
}

}  // namespace
