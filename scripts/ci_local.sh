#!/usr/bin/env bash
# Local mirror of .github/workflows/ci.yml: the same preset x compiler
# matrix, run sequentially. Compilers that are not installed are skipped
# with a notice (the hosted runners install both gcc and clang; a dev box
# often has only one).
#
#   scripts/ci_local.sh           # full matrix + tsan + conformance + smoke
#   scripts/ci_local.sh --quick   # release/default-compiler leg only
#
# Exits nonzero on the first failing leg.

set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
[ "${1:-}" = "--quick" ] && QUICK=1

note() { printf '\n== %s ==\n' "$*"; }

run_leg() { # run_leg <preset> <cc> <cxx>
  local preset=$1 cc=$2 cxx=$3
  local build_dir="build-${preset}-${cc}"
  note "leg: ${preset} / ${cc}"
  CC=$cc CXX=$cxx cmake --preset "$preset" -B "$build_dir" >/dev/null
  cmake --build "$build_dir" -j "$(nproc)"
  local ctest_args=(--output-on-failure -j "$(nproc)")
  # Instrumented legs skip the golden-CSV regression label, as in CI:
  # the release legs cover it, and the full-size benches are slow under
  # sanitizer instrumentation.
  [ "$preset" = "asan" ] && ctest_args+=(-LE golden)
  (cd "$build_dir" && ctest "${ctest_args[@]}")

  note "conformance: tl_verify (${preset} / ${cc})"
  "./$build_dir/tools/tl_verify" \
    --golden verify/golden/reference.csv \
    --json="verify-${preset}-${cc}.json"

  note "distributed conformance: tl_verify --ranks 4 (${preset} / ${cc})"
  "./$build_dir/tools/tl_verify" --ranks 4 \
    --json="verify-dist-${preset}-${cc}.json"

  note "bench smoke: fig8 (${preset} / ${cc})"
  mkdir -p "bench-smoke-${preset}-${cc}"
  (cd "bench-smoke-${preset}-${cc}" && "../$build_dir/bench/bench_fig8_cpu" --smoke >/dev/null)
  echo "smoke CSV: bench-smoke-${preset}-${cc}/fig8_cpu.csv"

  note "fusion gates: bench_fusion --smoke (${preset} / ${cc})"
  (cd "bench-smoke-${preset}-${cc}" && "../$build_dir/bench/bench_fusion" --smoke)

  note "overlap gates: bench_fig13_scaling --smoke (${preset} / ${cc})"
  # Real decomposed solves, blocking vs overlapped; the bench exits nonzero
  # if overlap is ever slower than blocking. Writes BENCH_overlap.json.
  (cd "bench-smoke-${preset}-${cc}" && "../$build_dir/bench/bench_fig13_scaling" --smoke >/dev/null)
  echo "overlap JSON: bench-smoke-${preset}-${cc}/BENCH_overlap.json"

  note "run-report regression gate: tl_report --check (${preset} / ${cc})"
  # The canonical deterministic run report, regenerated and checked against
  # the committed baseline (exact counts, 10% slower-only time tolerance).
  "./$build_dir/examples/quickstart" \
    --nx 96 --solver cg --model omp3 --device cpu --ranks 4 \
    --report="bench-smoke-${preset}-${cc}/run_report.json" >/dev/null
  "./$build_dir/tools/tl_report" \
    --check "bench-smoke-${preset}-${cc}/run_report.json" \
    --baseline=BENCH_report.json
}

run_tsan() { # run_tsan <cc> <cxx>
  local cc=$1 cxx=$2
  local build_dir="build-tsan-${cc}"
  note "leg: tsan / ${cc} (threading suites)"
  CC=$cc CXX=$cxx cmake --preset tsan -B "$build_dir" >/dev/null
  cmake --build "$build_dir" -j "$(nproc)" \
    --target tests_models tests_fusion tests_ports tests_verify tests_comm tests_dist tests_regions tests_telemetry
  TSAN_OPTIONS=halt_on_error=1 "./$build_dir/tests/tests_models"
  TSAN_OPTIONS=halt_on_error=1 "./$build_dir/tests/tests_fusion"
  TSAN_OPTIONS=halt_on_error=1 "./$build_dir/tests/tests_ports"
  TSAN_OPTIONS=halt_on_error=1 "./$build_dir/tests/tests_verify"
  TSAN_OPTIONS=halt_on_error=1 "./$build_dir/tests/tests_comm"
  TSAN_OPTIONS=halt_on_error=1 "./$build_dir/tests/tests_dist"
  TSAN_OPTIONS=halt_on_error=1 "./$build_dir/tests/tests_regions"
  TSAN_OPTIONS=halt_on_error=1 "./$build_dir/tests/tests_telemetry"
}

compilers=()
command -v gcc >/dev/null 2>&1 && compilers+=("gcc:g++")
command -v clang >/dev/null 2>&1 && compilers+=("clang:clang++")
if [ "${#compilers[@]}" -eq 0 ]; then
  echo "ci_local: no supported compiler (gcc or clang) found" >&2
  exit 1
fi
command -v clang >/dev/null 2>&1 || echo "ci_local: clang not installed, skipping clang legs"

if [ "$QUICK" -eq 1 ]; then
  IFS=: read -r cc cxx <<<"${compilers[0]}"
  run_leg release "$cc" "$cxx"
  note "ci_local --quick: PASS"
  exit 0
fi

for entry in "${compilers[@]}"; do
  IFS=: read -r cc cxx <<<"$entry"
  run_leg release "$cc" "$cxx"
  run_leg asan "$cc" "$cxx"
done

IFS=: read -r cc cxx <<<"${compilers[0]}"
run_tsan "$cc" "$cxx"

note "ci_local: all legs PASS"
