#!/usr/bin/env bash
# Local mirror of .github/workflows/ci.yml: the same preset x compiler
# matrix, run sequentially. Compilers that are not installed are skipped
# with a notice (the hosted runners install both gcc and clang; a dev box
# often has only one).
#
#   scripts/ci_local.sh           # full matrix + tsan + conformance + smoke
#   scripts/ci_local.sh --quick   # release/default-compiler leg only
#   scripts/ci_local.sh --soak    # add the full 10k-job service soak leg
#
# Every leg runs to completion even if an earlier one failed; the script
# prints a per-leg PASS/FAIL summary and exits nonzero if any leg failed.
# (Each leg executes as a child `bash "$0" --leg ...` process with its own
# `set -e` — errexit is unreliable inside functions called from condition
# contexts, which is exactly how per-leg status has to be collected, so
# process isolation is the only way a leg's failure is neither lost nor
# fatal to the matrix.)

set -euo pipefail
cd "$(dirname "$0")/.."

note() { printf '\n== %s ==\n' "$*"; }

run_leg() { # run_leg <preset> <cc> <cxx>
  local preset=$1 cc=$2 cxx=$3
  local build_dir="build-${preset}-${cc}"
  note "leg: ${preset} / ${cc}"
  CC=$cc CXX=$cxx cmake --preset "$preset" -B "$build_dir" >/dev/null
  cmake --build "$build_dir" -j "$(nproc)"
  local ctest_args=(--output-on-failure -j "$(nproc)")
  # Instrumented legs skip the golden-CSV regression label, as in CI:
  # the release legs cover it, and the full-size benches are slow under
  # sanitizer instrumentation.
  [ "$preset" = "asan" ] && ctest_args+=(-LE golden)
  (cd "$build_dir" && ctest "${ctest_args[@]}")

  note "conformance: tl_verify (${preset} / ${cc})"
  "./$build_dir/tools/tl_verify" \
    --golden verify/golden/reference.csv \
    --json="verify-${preset}-${cc}.json"

  note "distributed conformance: tl_verify --ranks 4 (${preset} / ${cc})"
  "./$build_dir/tools/tl_verify" --ranks 4 \
    --json="verify-dist-${preset}-${cc}.json"

  note "bench smoke: fig8 (${preset} / ${cc})"
  mkdir -p "bench-smoke-${preset}-${cc}"
  (cd "bench-smoke-${preset}-${cc}" && "../$build_dir/bench/bench_fig8_cpu" --smoke >/dev/null)
  echo "smoke CSV: bench-smoke-${preset}-${cc}/fig8_cpu.csv"

  note "fusion gates: bench_fusion --smoke (${preset} / ${cc})"
  (cd "bench-smoke-${preset}-${cc}" && "../$build_dir/bench/bench_fusion" --smoke)

  note "overlap gates: bench_fig13_scaling --smoke (${preset} / ${cc})"
  # Real decomposed solves, blocking vs overlapped; the bench exits nonzero
  # if overlap is ever slower than blocking. Writes BENCH_overlap.json.
  (cd "bench-smoke-${preset}-${cc}" && "../$build_dir/bench/bench_fig13_scaling" --smoke >/dev/null)
  echo "overlap JSON: bench-smoke-${preset}-${cc}/BENCH_overlap.json"
  echo "pipeline JSON: bench-smoke-${preset}-${cc}/BENCH_pipeline.json"

  note "per-ISA smokes: tl_verify + fig13 x forced row-kernel ISA (${preset} / ${cc})"
  # Golden conformance and the fig13 smoke (overlap + pipelined-CG gates)
  # once per forced ISA; tl_isa --probe exit 3 means the ISA is unavailable
  # on this host and the leg is skipped, not failed. The fusion measured
  # gate is deliberately NOT forced per ISA: it compares the fused rows
  # against the compiler-autovectorized unfused pipeline, so pinning a
  # narrow ISA would gate vector width against the compiler rather than
  # against itself — bench_fusion's own measured leg owns the sse2-vs-avx2
  # gate. (BENCH_pipeline.json itself is regression-gated by ctest's
  # telemetry.pipeline.check: full-mode regen vs the committed baseline.)
  for isa in scalar sse2 avx2 avx512; do
    rc=0
    "./$build_dir/tools/tl_isa" --probe "$isa" || rc=$?
    if [ "$rc" -eq 3 ]; then
      echo "  $isa: unavailable on this host — skipped"
      continue
    elif [ "$rc" -ne 0 ]; then
      echo "tl_isa --probe $isa failed (exit $rc)" >&2
      exit 1
    fi
    TL_FORCE_ISA=$isa "./$build_dir/tools/tl_verify" \
      --golden verify/golden/reference.csv >/dev/null
    (cd "bench-smoke-${preset}-${cc}" && \
      TL_FORCE_ISA=$isa "../$build_dir/bench/bench_fig13_scaling" --smoke >/dev/null)
    echo "  $isa: golden conformance + fig13 smoke OK"
  done

  note "service soak smoke: bench_service --smoke (${preset} / ${cc})"
  # 1k mixed-tenant jobs through the SolveService; the bench exits nonzero
  # on a fairness-bound breach or any service-vs-standalone checksum
  # mismatch, and the artifact is regression-checked against the committed
  # baseline (structural counts exact, wall clock with a generous slack).
  (cd "bench-smoke-${preset}-${cc}" && "../$build_dir/bench/bench_service" --smoke >/dev/null)
  "./$build_dir/tools/tl_report" \
    --check "bench-smoke-${preset}-${cc}/BENCH_service.json" \
    --baseline=BENCH_service.json --rel-tol=3.0

  note "elastic gates: bench_elastic --smoke (${preset} / ${cc})"
  # Weighted heterogeneous split beats equal, seeded lossy schedules survive
  # bit-identically, kill-and-resume transitions are bit-identical; the
  # artifact is fully deterministic (simulated clock) and checked exactly.
  (cd "bench-smoke-${preset}-${cc}" && "../$build_dir/bench/bench_elastic" --smoke >/dev/null)
  "./$build_dir/tools/tl_report" \
    --check "bench-smoke-${preset}-${cc}/BENCH_elastic.json" \
    --baseline=BENCH_elastic.json

  note "comm corruption detection: tl_verify --perturb (${preset} / ${cc})"
  # The detector's negative control: a run with in-flight comm corruption
  # must FAIL conformance. A passing perturbed run fails this leg.
  for target in halo_payload allreduce; do
    if "./$build_dir/tools/tl_verify" --ranks 2 --nx 32 \
        --perturb "$target" >/dev/null; then
      echo "perturbed $target run passed conformance — detector broken" >&2
      exit 1
    fi
  done

  note "run-report regression gate: tl_report --check (${preset} / ${cc})"
  # The canonical deterministic run report, regenerated and checked against
  # the committed baseline (exact counts, 10% slower-only time tolerance).
  "./$build_dir/examples/quickstart" \
    --nx 96 --solver cg --model omp3 --device cpu --ranks 4 \
    --report="bench-smoke-${preset}-${cc}/run_report.json" >/dev/null
  "./$build_dir/tools/tl_report" \
    --check "bench-smoke-${preset}-${cc}/run_report.json" \
    --baseline=BENCH_report.json

  note "auto-tuning gates: tl_plan fit --check + bench_plan (${preset} / ${cc})"
  # Refit the committed measurement grids, check the catalog against the
  # committed golden, then the planner-regret gate: known-fastest picks per
  # grid cell, bounded aggregate regret, artifact vs committed BENCH_plan.json.
  "./$build_dir/tools/tl_plan" fit \
    fig8_cpu.csv fig9_gpu.csv fig11_meshsweep.csv fig13_scaling.csv \
    BENCH_report.json BENCH_fusion.json BENCH_overlap.json \
    --out="bench-smoke-${preset}-${cc}/models.json" \
    --check=verify/golden/models.json >/dev/null
  "./$build_dir/bench/bench_plan" \
    --report="bench-smoke-${preset}-${cc}/BENCH_plan.json" >/dev/null
  "./$build_dir/tools/tl_report" \
    --check "bench-smoke-${preset}-${cc}/BENCH_plan.json" \
    --baseline=BENCH_plan.json
}

run_tsan() { # run_tsan <cc> <cxx>
  local cc=$1 cxx=$2
  local build_dir="build-tsan-${cc}"
  note "leg: tsan / ${cc} (threading suites)"
  CC=$cc CXX=$cxx cmake --preset tsan -B "$build_dir" >/dev/null
  cmake --build "$build_dir" -j "$(nproc)" \
    --target tests_models tests_fusion tests_isa tests_ports tests_verify tests_comm tests_dist tests_regions tests_telemetry tests_service tests_elastic tests_tune
  TSAN_OPTIONS=halt_on_error=1 "./$build_dir/tests/tests_models"
  TSAN_OPTIONS=halt_on_error=1 "./$build_dir/tests/tests_fusion"
  TSAN_OPTIONS=halt_on_error=1 "./$build_dir/tests/tests_isa"
  TSAN_OPTIONS=halt_on_error=1 "./$build_dir/tests/tests_ports"
  TSAN_OPTIONS=halt_on_error=1 "./$build_dir/tests/tests_verify"
  TSAN_OPTIONS=halt_on_error=1 "./$build_dir/tests/tests_comm"
  TSAN_OPTIONS=halt_on_error=1 "./$build_dir/tests/tests_dist"
  TSAN_OPTIONS=halt_on_error=1 "./$build_dir/tests/tests_regions"
  TSAN_OPTIONS=halt_on_error=1 "./$build_dir/tests/tests_telemetry"
  TSAN_OPTIONS=halt_on_error=1 "./$build_dir/tests/tests_service"
  TSAN_OPTIONS=halt_on_error=1 "./$build_dir/tests/tests_elastic"
  TSAN_OPTIONS=halt_on_error=1 "./$build_dir/tests/tests_tune"
}

run_soak() { # run_soak <cc> <cxx>
  local cc=$1 cxx=$2
  local build_dir="build-release-${cc}"
  note "leg: service soak / ${cc} (10k jobs + planner leg + full elastic fault soak)"
  CC=$cc CXX=$cxx cmake --preset release -B "$build_dir" >/dev/null
  cmake --build "$build_dir" -j "$(nproc)" --target bench_service bench_elastic
  mkdir -p "bench-smoke-release-${cc}"
  (cd "bench-smoke-release-${cc}" && \
    "../$build_dir/bench/bench_service" --min-throughput 50 --planner \
      --report=BENCH_service_full.json)
  (cd "bench-smoke-release-${cc}" && \
    "../$build_dir/bench/bench_elastic" --report=BENCH_elastic_full.json)
}

# Child mode: execute exactly one leg under this file's `set -e`, so a
# failure anywhere inside it yields a nonzero exit the parent can record.
if [ "${1:-}" = "--leg" ]; then
  shift
  kind=$1; shift
  case "$kind" in
    matrix) run_leg "$@" ;;
    tsan)   run_tsan "$@" ;;
    soak)   run_soak "$@" ;;
    *) echo "ci_local: unknown leg kind '$kind'" >&2; exit 2 ;;
  esac
  exit 0
fi

QUICK=0
SOAK=0
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    --soak)  SOAK=1 ;;
    *) echo "ci_local: unknown option '$arg'" >&2; exit 2 ;;
  esac
done

compilers=()
command -v gcc >/dev/null 2>&1 && compilers+=("gcc:g++")
command -v clang >/dev/null 2>&1 && compilers+=("clang:clang++")
if [ "${#compilers[@]}" -eq 0 ]; then
  echo "ci_local: no supported compiler (gcc or clang) found" >&2
  exit 1
fi
command -v clang >/dev/null 2>&1 || echo "ci_local: clang not installed, skipping clang legs"

leg_names=()
leg_status=()
dispatch() { # dispatch <name> <kind> [args...]
  local name=$1; shift
  local rc=0
  bash "$0" --leg "$@" || rc=$?
  leg_names+=("$name")
  leg_status+=("$rc")
}

if [ "$QUICK" -eq 1 ]; then
  IFS=: read -r cc cxx <<<"${compilers[0]}"
  dispatch "release/${cc}" matrix release "$cc" "$cxx"
else
  for entry in "${compilers[@]}"; do
    IFS=: read -r cc cxx <<<"$entry"
    dispatch "release/${cc}" matrix release "$cc" "$cxx"
    dispatch "asan/${cc}" matrix asan "$cc" "$cxx"
  done
  IFS=: read -r cc cxx <<<"${compilers[0]}"
  dispatch "tsan/${cc}" tsan "$cc" "$cxx"
fi
if [ "$SOAK" -eq 1 ]; then
  IFS=: read -r cc cxx <<<"${compilers[0]}"
  dispatch "soak/${cc}" soak "$cc" "$cxx"
fi

note "ci_local summary"
failed=0
for i in "${!leg_names[@]}"; do
  if [ "${leg_status[$i]}" -eq 0 ]; then
    printf '  PASS  %s\n' "${leg_names[$i]}"
  else
    printf '  FAIL  %s (exit %s)\n' "${leg_names[$i]}" "${leg_status[$i]}"
    failed=1
  fi
done
if [ "$failed" -ne 0 ]; then
  echo "ci_local: FAILED"
  exit 1
fi
echo "ci_local: all legs PASS"
